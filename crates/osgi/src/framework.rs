//! The framework: bundle lifecycle orchestration, class loading, services,
//! start levels and persistent state.

use crate::loader::BootDelegation;
use crate::loader::LoadPath;
use crate::persist;
use crate::{
    Activator, ActivatorFactory, BundleContext, BundleError, BundleEvent, BundleEventKind,
    BundleId, BundleManifest, BundleState, ClassRef, FrameworkEvent, LoadError, PropValue, Service,
    ServiceError, ServiceEvent, ServiceId, ServiceRegistry, SymbolName, UsageLedger, Version,
    Wiring,
};
use dosgi_san::{SharedStore, StoreError, Value};
use dosgi_telemetry::Telemetry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Framework construction parameters.
#[derive(Debug, Clone)]
pub struct FrameworkConfig {
    /// A human-readable name; also the default persistence namespace.
    pub name: String,
    /// Packages served by the platform itself (the `java.*` analogue).
    pub boot: BootDelegation,
    /// The initial active start level.
    pub start_level: u32,
}

impl FrameworkConfig {
    /// A config named `name` with standard boot delegation and start level 1.
    pub fn new(name: &str) -> Self {
        FrameworkConfig {
            name: name.to_owned(),
            boot: BootDelegation::standard(),
            start_level: 1,
        }
    }
}

/// An installed bundle.
pub struct Bundle {
    /// Framework-local id.
    pub id: BundleId,
    /// The bundle's manifest.
    pub manifest: BundleManifest,
    /// Current lifecycle state.
    pub state: BundleState,
    /// Whether the bundle is persistently started (survives reboots and
    /// start-level sweeps; the OSGi "autostart" setting).
    pub autostart: bool,
    /// The revision that last owned the bundle's persisted data area.
    /// Normally equals `manifest.version`; an in-place upgrade checks the
    /// target against it before adopting the state.
    pub state_version: Version,
    pub(crate) activator: Option<Box<dyn Activator>>,
}

impl fmt::Debug for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bundle")
            .field("id", &self.id)
            .field("symbolic_name", &self.manifest.symbolic_name)
            .field("version", &self.manifest.version)
            .field("state", &self.state)
            .field("autostart", &self.autostart)
            .finish_non_exhaustive()
    }
}

/// The outcome of an in-place [`Framework::upgrade_bundle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpgradeReport {
    /// The bundle that was swapped.
    pub bundle: BundleId,
    /// The revision that quiesced and handed its state off.
    pub from: Version,
    /// The revision that adopted the state.
    pub to: Version,
    /// Entries in the handed-off data area at swap time.
    pub handoff_keys: usize,
}

/// An OSGi-like framework instance.
///
/// See the [crate docs](crate) for the model. A `Framework` is used both as
/// the **host** platform of a node and (wrapped by `dosgi-vosgi`) as each
/// customer's **virtual instance**.
pub struct Framework {
    config: FrameworkConfig,
    bundles: BTreeMap<BundleId, Bundle>,
    next_bundle: u64,
    registry: ServiceRegistry,
    wirings: BTreeMap<BundleId, Wiring>,
    ledger: UsageLedger,
    bundle_events: Vec<BundleEvent>,
    framework_events: Vec<FrameworkEvent>,
    data_areas: HashMap<String, BTreeMap<String, Value>>,
    store: Option<(SharedStore, String)>,
    /// Snapshot rows (header / `bundle/<id>`) whose in-memory state is
    /// ahead of the SAN; the next persist writes exactly these rows.
    dirty_rows: BTreeSet<String>,
    /// Snapshot rows pending deletion on the SAN (uninstalled bundles,
    /// the legacy monolithic key after a migration restore).
    deleted_rows: BTreeSet<String>,
    /// Data areas whose SAN write-through failed; flush pending.
    dirty_areas: BTreeSet<String>,
    telemetry: Telemetry,
}

impl fmt::Debug for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Framework")
            .field("name", &self.config.name)
            .field("bundles", &self.bundles.len())
            .field("services", &self.registry.len())
            .field("start_level", &self.config.start_level)
            .finish_non_exhaustive()
    }
}

impl Framework {
    /// Creates a framework with default configuration.
    pub fn new(name: &str) -> Self {
        Self::with_config(FrameworkConfig::new(name))
    }

    /// Creates a framework from an explicit configuration.
    pub fn with_config(config: FrameworkConfig) -> Self {
        let mut fw = Framework {
            config,
            bundles: BTreeMap::new(),
            next_bundle: 1,
            registry: ServiceRegistry::new(),
            wirings: BTreeMap::new(),
            ledger: UsageLedger::new(),
            bundle_events: Vec::new(),
            framework_events: Vec::new(),
            data_areas: HashMap::new(),
            store: None,
            dirty_rows: BTreeSet::new(),
            deleted_rows: BTreeSet::new(),
            dirty_areas: BTreeSet::new(),
            telemetry: Telemetry::disabled(),
        };
        fw.framework_events.push(FrameworkEvent::Started);
        fw
    }

    /// Attaches a telemetry handle; bundle lifecycle transitions are
    /// counted as `osgi.lifecycle.<kind>`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The framework's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Attaches a SAN store; framework state and bundle data areas become
    /// persistent under `namespace`, as the OSGi specification requires.
    ///
    /// # Errors
    ///
    /// The initial snapshot write may fail with a transient [`StoreError`];
    /// the store stays attached and the snapshot is flushed on the next
    /// successful [`flush_persist`](Self::flush_persist).
    pub fn attach_store(&mut self, store: SharedStore, namespace: &str) -> Result<(), StoreError> {
        self.store = Some((store, namespace.to_owned()));
        self.mark_all_rows_dirty();
        self.persist()
    }

    /// The persistence namespace, if a store is attached.
    pub fn store_namespace(&self) -> Option<&str> {
        self.store.as_ref().map(|(_, ns)| ns.as_str())
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Installs a bundle, leaving it `INSTALLED`.
    ///
    /// # Errors
    ///
    /// [`BundleError::DuplicateBundle`] if a bundle with the same symbolic
    /// name and version is already installed.
    pub fn install(
        &mut self,
        manifest: BundleManifest,
        activator: Option<Box<dyn Activator>>,
    ) -> Result<BundleId, BundleError> {
        if let Some(existing) = self.bundles.values().find(|b| {
            b.manifest.symbolic_name == manifest.symbolic_name
                && b.manifest.version == manifest.version
        }) {
            return Err(BundleError::DuplicateBundle {
                existing: existing.id,
            });
        }
        let id = BundleId(self.next_bundle);
        self.next_bundle += 1;
        let state_version = manifest.version;
        self.bundles.insert(
            id,
            Bundle {
                id,
                manifest,
                state: BundleState::Installed,
                autostart: false,
                state_version,
                activator,
            },
        );
        self.event(id, BundleEventKind::Installed);
        self.mark_header_dirty(); // next_bundle advanced
        self.mark_bundle_dirty(id);
        let _ = self.persist();
        Ok(id)
    }

    /// Attempts to resolve every `INSTALLED` bundle. Returns the ids that
    /// newly resolved.
    pub fn resolve_all(&mut self) -> Vec<BundleId> {
        let candidates: BTreeMap<BundleId, &BundleManifest> = self
            .bundles
            .values()
            .filter(|b| b.state == BundleState::Installed)
            .map(|b| (b.id, &b.manifest))
            .collect();
        let resolved_pool: BTreeMap<BundleId, &BundleManifest> = self
            .bundles
            .values()
            .filter(|b| b.state.is_resolved())
            .map(|b| (b.id, &b.manifest))
            .collect();
        let report = crate::resolver::resolve(&candidates, &resolved_pool);
        let ids: Vec<BundleId> = report.resolved.keys().copied().collect();
        for (id, wiring) in report.resolved {
            self.wirings.insert(id, wiring);
            self.bundles
                .get_mut(&id)
                .expect("resolver only reports candidate ids")
                .state = BundleState::Resolved;
            self.event(id, BundleEventKind::Resolved);
            self.mark_bundle_dirty(id);
        }
        if !ids.is_empty() {
            let _ = self.persist();
        }
        ids
    }

    /// Starts a bundle: resolves it if necessary, runs its activator, and
    /// marks it `ACTIVE` and persistently started. Starting an `ACTIVE`
    /// bundle is a no-op.
    ///
    /// # Errors
    ///
    /// [`BundleError::NotFound`], [`BundleError::ResolutionFailed`],
    /// [`BundleError::ActivatorFailed`] (bundle rolls back to `RESOLVED`),
    /// or [`BundleError::InvalidTransition`] from transient/terminal states.
    pub fn start(&mut self, id: BundleId) -> Result<(), BundleError> {
        let state = self.bundle_state(id)?;
        match state {
            BundleState::Active => return Ok(()),
            BundleState::Installed => {
                self.resolve_all();
                let state = self.bundle_state(id)?;
                if state == BundleState::Installed {
                    let missing = self
                        .bundles
                        .get(&id)
                        .expect("bundle_state checked id above")
                        .manifest
                        .imports
                        .iter()
                        .filter(|i| !i.optional)
                        .map(|i| i.name.clone())
                        .collect();
                    return Err(BundleError::ResolutionFailed {
                        bundle: id,
                        missing,
                    });
                }
            }
            BundleState::Resolved => {}
            other => {
                return Err(BundleError::InvalidTransition {
                    bundle: id,
                    state: other,
                    operation: "start",
                })
            }
        }
        self.set_state(id, BundleState::Starting);
        let mut activator = self
            .bundles
            .get_mut(&id)
            .expect("bundle_state checked id above")
            .activator
            .take();
        let result = match activator.as_mut() {
            Some(a) => {
                let mut ctx = BundleContext::new(id, self);
                a.start(&mut ctx)
            }
            None => Ok(()),
        };
        let bundle = self
            .bundles
            .get_mut(&id)
            .expect("bundle_state checked id above");
        bundle.activator = activator;
        match result {
            Ok(()) => {
                bundle.state = BundleState::Active;
                bundle.autostart = true;
                self.event(id, BundleEventKind::Started);
                self.mark_bundle_dirty(id);
                let _ = self.persist();
                Ok(())
            }
            Err(message) => {
                bundle.state = BundleState::Resolved;
                // Services a half-started activator registered are swept.
                self.registry.unregister_bundle(id);
                self.framework_events.push(FrameworkEvent::Error {
                    bundle: Some(id),
                    message: message.clone(),
                });
                Err(BundleError::ActivatorFailed {
                    bundle: id,
                    message,
                })
            }
        }
    }

    /// Stops an `ACTIVE` bundle: runs its activator's `stop`, sweeps its
    /// services, and clears the persistent-start flag. Stopping a non-active
    /// bundle is a no-op.
    ///
    /// # Errors
    ///
    /// [`BundleError::NotFound`] for unknown ids.
    pub fn stop(&mut self, id: BundleId) -> Result<(), BundleError> {
        self.stop_internal(id, true)
    }

    /// Stops a bundle without clearing its persistent-start flag — used by
    /// start-level sweeps and framework shutdown, after which the bundle
    /// must come back on restart (OSGi semantics).
    pub fn stop_transient(&mut self, id: BundleId) -> Result<(), BundleError> {
        self.stop_internal(id, false)
    }

    fn stop_internal(&mut self, id: BundleId, persistent: bool) -> Result<(), BundleError> {
        let state = self.bundle_state(id)?;
        if state != BundleState::Active {
            if persistent {
                if let Some(b) = self.bundles.get_mut(&id) {
                    b.autostart = false;
                }
                // Captured by the next persist, like any deferred change.
                self.mark_bundle_dirty(id);
            }
            return Ok(());
        }
        self.set_state(id, BundleState::Stopping);
        let mut activator = self
            .bundles
            .get_mut(&id)
            .expect("bundle_state checked id above")
            .activator
            .take();
        let result = match activator.as_mut() {
            Some(a) => {
                let mut ctx = BundleContext::new(id, self);
                a.stop(&mut ctx)
            }
            None => Ok(()),
        };
        if let Err(message) = result {
            self.framework_events.push(FrameworkEvent::Error {
                bundle: Some(id),
                message,
            });
        }
        self.registry.unregister_bundle(id);
        let bundle = self
            .bundles
            .get_mut(&id)
            .expect("bundle_state checked id above");
        bundle.activator = activator;
        bundle.state = BundleState::Resolved;
        if persistent {
            bundle.autostart = false;
        }
        self.event(id, BundleEventKind::Stopped);
        self.mark_bundle_dirty(id);
        let _ = self.persist();
        Ok(())
    }

    /// Uninstalls a bundle (stopping it first if active).
    ///
    /// # Errors
    ///
    /// [`BundleError::NotFound`] or [`BundleError::InvalidTransition`] if
    /// called from a transient state.
    pub fn uninstall(&mut self, id: BundleId) -> Result<(), BundleError> {
        let state = self.bundle_state(id)?;
        if !state.can_uninstall() {
            return Err(BundleError::InvalidTransition {
                bundle: id,
                state,
                operation: "uninstall",
            });
        }
        if state == BundleState::Active {
            self.stop(id)?;
        }
        self.bundles.remove(&id);
        self.wirings.remove(&id);
        self.ledger.forget(id);
        self.event(id, BundleEventKind::Uninstalled);
        if self.store.is_some() {
            let key = persist::bundle_key(id);
            self.dirty_rows.remove(&key);
            self.deleted_rows.insert(key);
        }
        let _ = self.persist();
        Ok(())
    }

    /// Replaces a bundle's manifest at run-time (the OSGi `update`
    /// operation): the bundle is stopped if active, re-wired, and restarted
    /// if it was active — the "change a module without disrupting the
    /// production environment" capability the paper's introduction credits
    /// OSGi with.
    ///
    /// # Errors
    ///
    /// Lifecycle errors from the embedded stop/start, or
    /// [`BundleError::ResolutionFailed`] if the new manifest cannot wire.
    pub fn update(&mut self, id: BundleId, manifest: BundleManifest) -> Result<(), BundleError> {
        self.update_with_activator(id, manifest, None)
    }

    /// Like [`update`](Self::update), but also replaces the bundle's
    /// activator — the analogue of the new bundle revision bringing a new
    /// activator class. The old activator's `stop` runs first; the new one
    /// `start`s. `None` keeps the existing activator.
    ///
    /// # Errors
    ///
    /// As [`update`](Self::update).
    pub fn update_with_activator(
        &mut self,
        id: BundleId,
        manifest: BundleManifest,
        activator: Option<Box<dyn Activator>>,
    ) -> Result<(), BundleError> {
        let state = self.bundle_state(id)?;
        let was_active = state == BundleState::Active;
        if was_active {
            self.stop_transient(id)?;
        }
        let bundle = self
            .bundles
            .get_mut(&id)
            .expect("bundle_state checked id above");
        bundle.manifest = manifest;
        bundle.state = BundleState::Installed;
        // `update` gives no state-handoff guarantee: the new revision owns
        // whatever the data area holds, so the compatibility anchor moves.
        bundle.state_version = bundle.manifest.version;
        if let Some(a) = activator {
            bundle.activator = Some(a);
        }
        self.wirings.remove(&id);
        self.event(id, BundleEventKind::Updated);
        self.mark_bundle_dirty(id);
        self.refresh();
        if was_active {
            self.start(id)?;
        }
        let _ = self.persist();
        Ok(())
    }

    /// Hot-swaps a bundle in place with **state handoff** — the paper's
    /// "change a module without disrupting the production environment"
    /// promise taken all the way to stateful bundles:
    ///
    /// 1. **Compatibility gate** — the target manifest must keep the
    ///    symbolic name and share the major version with the revision that
    ///    owns the persisted state ([`Bundle::state_version`]). Rejected
    ///    upgrades leave the old revision serving, untouched.
    /// 2. **Quiesce** — the old revision is stopped transiently (its
    ///    autostart flag survives, as across a framework reboot).
    /// 3. **Persist** — dirty snapshot rows and data areas are flushed so
    ///    the handed-off state is durable. A SAN failure here **rolls
    ///    back**: the old revision restarts and the (usually transient)
    ///    [`BundleError::Store`] tells the caller to retry.
    /// 4. **Adopt** — the new revision is swapped in and started; because
    ///    data areas are keyed by symbolic name, it reads exactly the
    ///    state the old revision quiesced with. The instance's *other*
    ///    bundles keep serving throughout.
    ///
    /// Downgrades ride the same path — any target within the state's major
    /// version may adopt.
    ///
    /// # Errors
    ///
    /// [`BundleError::NotFound`], [`BundleError::IncompatibleUpgrade`]
    /// (never transient), [`BundleError::Store`] from the persist phase
    /// (old revision restored), or a start error from the adopt phase
    /// (the bundle is then degraded — autostart set but not `ACTIVE` —
    /// and a retried upgrade with the same target is idempotent).
    pub fn upgrade_bundle(
        &mut self,
        id: BundleId,
        manifest: BundleManifest,
        activator: Option<Box<dyn Activator>>,
    ) -> Result<UpgradeReport, BundleError> {
        let (sn, from, state_version, state) = {
            let b = self.bundles.get(&id).ok_or(BundleError::NotFound(id))?;
            (
                b.manifest.symbolic_name.clone(),
                b.manifest.version,
                b.state_version,
                b.state,
            )
        };
        if manifest.symbolic_name != sn || manifest.version.major != state_version.major {
            return Err(BundleError::IncompatibleUpgrade {
                bundle: id,
                state: state_version,
                target: manifest.version,
            });
        }
        let was_active = state == BundleState::Active;
        if was_active {
            self.stop_transient(id)?;
        }
        if let Err(e) = self.flush_persist() {
            // Roll back: the old revision resumes serving; the caller
            // retries the whole upgrade once the SAN recovers.
            if was_active {
                let _ = self.start(id);
            }
            return Err(BundleError::Store(e));
        }
        let handoff_keys = self
            .data_areas
            .get(sn.as_str())
            .map(BTreeMap::len)
            .unwrap_or(0);
        let bundle = self
            .bundles
            .get_mut(&id)
            .expect("bundle presence checked above");
        bundle.manifest = manifest;
        bundle.state = BundleState::Installed;
        let to = bundle.manifest.version;
        bundle.state_version = to;
        if let Some(a) = activator {
            bundle.activator = Some(a);
        }
        self.wirings.remove(&id);
        self.event(id, BundleEventKind::Upgraded);
        self.mark_bundle_dirty(id);
        self.refresh();
        if was_active {
            self.start(id)?;
        }
        let _ = self.persist();
        Ok(UpgradeReport {
            bundle: id,
            from,
            to,
            handoff_keys,
        })
    }

    /// Recomputes all wirings from scratch. Active bundles whose imports can
    /// no longer be satisfied are stopped and demoted to `INSTALLED`
    /// (a simplified OSGi *refresh packages* operation).
    pub fn refresh(&mut self) {
        let candidates: BTreeMap<BundleId, &BundleManifest> = self
            .bundles
            .values()
            .filter(|b| b.state != BundleState::Uninstalled)
            .map(|b| (b.id, &b.manifest))
            .collect();
        let report = crate::resolver::resolve(&candidates, &BTreeMap::new());
        let failed: Vec<BundleId> = report.failed.keys().copied().collect();
        self.wirings = report.resolved.clone();
        for (id, _) in report.resolved {
            let b = self
                .bundles
                .get_mut(&id)
                .expect("resolver only reports installed ids");
            if b.state == BundleState::Installed {
                b.state = BundleState::Resolved;
                self.event(id, BundleEventKind::Resolved);
                self.mark_bundle_dirty(id);
            }
        }
        for id in failed {
            let state = self.bundles.get(&id).map(|b| b.state);
            if state == Some(BundleState::Active) {
                let _ = self.stop_transient(id);
            }
            let demoted = self.bundles.get_mut(&id).is_some_and(|b| {
                if b.state != BundleState::Installed {
                    b.state = BundleState::Installed;
                    true
                } else {
                    false
                }
            });
            if demoted {
                self.mark_bundle_dirty(id);
            }
            self.wirings.remove(&id);
        }
    }

    // ------------------------------------------------------------------
    // Start levels and shutdown
    // ------------------------------------------------------------------

    /// The active start level.
    pub fn start_level(&self) -> u32 {
        self.config.start_level
    }

    /// Moves the framework to `level`: persistently-started bundles at or
    /// below the level are started (ascending level order); active bundles
    /// above it are stopped transiently (descending order). Activator
    /// failures are recorded as framework events and do not abort the sweep.
    pub fn set_start_level(&mut self, level: u32) {
        let mut to_start: Vec<(u32, BundleId)> = self
            .bundles
            .values()
            .filter(|b| {
                b.autostart && b.state != BundleState::Active && b.manifest.start_level <= level
            })
            .map(|b| (b.manifest.start_level, b.id))
            .collect();
        to_start.sort();
        let mut to_stop: Vec<(u32, BundleId)> = self
            .bundles
            .values()
            .filter(|b| b.state == BundleState::Active && b.manifest.start_level > level)
            .map(|b| (b.manifest.start_level, b.id))
            .collect();
        to_stop.sort_by(|a, b| b.cmp(a));
        for (_, id) in to_stop {
            let _ = self.stop_transient(id);
        }
        for (_, id) in to_start {
            if let Err(e) = self.start(id) {
                self.framework_events.push(FrameworkEvent::Error {
                    bundle: Some(id),
                    message: e.to_string(),
                });
            }
        }
        self.config.start_level = level;
        self.framework_events
            .push(FrameworkEvent::StartLevelChanged { level });
        self.mark_header_dirty();
        let _ = self.persist();
    }

    /// Orderly shutdown: stops all active bundles in descending start-level
    /// order *without* clearing their persistent-start flags, then persists
    /// the final state. After `restore`, the same bundles come back.
    pub fn shutdown(&mut self) {
        self.framework_events.push(FrameworkEvent::ShuttingDown);
        let mut active: Vec<(u32, BundleId)> = self
            .bundles
            .values()
            .filter(|b| b.state == BundleState::Active)
            .map(|b| (b.manifest.start_level, b.id))
            .collect();
        active.sort_by(|a, b| b.cmp(a));
        for (_, id) in active {
            let _ = self.stop_transient(id);
        }
        let _ = self.persist();
    }

    // ------------------------------------------------------------------
    // Class loading
    // ------------------------------------------------------------------

    /// Loads `symbol` through `bundle`'s class space: boot delegation, then
    /// imported packages, then the bundle's own content.
    ///
    /// # Errors
    ///
    /// See [`LoadError`]. An `INSTALLED` bundle triggers a resolution
    /// attempt first, as in OSGi.
    pub fn load_class(
        &mut self,
        bundle: BundleId,
        symbol: &SymbolName,
    ) -> Result<ClassRef, LoadError> {
        let state = self
            .bundles
            .get(&bundle)
            .map(|b| b.state)
            .ok_or(LoadError::Unresolved(bundle))?;
        if state == BundleState::Installed {
            self.resolve_all();
        }
        let b = self
            .bundles
            .get(&bundle)
            .ok_or(LoadError::Unresolved(bundle))?;
        if !b.state.is_resolved() {
            return Err(LoadError::Unresolved(bundle));
        }
        // 1. Boot delegation.
        if self.config.boot.covers(symbol.package()) {
            return Ok(ClassRef {
                symbol: symbol.clone(),
                defined_by: None,
                via: LoadPath::Boot,
            });
        }
        // 2. Imported packages (imports shadow own content, as in OSGi).
        if let Some(wiring) = self.wirings.get(&bundle) {
            if let Some(&(exporter, _)) = wiring.imports.get(symbol.package()) {
                let exp = self
                    .bundles
                    .get(&exporter)
                    .ok_or_else(|| LoadError::NotFound(symbol.clone()))?;
                let pkg = exp
                    .manifest
                    .exports
                    .iter()
                    .find(|e| &e.name == symbol.package())
                    .ok_or_else(|| LoadError::NotFound(symbol.clone()))?;
                return if pkg.symbols.iter().any(|s| s == symbol.simple()) {
                    Ok(ClassRef {
                        symbol: symbol.clone(),
                        defined_by: Some(exporter),
                        via: LoadPath::Import,
                    })
                } else {
                    Err(LoadError::NoSuchSymbol {
                        package: symbol.package().clone(),
                        simple: symbol.simple().to_owned(),
                    })
                };
            }
        }
        // 3. The bundle's own content.
        for pkg in b.manifest.own_packages() {
            if &pkg.name == symbol.package() {
                return if pkg.symbols.iter().any(|s| s == symbol.simple()) {
                    Ok(ClassRef {
                        symbol: symbol.clone(),
                        defined_by: Some(bundle),
                        via: LoadPath::Own,
                    })
                } else {
                    Err(LoadError::NoSuchSymbol {
                        package: symbol.package().clone(),
                        simple: symbol.simple().to_owned(),
                    })
                };
            }
        }
        Err(LoadError::NotFound(symbol.clone()))
    }

    // ------------------------------------------------------------------
    // Services
    // ------------------------------------------------------------------

    /// Registers a service on behalf of `owner`.
    pub fn register_service(
        &mut self,
        owner: BundleId,
        interfaces: &[&str],
        properties: BTreeMap<String, PropValue>,
        implementation: Box<dyn Service>,
    ) -> ServiceId {
        self.registry
            .register(owner, interfaces, properties, implementation)
    }

    /// The best service offering `interface`.
    pub fn best_service(&self, interface: &str) -> Option<ServiceId> {
        self.registry.best(interface)
    }

    /// Invokes a service, charging usage to its owner. The owning bundle's
    /// persistent storage area is attached to the call context; if the call
    /// writes to it, the area is flushed to the SAN afterwards — so a
    /// stateful service's persisted state is already on shared storage when
    /// a crash happens.
    ///
    /// # Errors
    ///
    /// Lookup and implementation errors (see [`ServiceError`]).
    pub fn call_service(
        &mut self,
        id: ServiceId,
        method: &str,
        arg: &Value,
    ) -> Result<Value, ServiceError> {
        let owner_sn = self
            .registry
            .owner_of(id)
            .and_then(|b| self.bundles.get(&b))
            .map(|b| b.manifest.symbolic_name.as_str().to_owned());
        let Some(sn) = owner_sn else {
            // Unknown service: let the registry produce the right error.
            return self.registry.call(id, &mut self.ledger, method, arg);
        };
        let mut area = self.data_areas.remove(&sn).unwrap_or_default();
        // After a restore the in-memory area starts empty while the SAN
        // holds the persisted state: warm it up on first access. A failed
        // warm-up fails the call — running the service against possibly
        // incomplete state would silently drop persisted writes.
        if area.is_empty() {
            if let Some((store, ns)) = &self.store {
                match store.read_namespace(&format!("{ns}/data/{sn}")) {
                    Ok(pairs) => {
                        for (k, v) in pairs {
                            area.insert(k, v);
                        }
                    }
                    Err(e) => {
                        self.data_areas.insert(sn, area);
                        return Err(ServiceError::Store(e));
                    }
                }
            }
        }
        let outcome = self
            .registry
            .call_with_store(id, &mut self.ledger, &mut area, method, arg);
        let mut flush_err = None;
        if let Ok((_, true)) = &outcome {
            if let Some((store, ns)) = &self.store {
                let entries: Vec<(String, Value)> =
                    area.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                if let Err(e) = store.put_many(&format!("{ns}/data/{sn}"), &entries) {
                    // The in-memory effect stands, but the caller must NOT
                    // treat the call as durably acknowledged; the area is
                    // re-flushed by the node tick.
                    self.dirty_areas.insert(sn.clone());
                    flush_err = Some(e);
                }
            }
        }
        self.data_areas.insert(sn, area);
        match flush_err {
            Some(e) => Err(ServiceError::Store(e)),
            None => outcome.map(|(v, _)| v),
        }
    }

    /// Read access to the service registry.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// Mutable access to the service registry (used by the vosgi layer to
    /// register manager services and share host services).
    pub fn registry_mut(&mut self) -> &mut ServiceRegistry {
        &mut self.registry
    }

    // ------------------------------------------------------------------
    // Bundle data areas (persistent storage)
    // ------------------------------------------------------------------

    /// Writes to a bundle's persistent storage area (write-through to the
    /// SAN if attached), charging the bytes to the bundle's disk account.
    ///
    /// # Errors
    ///
    /// [`BundleError::NotFound`] for unknown bundles;
    /// [`BundleError::Store`] when the SAN write-through fails — the
    /// in-memory area is updated regardless and marked dirty for a later
    /// [`flush_persist`](Self::flush_persist).
    pub fn bundle_store_put(
        &mut self,
        bundle: BundleId,
        key: &str,
        value: Value,
    ) -> Result<(), BundleError> {
        let sn = self
            .bundles
            .get(&bundle)
            .map(|b| b.manifest.symbolic_name.as_str().to_owned())
            .ok_or(BundleError::NotFound(bundle))?;
        self.ledger.charge_disk(bundle, value.encoded_len() as u64);
        self.data_areas
            .entry(sn.clone())
            .or_default()
            .insert(key.to_owned(), value.clone());
        if let Some((store, ns)) = &self.store {
            if let Err(e) = store.put(&format!("{ns}/data/{sn}"), key, value) {
                self.dirty_areas.insert(sn);
                return Err(BundleError::Store(e));
            }
        }
        Ok(())
    }

    /// Reads from a bundle's persistent storage area (falling back to the
    /// SAN, which is how state written before a migration is found again on
    /// the destination node).
    ///
    /// # Errors
    ///
    /// [`BundleError::NotFound`] for unknown bundles; [`BundleError::Store`]
    /// when the SAN fallback read fails.
    pub fn bundle_store_get(
        &self,
        bundle: BundleId,
        key: &str,
    ) -> Result<Option<Value>, BundleError> {
        let sn = self
            .bundles
            .get(&bundle)
            .map(|b| b.manifest.symbolic_name.as_str().to_owned())
            .ok_or(BundleError::NotFound(bundle))?;
        if let Some(v) = self.data_areas.get(&sn).and_then(|m| m.get(key)) {
            return Ok(Some(v.clone()));
        }
        match &self.store {
            Some((store, ns)) => Ok(store.get(&format!("{ns}/data/{sn}"), key)?),
            None => Ok(None),
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// A bundle's current state.
    ///
    /// # Errors
    ///
    /// [`BundleError::NotFound`] for unknown ids.
    pub fn bundle_state(&self, id: BundleId) -> Result<BundleState, BundleError> {
        self.bundles
            .get(&id)
            .map(|b| b.state)
            .ok_or(BundleError::NotFound(id))
    }

    /// Looks up a bundle by id.
    pub fn bundle(&self, id: BundleId) -> Option<&Bundle> {
        self.bundles.get(&id)
    }

    /// Iterates over installed bundles in id order.
    pub fn bundles(&self) -> impl Iterator<Item = &Bundle> {
        self.bundles.values()
    }

    /// Bundles that should be running but are not: marked autostart, within
    /// the active start level, yet not `ACTIVE` — typically because their
    /// activator failed during a [`restore`](Framework::restore) (e.g. a
    /// transient SAN read error while recovering state). A restored
    /// framework with degraded bundles is only *partially* re-materialized;
    /// the adoption layer treats that as a failed adoption and retries.
    pub fn degraded_bundles(&self) -> Vec<BundleId> {
        self.bundles
            .values()
            .filter(|b| {
                b.autostart
                    && b.manifest.start_level <= self.config.start_level
                    && !b.state.is_active()
            })
            .map(|b| b.id)
            .collect()
    }

    /// Finds a bundle by symbolic name (any version; lowest id wins).
    pub fn find_bundle(&self, symbolic_name: &str) -> Option<BundleId> {
        self.bundles
            .values()
            .find(|b| b.manifest.symbolic_name.as_str() == symbolic_name)
            .map(|b| b.id)
    }

    /// The wiring of a resolved bundle.
    pub fn wiring(&self, id: BundleId) -> Option<&Wiring> {
        self.wirings.get(&id)
    }

    /// The resource-usage ledger.
    pub fn ledger(&self) -> &UsageLedger {
        &self.ledger
    }

    /// Mutable access to the ledger (activation-time accounting).
    pub fn ledger_mut(&mut self) -> &mut UsageLedger {
        &mut self.ledger
    }

    /// Drains queued bundle events.
    pub fn take_bundle_events(&mut self) -> Vec<BundleEvent> {
        std::mem::take(&mut self.bundle_events)
    }

    /// Drains queued framework events.
    pub fn take_framework_events(&mut self) -> Vec<FrameworkEvent> {
        std::mem::take(&mut self.framework_events)
    }

    /// Drains queued service events.
    pub fn take_service_events(&mut self) -> Vec<ServiceEvent> {
        self.registry.take_events()
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Marks a bundle's snapshot row as ahead of the SAN. Every in-memory
    /// lifecycle mutation must mark the rows it touched; the persist call
    /// sites then flush exactly the marked rows (write-behind on failure).
    fn mark_bundle_dirty(&mut self, id: BundleId) {
        if self.store.is_some() {
            self.dirty_rows.insert(persist::bundle_key(id));
        }
    }

    /// Marks the header row (`next_bundle` / `start_level`) dirty.
    fn mark_header_dirty(&mut self) {
        if self.store.is_some() {
            self.dirty_rows.insert(persist::HEADER_KEY.to_owned());
        }
    }

    /// Marks every snapshot row dirty — used when the SAN copy cannot be
    /// assumed to match anything (store attach, restore). Change detection
    /// in the store makes rewriting an identical row free.
    fn mark_all_rows_dirty(&mut self) {
        if self.store.is_none() {
            return;
        }
        self.dirty_rows.insert(persist::HEADER_KEY.to_owned());
        let keys: Vec<String> = self
            .bundles
            .keys()
            .map(|id| persist::bundle_key(*id))
            .collect();
        self.dirty_rows.extend(keys);
    }

    /// Writes the changed snapshot rows of the framework state to the
    /// attached store, if any. Called automatically after every lifecycle
    /// mutation; rows that did not change since the last persist are not
    /// rewritten (dirty-tracking at bundle granularity), and the store
    /// additionally skips rows whose bytes are identical.
    ///
    /// Persistence is **write-behind** with respect to lifecycle progress: a
    /// transient SAN failure does not roll back the in-memory transition.
    /// Instead the framework leaves the rows marked dirty, records a
    /// [`FrameworkEvent::Error`], and relies on a later
    /// [`flush_persist`](Self::flush_persist) (the node tick drives one with
    /// backoff) to converge durable state.
    ///
    /// # Errors
    ///
    /// The [`StoreError`] from the failed write; the rows stay dirty.
    pub fn persist(&mut self) -> Result<(), StoreError> {
        let Some((store, ns)) = self.store.clone() else {
            return Ok(());
        };
        match self.persist_rows(&store, &ns) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.framework_events.push(FrameworkEvent::Error {
                    bundle: None,
                    message: format!("snapshot persist deferred: {e}"),
                });
                Err(e)
            }
        }
    }

    fn persist_rows(&mut self, store: &SharedStore, ns: &str) -> Result<(), StoreError> {
        // Deletes first: an uninstalled bundle's row must be gone before a
        // concurrent restore could reassemble it into a stale bundle.
        let deletes: Vec<String> = self.deleted_rows.iter().cloned().collect();
        for key in deletes {
            match store.delete(ns, &key) {
                Ok(()) | Err(StoreError::NotFound { .. }) => {
                    self.deleted_rows.remove(&key);
                }
                Err(e) => return Err(e),
            }
        }
        if self.dirty_rows.is_empty() {
            return Ok(());
        }
        let mut entries: Vec<(String, Value)> = Vec::with_capacity(self.dirty_rows.len());
        for key in &self.dirty_rows {
            if key == persist::HEADER_KEY {
                entries.push((
                    key.clone(),
                    persist::header_row(self.next_bundle, self.config.start_level),
                ));
            } else if let Some(id) = persist::parse_bundle_key(key) {
                // A dirty row for a since-uninstalled bundle was replaced
                // by a delete marker; nothing to write.
                if let Some(b) = self.bundles.get(&id) {
                    entries.push((key.clone(), persist::bundle_row(b)));
                }
            }
        }
        store.put_many(ns, &entries)?;
        self.telemetry
            .add("persist.rows_written", entries.len() as u64);
        self.telemetry.add(
            "persist.rows_skipped",
            (self.bundles.len() as u64 + 1).saturating_sub(entries.len() as u64),
        );
        self.dirty_rows.clear();
        Ok(())
    }

    /// True when a snapshot-row or data-area write-through failed and
    /// durable state lags the in-memory state.
    pub fn persist_dirty(&self) -> bool {
        !self.dirty_rows.is_empty() || !self.deleted_rows.is_empty() || !self.dirty_areas.is_empty()
    }

    /// Retries every pending persistence: dirty snapshot rows, pending row
    /// deletes, and each data area whose write-through failed. Stops at the
    /// first error, leaving the remainder dirty for the next attempt.
    ///
    /// # Errors
    ///
    /// The first [`StoreError`] hit; [`persist_dirty`](Self::persist_dirty)
    /// remains true.
    pub fn flush_persist(&mut self) -> Result<(), StoreError> {
        let Some((store, ns)) = self.store.clone() else {
            self.dirty_rows.clear();
            self.deleted_rows.clear();
            self.dirty_areas.clear();
            return Ok(());
        };
        if !self.dirty_rows.is_empty() || !self.deleted_rows.is_empty() {
            self.persist()?;
        }
        let pending: Vec<String> = self.dirty_areas.iter().cloned().collect();
        for sn in pending {
            let entries: Vec<(String, Value)> = self
                .data_areas
                .get(&sn)
                .map(|a| a.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
                .unwrap_or_default();
            // Rewriting the full area is the idempotent recovery for torn
            // batch writes as well as plain failures.
            store.put_many(&format!("{ns}/data/{sn}"), &entries)?;
            self.dirty_areas.remove(&sn);
        }
        Ok(())
    }

    /// The encoded size of the persisted snapshot rows in bytes (0 when no
    /// store is attached) — the state a migration must move.
    pub fn snapshot_bytes(&self) -> u64 {
        match &self.store {
            // A metric, not a data read: namespace_bytes bypasses the fault
            // layer so sizing stays observable during brown-outs.
            Some((store, ns)) => store.namespace_bytes(ns),
            None => 0,
        }
    }

    /// Reconstructs a framework from the per-bundle snapshot rows stored
    /// under `namespace` (reassembled via `read_namespace`; a legacy
    /// monolithic snapshot restores too and is converted to rows),
    /// reinstalling every bundle (activators re-created via `factory`) and
    /// restarting the ones that were persistently started.
    ///
    /// This is the paper's migration/redeployment path: the OSGi spec makes
    /// framework state persistent, the SAN makes it visible cluster-wide, so
    /// any node can re-materialize the instance.
    ///
    /// # Errors
    ///
    /// [`BundleError::CorruptState`] when no snapshot exists or it fails to
    /// parse; [`BundleError::Store`] when the SAN rejects the read (usually
    /// transient — the adoption retry loop distinguishes the two).
    pub fn restore(
        config: FrameworkConfig,
        store: SharedStore,
        namespace: &str,
        factory: &ActivatorFactory,
    ) -> Result<Framework, BundleError> {
        let rows = store.read_namespace(namespace)?;
        let legacy = rows.iter().any(|(k, _)| k == persist::LEGACY_SNAPSHOT_KEY)
            && !rows.iter().any(|(k, _)| k == persist::HEADER_KEY);
        let parsed = persist::assemble(&rows)
            .map_err(BundleError::CorruptState)?
            .ok_or_else(|| BundleError::CorruptState(format!("no snapshot in {namespace}")))?;
        let mut fw = Framework::with_config(config);
        fw.config.start_level = parsed.start_level;
        for record in &parsed.bundles {
            let activator = factory.create(&record.manifest);
            fw.bundles.insert(
                record.id,
                Bundle {
                    id: record.id,
                    manifest: record.manifest.clone(),
                    state: BundleState::Installed,
                    autostart: record.autostart,
                    state_version: record.state_version,
                    activator,
                },
            );
            fw.event(record.id, BundleEventKind::Installed);
        }
        fw.next_bundle = parsed.next_bundle;
        // Attach the store before restarting anything: activators read
        // their persisted data areas during start.
        fw.store = Some((store, namespace.to_owned()));
        if legacy {
            // The trailing persist rewrites the state as rows; drop the
            // monolithic key so the namespace holds exactly one copy.
            fw.deleted_rows
                .insert(persist::LEGACY_SNAPSHOT_KEY.to_owned());
        }
        fw.resolve_all();
        // Restart persistently-started bundles within the start level, in
        // (start level, id) order.
        let mut to_start: Vec<(u32, BundleId)> = parsed
            .bundles
            .iter()
            .filter(|r| r.autostart && r.manifest.start_level <= parsed.start_level)
            .map(|r| (r.manifest.start_level, r.id))
            .collect();
        to_start.sort();
        for (_, id) in to_start {
            if let Err(e) = fw.start(id) {
                fw.framework_events.push(FrameworkEvent::Error {
                    bundle: Some(id),
                    message: e.to_string(),
                });
            }
        }
        // Re-mark everything: restored in-memory states can lag the rows
        // just read (e.g. a bundle persisted RESOLVED that no longer
        // resolves stays INSTALLED). Unchanged rows cost nothing to
        // rewrite thanks to store-level change detection.
        fw.mark_all_rows_dirty();
        let _ = fw.persist();
        Ok(fw)
    }

    fn event(&mut self, bundle: BundleId, kind: BundleEventKind) {
        let label = match kind {
            BundleEventKind::Installed => "osgi.lifecycle.installed",
            BundleEventKind::Resolved => "osgi.lifecycle.resolved",
            BundleEventKind::Started => "osgi.lifecycle.started",
            BundleEventKind::Stopped => "osgi.lifecycle.stopped",
            BundleEventKind::Updated => "osgi.lifecycle.updated",
            BundleEventKind::Upgraded => "osgi.lifecycle.upgraded",
            BundleEventKind::Uninstalled => "osgi.lifecycle.uninstalled",
        };
        self.telemetry.incr(label);
        self.bundle_events.push(BundleEvent { bundle, kind });
    }

    fn set_state(&mut self, id: BundleId, state: BundleState) {
        if let Some(b) = self.bundles.get_mut(&id) {
            b.state = state;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnActivator, ManifestBuilder, Version, VersionRange};
    use dosgi_san::SharedStore;

    fn log_manifest() -> BundleManifest {
        ManifestBuilder::new("org.test.log", Version::new(1, 0, 0))
            .export_package("org.test.log.api", Version::new(1, 0, 0), ["Logger"])
            .build()
            .unwrap()
    }

    fn app_manifest() -> BundleManifest {
        ManifestBuilder::new("org.test.app", Version::new(1, 0, 0))
            .import_package("org.test.log.api", "[1.0,2.0)".parse().unwrap())
            .private_package("org.test.app.impl", ["Main"])
            .start_level(2)
            .build()
            .unwrap()
    }

    fn log_activator() -> Box<dyn Activator> {
        Box::new(FnActivator::on_start(|ctx| {
            let mut props = BTreeMap::new();
            props.insert("service.ranking".to_owned(), PropValue::Int(5));
            ctx.register_service(
                &["org.test.log.Logger"],
                props,
                Box::new(
                    |_: &mut crate::CallContext<'_>, method: &str, arg: &Value| match method {
                        "log" => Ok(arg.clone()),
                        other => Err(ServiceError::Failed(format!("no {other}"))),
                    },
                ),
            );
            Ok(())
        }))
    }

    #[test]
    fn install_assigns_ids_and_rejects_duplicates() {
        let mut fw = Framework::new("t");
        let a = fw.install(log_manifest(), None).unwrap();
        assert_eq!(a, BundleId(1));
        assert!(matches!(
            fw.install(log_manifest(), None),
            Err(BundleError::DuplicateBundle { existing }) if existing == a
        ));
        // Same name, different version is fine.
        let m2 = ManifestBuilder::new("org.test.log", Version::new(2, 0, 0))
            .build()
            .unwrap();
        assert_eq!(fw.install(m2, None).unwrap(), BundleId(2));
    }

    #[test]
    fn start_resolves_and_runs_activator() {
        let mut fw = Framework::new("t");
        let log = fw.install(log_manifest(), Some(log_activator())).unwrap();
        let app = fw.install(app_manifest(), None).unwrap();
        fw.start(log).unwrap();
        fw.start(app).unwrap();
        assert!(fw.bundle_state(log).unwrap().is_active());
        assert!(fw.bundle_state(app).unwrap().is_active());
        // The activator registered the logger service.
        let sid = fw.best_service("org.test.log.Logger").unwrap();
        let out = fw.call_service(sid, "log", &Value::from("hi")).unwrap();
        assert_eq!(out, Value::from("hi"));
        // Starting an active bundle is a no-op.
        fw.start(log).unwrap();
    }

    #[test]
    fn start_fails_cleanly_on_unresolvable_imports() {
        let mut fw = Framework::new("t");
        let app = fw.install(app_manifest(), None).unwrap();
        let err = fw.start(app).unwrap_err();
        assert!(matches!(err, BundleError::ResolutionFailed { bundle, .. } if bundle == app));
        assert_eq!(fw.bundle_state(app).unwrap(), BundleState::Installed);
    }

    #[test]
    fn failing_activator_rolls_back_and_sweeps_services() {
        let mut fw = Framework::new("t");
        let m = ManifestBuilder::new("org.test.bad", Version::new(1, 0, 0))
            .build()
            .unwrap();
        let id = fw
            .install(
                m,
                Some(Box::new(FnActivator::on_start(|ctx| {
                    // Register, then fail: the registration must be swept.
                    ctx.register_service(
                        &["ghost"],
                        BTreeMap::new(),
                        Box::new(|_: &mut crate::CallContext<'_>, _: &str, _: &Value| {
                            Ok(Value::Null)
                        }),
                    );
                    Err("deliberate".to_owned())
                }))),
            )
            .unwrap();
        let err = fw.start(id).unwrap_err();
        assert!(matches!(err, BundleError::ActivatorFailed { .. }));
        assert_eq!(fw.bundle_state(id).unwrap(), BundleState::Resolved);
        assert!(fw.best_service("ghost").is_none());
        let events = fw.take_framework_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, FrameworkEvent::Error { bundle: Some(b), .. } if *b == id)));
    }

    #[test]
    fn stop_unregisters_services_and_clears_autostart() {
        let mut fw = Framework::new("t");
        let log = fw.install(log_manifest(), Some(log_activator())).unwrap();
        fw.start(log).unwrap();
        assert!(fw.bundle(log).unwrap().autostart);
        fw.stop(log).unwrap();
        assert_eq!(fw.bundle_state(log).unwrap(), BundleState::Resolved);
        assert!(!fw.bundle(log).unwrap().autostart);
        assert!(fw.best_service("org.test.log.Logger").is_none());
        // Stop of non-active bundle is a no-op.
        fw.stop(log).unwrap();
    }

    #[test]
    fn uninstall_removes_bundle_and_dependents_lose_resolution() {
        let mut fw = Framework::new("t");
        let log = fw.install(log_manifest(), Some(log_activator())).unwrap();
        let app = fw.install(app_manifest(), None).unwrap();
        fw.start(log).unwrap();
        fw.start(app).unwrap();
        fw.uninstall(log).unwrap();
        assert!(matches!(
            fw.bundle_state(log),
            Err(BundleError::NotFound(_))
        ));
        // Refresh demotes the dependent.
        fw.refresh();
        assert_eq!(fw.bundle_state(app).unwrap(), BundleState::Installed);
    }

    #[test]
    fn update_replaces_manifest_and_restarts() {
        let mut fw = Framework::new("t");
        let log = fw.install(log_manifest(), Some(log_activator())).unwrap();
        fw.start(log).unwrap();
        let v2 = ManifestBuilder::new("org.test.log", Version::new(1, 1, 0))
            .export_package(
                "org.test.log.api",
                Version::new(1, 1, 0),
                ["Logger", "Appender"],
            )
            .build()
            .unwrap();
        fw.update(log, v2).unwrap();
        assert!(fw.bundle_state(log).unwrap().is_active());
        assert_eq!(
            fw.bundle(log).unwrap().manifest.version,
            Version::new(1, 1, 0)
        );
        let kinds: Vec<BundleEventKind> = fw.take_bundle_events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&BundleEventKind::Updated));
        // Service re-registered by the restarted activator.
        assert!(fw.best_service("org.test.log.Logger").is_some());
    }

    #[test]
    fn upgrade_hands_state_to_new_revision() {
        let store = SharedStore::new();
        let mut fw = Framework::new("u");
        fw.attach_store(store.clone(), "u").unwrap();
        let m1 = ManifestBuilder::new("org.test.ctr", Version::new(1, 0, 0))
            .build()
            .unwrap();
        let id = fw.install(m1, None).unwrap();
        fw.start(id).unwrap();
        fw.bundle_store_put(id, "n", Value::Int(41)).unwrap();
        let m2 = ManifestBuilder::new("org.test.ctr", Version::new(1, 2, 0))
            .build()
            .unwrap();
        // The new activator proves adoption: it reads the handed-off state
        // and fails the start if the handoff lost it.
        let report = fw
            .upgrade_bundle(
                id,
                m2,
                Some(Box::new(FnActivator::on_start(|ctx| {
                    match ctx.store_get("n").map_err(|e| e.to_string())? {
                        Some(Value::Int(n)) => ctx
                            .store_put("n", Value::Int(n + 1))
                            .map_err(|e| e.to_string()),
                        other => Err(format!("state not handed off: {other:?}")),
                    }
                }))),
            )
            .unwrap();
        assert_eq!(report.from, Version::new(1, 0, 0));
        assert_eq!(report.to, Version::new(1, 2, 0));
        assert_eq!(report.handoff_keys, 1);
        assert!(fw.bundle_state(id).unwrap().is_active());
        assert_eq!(fw.bundle(id).unwrap().state_version, Version::new(1, 2, 0));
        assert_eq!(fw.bundle_store_get(id, "n").unwrap(), Some(Value::Int(42)));
        let kinds: Vec<BundleEventKind> = fw.take_bundle_events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&BundleEventKind::Upgraded));
        // The swap is durable: a restore comes back at the new revision
        // with the same compatibility anchor.
        let factory = ActivatorFactory::new();
        let fw2 = Framework::restore(FrameworkConfig::new("u"), store, "u", &factory).unwrap();
        let id2 = fw2.find_bundle("org.test.ctr").unwrap();
        assert_eq!(
            fw2.bundle(id2).unwrap().manifest.version,
            Version::new(1, 2, 0)
        );
        assert_eq!(
            fw2.bundle(id2).unwrap().state_version,
            Version::new(1, 2, 0)
        );
    }

    #[test]
    fn upgrade_rejects_incompatible_targets_untouched() {
        let mut fw = Framework::new("u");
        let id = fw
            .install(
                ManifestBuilder::new("a.b", Version::new(1, 4, 0))
                    .build()
                    .unwrap(),
                None,
            )
            .unwrap();
        fw.start(id).unwrap();
        let major = ManifestBuilder::new("a.b", Version::new(2, 0, 0))
            .build()
            .unwrap();
        assert!(matches!(
            fw.upgrade_bundle(id, major, None),
            Err(BundleError::IncompatibleUpgrade { state, target, .. })
                if state == Version::new(1, 4, 0) && target == Version::new(2, 0, 0)
        ));
        let renamed = ManifestBuilder::new("a.c", Version::new(1, 5, 0))
            .build()
            .unwrap();
        assert!(matches!(
            fw.upgrade_bundle(id, renamed, None),
            Err(BundleError::IncompatibleUpgrade { .. })
        ));
        // The old revision never stopped serving.
        assert!(fw.bundle_state(id).unwrap().is_active());
        assert_eq!(
            fw.bundle(id).unwrap().manifest.version,
            Version::new(1, 4, 0)
        );
        // A downgrade within the major is a legal handoff.
        let downgrade = ManifestBuilder::new("a.b", Version::new(1, 2, 0))
            .build()
            .unwrap();
        let report = fw.upgrade_bundle(id, downgrade, None).unwrap();
        assert_eq!(report.to, Version::new(1, 2, 0));
        assert!(fw.bundle_state(id).unwrap().is_active());
    }

    #[test]
    fn upgrade_rolls_back_on_store_failure() {
        use dosgi_san::FaultPlan;
        let store = SharedStore::new();
        let mut fw = Framework::new("u");
        fw.attach_store(store.clone(), "u").unwrap();
        let id = fw
            .install(
                ManifestBuilder::new("a.b", Version::new(1, 0, 0))
                    .build()
                    .unwrap(),
                None,
            )
            .unwrap();
        fw.start(id).unwrap();
        store.set_fault_plan(FaultPlan::flaky(1.0, 7));
        let v2 = ManifestBuilder::new("a.b", Version::new(1, 1, 0))
            .build()
            .unwrap();
        let err = fw.upgrade_bundle(id, v2.clone(), None).unwrap_err();
        assert!(matches!(err, BundleError::Store(_)));
        // Rolled back: the old revision is serving again.
        assert!(fw.bundle_state(id).unwrap().is_active());
        assert_eq!(
            fw.bundle(id).unwrap().manifest.version,
            Version::new(1, 0, 0)
        );
        // Heal and retry: the same upgrade now lands.
        store.faults().clear();
        let report = fw.upgrade_bundle(id, v2, None).unwrap();
        assert_eq!(report.to, Version::new(1, 1, 0));
        assert!(fw.bundle_state(id).unwrap().is_active());
    }

    #[test]
    fn class_loading_follows_delegation_order() {
        let mut fw = Framework::new("t");
        let log = fw.install(log_manifest(), None).unwrap();
        let app = fw.install(app_manifest(), None).unwrap();
        fw.resolve_all();

        // Boot delegation.
        let sym = SymbolName::parse("std.collections.HashMap").unwrap();
        let r = fw.load_class(app, &sym).unwrap();
        assert_eq!(r.via, LoadPath::Boot);
        assert_eq!(r.defined_by, None);

        // Imported package resolves in the exporter.
        let sym = SymbolName::parse("org.test.log.api.Logger").unwrap();
        let r = fw.load_class(app, &sym).unwrap();
        assert_eq!(r.via, LoadPath::Import);
        assert_eq!(r.defined_by, Some(log));

        // Own private content.
        let sym = SymbolName::parse("org.test.app.impl.Main").unwrap();
        let r = fw.load_class(app, &sym).unwrap();
        assert_eq!(r.via, LoadPath::Own);
        assert_eq!(r.defined_by, Some(app));

        // Wired package without the symbol: NoSuchSymbol, no fallback.
        let sym = SymbolName::parse("org.test.log.api.Missing").unwrap();
        assert!(matches!(
            fw.load_class(app, &sym),
            Err(LoadError::NoSuchSymbol { .. })
        ));

        // Unknown package.
        let sym = SymbolName::parse("com.nowhere.X").unwrap();
        assert!(matches!(
            fw.load_class(app, &sym),
            Err(LoadError::NotFound(_))
        ));

        // Private content of another bundle is NOT visible.
        let sym = SymbolName::parse("org.test.app.impl.Main").unwrap();
        assert!(matches!(
            fw.load_class(log, &sym),
            Err(LoadError::NotFound(_))
        ));
    }

    #[test]
    fn start_levels_sweep_up_and_down() {
        let mut fw = Framework::new("t");
        let log = fw.install(log_manifest(), Some(log_activator())).unwrap(); // level 1
        let app = fw.install(app_manifest(), None).unwrap(); // level 2
        fw.start(log).unwrap();
        fw.start(app).unwrap();
        // Sweep down to level 1: app stops (transiently), log stays.
        fw.set_start_level(1);
        assert_eq!(fw.bundle_state(app).unwrap(), BundleState::Resolved);
        assert!(
            fw.bundle(app).unwrap().autostart,
            "transient stop keeps autostart"
        );
        assert!(fw.bundle_state(log).unwrap().is_active());
        // Sweep back up: app restarts.
        fw.set_start_level(2);
        assert!(fw.bundle_state(app).unwrap().is_active());
        assert_eq!(fw.start_level(), 2);
    }

    #[test]
    fn shutdown_then_restore_recreates_active_set() {
        let store = SharedStore::new();
        let mut factory = ActivatorFactory::new();
        factory.register("org.test.log", |_| log_activator());

        let mut fw = Framework::new("node-a");
        fw.attach_store(store.clone(), "fw/a").unwrap();
        let log = fw.install(log_manifest(), Some(log_activator())).unwrap();
        let app = fw.install(app_manifest(), None).unwrap();
        fw.set_start_level(2);
        fw.start(log).unwrap();
        fw.start(app).unwrap();
        fw.shutdown();
        assert_eq!(fw.bundle_state(log).unwrap(), BundleState::Resolved);
        drop(fw);

        // "Another node" restores from the SAN.
        let fw2 =
            Framework::restore(FrameworkConfig::new("node-b"), store, "fw/a", &factory).unwrap();
        assert_eq!(fw2.start_level(), 2);
        assert!(fw2.bundle_state(log).unwrap().is_active());
        assert!(fw2.bundle_state(app).unwrap().is_active());
        // The activator was re-created and re-registered its service.
        assert!(fw2.best_service("org.test.log.Logger").is_some());
        // Ids preserved.
        assert_eq!(fw2.find_bundle("org.test.app"), Some(app));
    }

    #[test]
    fn restore_fails_on_missing_snapshot() {
        let err = Framework::restore(
            FrameworkConfig::new("x"),
            SharedStore::new(),
            "nope",
            &ActivatorFactory::new(),
        )
        .unwrap_err();
        assert!(matches!(err, BundleError::CorruptState(_)));
    }

    #[test]
    fn data_area_survives_restore_via_san() {
        let store = SharedStore::new();
        let mut fw = Framework::new("a");
        fw.attach_store(store.clone(), "fw/a").unwrap();
        let log = fw.install(log_manifest(), None).unwrap();
        fw.bundle_store_put(log, "counter", Value::Int(41)).unwrap();
        drop(fw);

        let fw2 = Framework::restore(
            FrameworkConfig::new("b"),
            store,
            "fw/a",
            &ActivatorFactory::new(),
        )
        .unwrap();
        let log2 = fw2.find_bundle("org.test.log").unwrap();
        assert_eq!(
            fw2.bundle_store_get(log2, "counter"),
            Ok(Some(Value::Int(41)))
        );
        assert_eq!(fw2.bundle_store_get(log2, "missing"), Ok(None));
    }

    #[test]
    fn ledger_tracks_service_calls() {
        let mut fw = Framework::new("t");
        let log = fw.install(log_manifest(), Some(log_activator())).unwrap();
        fw.start(log).unwrap();
        let sid = fw.best_service("org.test.log.Logger").unwrap();
        for _ in 0..5 {
            fw.call_service(sid, "log", &Value::Null).unwrap();
        }
        assert_eq!(fw.ledger().snapshot(log).calls, 5);
    }

    #[test]
    fn snapshot_bytes_reports_persisted_size() {
        let store = SharedStore::new();
        let mut fw = Framework::new("a");
        assert_eq!(fw.snapshot_bytes(), 0);
        fw.attach_store(store, "fw/a").unwrap();
        fw.install(log_manifest(), None).unwrap();
        assert!(fw.snapshot_bytes() > 0);
    }

    #[test]
    fn events_flow_for_full_lifecycle() {
        let mut fw = Framework::new("t");
        let log = fw.install(log_manifest(), Some(log_activator())).unwrap();
        fw.start(log).unwrap();
        fw.stop(log).unwrap();
        fw.uninstall(log).unwrap();
        let kinds: Vec<BundleEventKind> = fw.take_bundle_events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                BundleEventKind::Installed,
                BundleEventKind::Resolved,
                BundleEventKind::Started,
                BundleEventKind::Stopped,
                BundleEventKind::Uninstalled,
            ]
        );
        let service_kinds: Vec<crate::ServiceEventKind> =
            fw.take_service_events().iter().map(|e| e.kind).collect();
        assert_eq!(
            service_kinds,
            vec![
                crate::ServiceEventKind::Registered,
                crate::ServiceEventKind::Unregistering
            ]
        );
    }

    #[test]
    fn optional_import_wires_when_available() {
        let mut fw = Framework::new("t");
        let m = ManifestBuilder::new("opt.app", Version::new(1, 0, 0))
            .import_package_optional("org.test.log.api", VersionRange::ANY)
            .build()
            .unwrap();
        let app = fw.install(m, None).unwrap();
        fw.resolve_all();
        assert_eq!(fw.bundle_state(app).unwrap(), BundleState::Resolved);
        assert!(fw.wiring(app).unwrap().imports.is_empty());
        // Install the exporter, refresh: the optional import now wires.
        let log = fw.install(log_manifest(), None).unwrap();
        fw.refresh();
        assert_eq!(
            fw.wiring(app)
                .unwrap()
                .exporter_of(&crate::PackageName::new("org.test.log.api").unwrap()),
            Some(log)
        );
    }

    // ------------------------------------------------------------------
    // Storage fault behavior
    // ------------------------------------------------------------------

    use dosgi_net::SimTime;
    use dosgi_san::FaultPlan;

    fn counter_activator() -> Box<dyn Activator> {
        Box::new(FnActivator::on_start(|ctx| {
            ctx.register_service(
                &["org.test.Counter"],
                BTreeMap::new(),
                Box::new(
                    |cc: &mut crate::CallContext<'_>, method: &str, _: &Value| match method {
                        "incr" => {
                            let n = match cc.store_get("n") {
                                Some(Value::Int(n)) => n,
                                _ => 0,
                            };
                            cc.store_put("n", Value::Int(n + 1));
                            Ok(Value::Int(n + 1))
                        }
                        other => Err(ServiceError::Failed(format!("no {other}"))),
                    },
                ),
            );
            Ok(())
        }))
    }

    #[test]
    fn persist_failure_defers_then_flush_converges() {
        let store = SharedStore::new();
        let mut fw = Framework::new("a");
        fw.attach_store(store.clone(), "fw/a").unwrap();
        fw.install(log_manifest(), None).unwrap();

        // Brown-out: the lifecycle mutation proceeds in memory, the
        // snapshot write is deferred (write-behind).
        store.set_fault_plan(FaultPlan::none().with_brownout(SimTime::ZERO, SimTime::from_secs(5)));
        let app = fw.install(app_manifest(), None).unwrap();
        assert!(fw.persist_dirty());
        assert!(fw.bundle_state(app).is_ok());
        assert!(fw.flush_persist().is_err(), "still browned out");

        // Heal, flush: durable state converges and restore sees both.
        store.set_now(SimTime::from_secs(5));
        fw.flush_persist().unwrap();
        assert!(!fw.persist_dirty());
        drop(fw);
        let fw2 = Framework::restore(
            FrameworkConfig::new("b"),
            store,
            "fw/a",
            &ActivatorFactory::new(),
        )
        .unwrap();
        assert!(fw2.find_bundle("org.test.app").is_some());
    }

    #[test]
    fn unacked_service_write_is_reflushed_not_lost() {
        let store = SharedStore::new();
        let mut fw = Framework::new("a");
        fw.attach_store(store.clone(), "fw/a").unwrap();
        let c = fw
            .install(
                ManifestBuilder::new("org.test.counter", Version::new(1, 0, 0))
                    .build()
                    .unwrap(),
                Some(counter_activator()),
            )
            .unwrap();
        fw.start(c).unwrap();
        let sid = fw.best_service("org.test.Counter").unwrap();
        assert_eq!(
            fw.call_service(sid, "incr", &Value::Null),
            Ok(Value::Int(1))
        );

        // Brown-out: the increment applies in memory but the write-through
        // fails, so the caller must NOT count it as acknowledged.
        store.set_fault_plan(FaultPlan::none().with_brownout(SimTime::ZERO, SimTime::from_secs(5)));
        assert!(matches!(
            fw.call_service(sid, "incr", &Value::Null),
            Err(ServiceError::Store(dosgi_san::StoreError::Unavailable))
        ));
        assert!(fw.persist_dirty());
        assert_eq!(
            store.peek("fw/a/data/org.test.counter", "n"),
            Some(Value::Int(1)),
            "durable state keeps only the acknowledged increment"
        );

        // Heal and flush: the deferred write lands; SAN ≥ acked holds.
        store.set_now(SimTime::from_secs(5));
        fw.flush_persist().unwrap();
        assert_eq!(
            store.peek("fw/a/data/org.test.counter", "n"),
            Some(Value::Int(2))
        );
    }

    #[test]
    fn restore_surfaces_transient_store_errors() {
        let store = SharedStore::new();
        let mut fw = Framework::new("a");
        fw.attach_store(store.clone(), "fw/a").unwrap();
        fw.install(log_manifest(), None).unwrap();
        drop(fw);

        store.set_fault_plan(FaultPlan::none().with_brownout(SimTime::ZERO, SimTime::from_secs(5)));
        let err = Framework::restore(
            FrameworkConfig::new("b"),
            store.clone(),
            "fw/a",
            &ActivatorFactory::new(),
        )
        .unwrap_err();
        assert!(matches!(&err, BundleError::Store(e) if e.is_transient()));

        store.set_now(SimTime::from_secs(5));
        assert!(Framework::restore(
            FrameworkConfig::new("b"),
            store,
            "fw/a",
            &ActivatorFactory::new(),
        )
        .is_ok());
    }

    /// Random lifecycle sequences with SAN faults injected mid-stream: the
    /// store-attached framework must (a) never let a fault change a
    /// lifecycle outcome (its in-memory state stays byte-identical to a
    /// storeless oracle applying the same ops), and (b) once the SAN heals
    /// and the write-behind rows flush, its per-bundle rows must reassemble
    /// byte-identically to the monolithic snapshot the oracle would write.
    /// Restoring from the rows and from the legacy monolithic snapshot must
    /// then agree byte-for-byte too. The whole property runs against
    /// *every* registered SAN backend — the storeless oracle is the same,
    /// so this is the backend conformance suite's view from the OSGi layer.
    #[test]
    fn prop_row_persistence_matches_monolithic_oracle_under_faults() {
        use dosgi_testkit::{prop, prop_verify, Gen, PropResult};

        #[derive(Debug, Clone)]
        enum Op {
            Install(u8),
            Start(u8),
            Stop(u8),
            Uninstall(u8),
            SetStartLevel(u8),
            DataPut(u8),
            Fault(u8),
            Heal,
        }

        fn pool() -> Vec<BundleManifest> {
            (0..8u32)
                .map(|i| {
                    let mut b =
                        ManifestBuilder::new(&format!("org.prop.b{i}"), Version::new(1, 0, 0))
                            .private_package(&format!("org.prop.b{i}.impl"), ["Main"]);
                    if i % 3 == 0 {
                        b = b.start_level(2);
                    }
                    b.build().unwrap()
                })
                .collect()
        }

        fn apply(
            fw: &mut Framework,
            manifests: &[BundleManifest],
            op: &Op,
            store: Option<&SharedStore>,
        ) {
            match *op {
                Op::Install(n) => {
                    let _ = fw.install(manifests[n as usize % manifests.len()].clone(), None);
                }
                Op::Start(n) => {
                    let _ = fw.start(BundleId(u64::from(n) % 12 + 1));
                }
                Op::Stop(n) => {
                    let _ = fw.stop(BundleId(u64::from(n) % 12 + 1));
                }
                Op::Uninstall(n) => {
                    let _ = fw.uninstall(BundleId(u64::from(n) % 12 + 1));
                }
                Op::SetStartLevel(n) => fw.set_start_level(u32::from(n)),
                Op::DataPut(n) => {
                    let _ = fw.bundle_store_put(
                        BundleId(u64::from(n) % 12 + 1),
                        &format!("k{}", n % 3),
                        Value::Int(i64::from(n)),
                    );
                }
                Op::Fault(n) => {
                    // Only the store-attached framework sees the SAN; the
                    // oracle has none to fault.
                    if let Some(store) = store {
                        store.set_fault_plan(
                            FaultPlan::flaky(f64::from(n % 40) / 100.0, u64::from(n) * 977 + 13)
                                .with_torn_writes(f64::from(n % 3) / 4.0),
                        );
                    }
                }
                Op::Heal => {
                    if let Some(store) = store {
                        store.faults().clear();
                    }
                }
            }
        }

        let ops = prop::vecs(
            prop::one_of(vec![
                prop::u8s(0, 7).map(Op::Install),
                prop::u8s(0, 11).map(Op::Start),
                prop::u8s(0, 11).map(Op::Stop),
                prop::u8s(0, 11).map(Op::Uninstall),
                prop::u8s(1, 3).map(Op::SetStartLevel),
                prop::u8s(0, 11).map(Op::DataPut),
                prop::u8s(0, 99).map(Op::Fault),
                Gen::new(|_| Op::Heal),
            ]),
            1,
            40,
        );

        prop::check_with(
            &prop::Config::with_cases(200),
            "prop_row_persistence_matches_monolithic_oracle_under_faults",
            &ops,
            |ops: &Vec<Op>| -> PropResult {
                for kind in dosgi_san::BackendKind::all() {
                    let manifests = pool();
                    let store = SharedStore::with_kind(kind);
                    let ns = "prop/fw";
                    let mut fw = Framework::new(ns);
                    fw.attach_store(store.clone(), ns).expect("clean attach");
                    let mut oracle = Framework::new(ns);
                    for op in ops {
                        apply(&mut fw, &manifests, op, Some(&store));
                        apply(&mut oracle, &manifests, op, None);
                    }
                    store.faults().clear();
                    fw.flush_persist().expect("flush after heal");

                    let mono = persist::snapshot(
                        oracle.next_bundle,
                        oracle.start_level(),
                        oracle.bundles(),
                    );
                    let live = persist::snapshot(fw.next_bundle, fw.start_level(), fw.bundles());
                    prop_verify!(
                        live.encode() == mono.encode(),
                        "faulted framework on `{kind}` diverged from the storeless oracle in memory"
                    );

                    let rows = store.read_namespace(ns).expect("healed SAN");
                    let assembled = persist::assemble(&rows)
                        .expect("well-formed rows")
                        .expect("header row present");
                    let rebuilt: Vec<Bundle> = assembled
                        .bundles
                        .into_iter()
                        .map(|r| Bundle {
                            id: r.id,
                            manifest: r.manifest,
                            state: r.state,
                            autostart: r.autostart,
                            state_version: r.state_version,
                            activator: None,
                        })
                        .collect();
                    let from_rows = persist::snapshot(
                        assembled.next_bundle,
                        assembled.start_level,
                        rebuilt.iter(),
                    );
                    prop_verify!(
                        from_rows.encode() == mono.encode(),
                        "persisted rows on `{kind}` diverge from the monolithic oracle snapshot"
                    );

                    // Restore equivalence: rows vs the legacy monolithic key.
                    let legacy_store = SharedStore::with_kind(kind);
                    legacy_store
                        .put(ns, persist::LEGACY_SNAPSHOT_KEY, mono)
                        .expect("clean legacy write");
                    let factory = ActivatorFactory::new();
                    drop(fw);
                    let from_row_store =
                        Framework::restore(FrameworkConfig::new(ns), store.clone(), ns, &factory)
                            .expect("restore from rows");
                    let from_legacy = Framework::restore(
                        FrameworkConfig::new(ns),
                        legacy_store.clone(),
                        ns,
                        &factory,
                    )
                    .expect("restore from legacy snapshot");
                    let a = persist::snapshot(
                        from_row_store.next_bundle,
                        from_row_store.start_level(),
                        from_row_store.bundles(),
                    );
                    let b = persist::snapshot(
                        from_legacy.next_bundle,
                        from_legacy.start_level(),
                        from_legacy.bundles(),
                    );
                    prop_verify!(
                        a.encode() == b.encode(),
                        "row restore and legacy-snapshot restore disagree on `{kind}`"
                    );
                }
                Ok(())
            },
        );
    }
}
