//! # dosgi-osgi — an OSGi-like dynamic module framework
//!
//! The paper builds on the OSGi Service Platform (Release 4): *"Dynamic
//! Module System for the JAVA Platform"*. This crate reimplements the parts
//! of that platform the paper's architecture depends on, in Rust, against a
//! simulated class model:
//!
//! * **Bundles** ([`BundleManifest`], [`Framework::install`]) — named,
//!   versioned modules with explicit package imports/exports;
//! * **Lifecycle** ([`BundleState`]) — installed / resolved / starting /
//!   active / stopping / uninstalled, with start/stop/update/uninstall at
//!   run-time and framework start levels;
//! * **Resolver** — wires each import to an exporter satisfying its version
//!   range (highest version wins, ties broken by lowest bundle id);
//! * **Class spaces** ([`Framework::load_class`]) — symbol lookup through
//!   boot delegation → imported packages → the bundle's own content. This is
//!   the substrate the `dosgi-vosgi` crate extends with the paper's
//!   *explicit-export delegating classloader* for virtual instances;
//! * **Service registry** ([`ServiceRegistry`]) — services registered under
//!   interface names with properties, looked up directly or through
//!   LDAP-style [`Filter`]s, ranked, with registration events;
//! * **Persistent framework state** — the OSGi spec requires that *"the
//!   framework state shall be persistent across framework reboots"*; state
//!   snapshots serialize to [`dosgi_san::Value`] and live in the simulated
//!   SAN, which is exactly what makes the paper's migration cheap
//!   (§3.2: "comparable to a normal startup, probably less").
//!
//! "Classes" are [`SymbolName`]s (e.g. `org.example.log.Logger`) resolved
//! through the same delegation order a real OSGi classloader uses; the
//! mechanisms the paper manipulates are name-resolution *policies*, which
//! this model exercises faithfully without a JVM.
//!
//! # Example
//!
//! ```
//! use dosgi_osgi::{Framework, ManifestBuilder, Version};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut fw = Framework::new("example");
//! let manifest = ManifestBuilder::new("org.example.logsvc", Version::new(1, 0, 0))
//!     .export_package("org.example.log", Version::new(1, 0, 0), ["Logger"])
//!     .build()?;
//! let id = fw.install(manifest, None)?;
//! fw.start(id)?;
//! assert!(fw.bundle_state(id)?.is_active());
//! # Ok(())
//! # }
//! ```

mod activator;
mod error;
mod events;
mod filter;
mod framework;
mod ids;
mod ledger;
mod lifecycle;
mod loader;
mod manifest;
/// Framework-state snapshot serialization (public for the migration layer).
pub mod persist;
mod props;
mod registry;
mod resolver;
mod service;
mod tracker;

pub use activator::{Activator, ActivatorFactory, BundleContext, FnActivator};
pub use error::{BundleError, ServiceError};
pub use events::{BundleEvent, BundleEventKind, FrameworkEvent, ServiceEvent, ServiceEventKind};
pub use filter::{Filter, FilterError};
pub use framework::{Bundle, Framework, FrameworkConfig, UpgradeReport};
pub use ids::{BundleId, PackageName, ServiceId, SymbolName, SymbolicName, Version, VersionRange};
pub use ledger::{UsageLedger, UsageSnapshot};
pub use lifecycle::BundleState;
pub use loader::{BootDelegation, ClassRef, LoadError, LoadPath};
pub use manifest::{BundleManifest, ManifestBuilder, PackageExport, PackageImport};
pub use props::PropValue;
pub use registry::{RegistryReader, ServiceMeta, ServiceRecord, ServiceRegistry};
pub use resolver::{ResolutionReport, Wiring};
pub use service::{CallContext, Service};
pub use tracker::ServiceTracker;
