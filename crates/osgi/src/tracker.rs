//! Service trackers: the OSGi `ServiceTracker` utility.
//!
//! Dynamic services come and go as bundles start and stop; a tracker
//! maintains a live, filtered set of matching services from the registry's
//! event stream, so consumers don't re-query on every use. The paper's
//! virtual instances consume host services exactly this way: the instance
//! manager re-wires customers transparently when a host service bounces
//! during an update (§1's "without disrupting the production environment").

use crate::{Filter, ServiceEvent, ServiceEventKind, ServiceId, ServiceRegistry};
use std::collections::BTreeSet;

/// Tracks the set of registered services offering one interface,
/// optionally narrowed by an LDAP filter.
///
/// # Example
///
/// ```
/// use dosgi_osgi::{Framework, ManifestBuilder, ServiceTracker, Version};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fw = Framework::new("t");
/// let mut tracker = ServiceTracker::new("org.example.Log");
/// tracker.open(fw.registry());
/// assert_eq!(tracker.len(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ServiceTracker {
    interface: String,
    filter: Option<Filter>,
    tracked: BTreeSet<ServiceId>,
    added: u64,
    removed: u64,
}

impl ServiceTracker {
    /// Tracks every service registered under `interface`.
    pub fn new(interface: &str) -> Self {
        ServiceTracker {
            interface: interface.to_owned(),
            filter: None,
            tracked: BTreeSet::new(),
            added: 0,
            removed: 0,
        }
    }

    /// Additionally narrows matches with `filter`.
    pub fn with_filter(mut self, filter: Filter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Primes the tracker from the registry's current contents.
    pub fn open(&mut self, registry: &ServiceRegistry) {
        self.tracked = registry
            .references(Some(&self.interface), self.filter.as_ref())
            .into_iter()
            .map(|r| r.id)
            .collect();
        self.added = self.tracked.len() as u64;
    }

    /// Feeds one registry event. Call with every event from
    /// [`Framework::take_service_events`](crate::Framework::take_service_events)
    /// (the registry is consulted for current properties).
    pub fn on_event(&mut self, registry: &ServiceRegistry, event: &ServiceEvent) {
        if !event.interfaces.iter().any(|i| i == &self.interface) {
            return;
        }
        match event.kind {
            ServiceEventKind::Unregistering => {
                if self.tracked.remove(&event.service) {
                    self.removed += 1;
                }
            }
            ServiceEventKind::Registered | ServiceEventKind::Modified => {
                let matches = registry
                    .record(event.service)
                    .map(|r| {
                        self.filter
                            .as_ref()
                            .map(|f| f.matches(&r.properties))
                            .unwrap_or(true)
                    })
                    .unwrap_or(false);
                if matches {
                    if self.tracked.insert(event.service) {
                        self.added += 1;
                    }
                } else if self.tracked.remove(&event.service) {
                    self.removed += 1;
                }
            }
        }
    }

    /// Currently tracked service ids, ascending.
    pub fn tracked(&self) -> Vec<ServiceId> {
        self.tracked.iter().copied().collect()
    }

    /// The best (highest-ranked) tracked service right now.
    pub fn best(&self, registry: &ServiceRegistry) -> Option<ServiceId> {
        registry
            .references(Some(&self.interface), self.filter.as_ref())
            .into_iter()
            .map(|r| r.id)
            .find(|id| self.tracked.contains(id))
    }

    /// Number of tracked services.
    pub fn len(&self) -> usize {
        self.tracked.len()
    }

    /// True when nothing matches.
    pub fn is_empty(&self) -> bool {
        self.tracked.is_empty()
    }

    /// Lifetime counters `(added, removed)` — churn observability.
    pub fn churn(&self) -> (u64, u64) {
        (self.added, self.removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BundleId, CallContext, PropValue, Service, ServiceError};
    use dosgi_san::Value;
    use std::collections::BTreeMap;

    fn svc() -> Box<dyn Service> {
        Box::new(|_: &mut CallContext<'_>, _: &str, _: &Value| {
            Ok::<Value, ServiceError>(Value::Null)
        })
    }

    fn props(pairs: &[(&str, PropValue)]) -> BTreeMap<String, PropValue> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn open_primes_from_existing_registrations() {
        let mut reg = ServiceRegistry::new();
        let a = reg.register(BundleId(1), &["log"], BTreeMap::new(), svc());
        let _other = reg.register(BundleId(1), &["http"], BTreeMap::new(), svc());
        let mut t = ServiceTracker::new("log");
        t.open(&reg);
        assert_eq!(t.tracked(), vec![a]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn events_add_and_remove() {
        let mut reg = ServiceRegistry::new();
        let mut t = ServiceTracker::new("log");
        t.open(&reg);
        let a = reg.register(BundleId(1), &["log"], BTreeMap::new(), svc());
        let b = reg.register(BundleId(2), &["log"], BTreeMap::new(), svc());
        for e in reg.take_events() {
            t.on_event(&reg, &e);
        }
        assert_eq!(t.tracked(), vec![a, b]);
        reg.unregister(a).unwrap();
        for e in reg.take_events() {
            t.on_event(&reg, &e);
        }
        assert_eq!(t.tracked(), vec![b]);
        assert_eq!(t.churn(), (2, 1));
        assert!(!t.is_empty());
    }

    #[test]
    fn filter_gates_membership_and_reacts_to_modification() {
        let mut reg = ServiceRegistry::new();
        let mut t = ServiceTracker::new("log").with_filter("(vendor=acme)".parse().unwrap());
        t.open(&reg);
        let a = reg.register(
            BundleId(1),
            &["log"],
            props(&[("vendor", PropValue::from("acme"))]),
            svc(),
        );
        let b = reg.register(
            BundleId(2),
            &["log"],
            props(&[("vendor", PropValue::from("globex"))]),
            svc(),
        );
        for e in reg.take_events() {
            t.on_event(&reg, &e);
        }
        assert_eq!(t.tracked(), vec![a]);
        // b changes vendor: now it matches.
        reg.set_properties(b, props(&[("vendor", PropValue::from("acme"))]))
            .unwrap();
        for e in reg.take_events() {
            t.on_event(&reg, &e);
        }
        assert_eq!(t.tracked(), vec![a, b]);
        // a changes away: drops out.
        reg.set_properties(a, props(&[("vendor", PropValue::from("x"))]))
            .unwrap();
        for e in reg.take_events() {
            t.on_event(&reg, &e);
        }
        assert_eq!(t.tracked(), vec![b]);
    }

    #[test]
    fn best_respects_ranking() {
        let mut reg = ServiceRegistry::new();
        let mut t = ServiceTracker::new("log");
        t.open(&reg);
        let low = reg.register(
            BundleId(1),
            &["log"],
            props(&[("service.ranking", PropValue::Int(1))]),
            svc(),
        );
        let high = reg.register(
            BundleId(2),
            &["log"],
            props(&[("service.ranking", PropValue::Int(9))]),
            svc(),
        );
        for e in reg.take_events() {
            t.on_event(&reg, &e);
        }
        assert_eq!(t.best(&reg), Some(high));
        reg.unregister(high).unwrap();
        for e in reg.take_events() {
            t.on_event(&reg, &e);
        }
        assert_eq!(t.best(&reg), Some(low));
    }

    #[test]
    fn unrelated_interfaces_are_ignored() {
        let mut reg = ServiceRegistry::new();
        let mut t = ServiceTracker::new("log");
        t.open(&reg);
        reg.register(BundleId(1), &["http"], BTreeMap::new(), svc());
        for e in reg.take_events() {
            t.on_event(&reg, &e);
        }
        assert!(t.is_empty());
    }
}
