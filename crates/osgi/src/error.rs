//! Framework error types.

use crate::{BundleId, BundleState, PackageName, ServiceId, Version};
use dosgi_san::StoreError;
use std::fmt;

/// Errors from bundle lifecycle and framework operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleError {
    /// The bundle id is unknown to this framework.
    NotFound(BundleId),
    /// The requested operation is illegal in the bundle's current state.
    InvalidTransition {
        /// The bundle.
        bundle: BundleId,
        /// Its state at the time of the call.
        state: BundleState,
        /// The operation attempted (`"start"`, `"stop"`, …).
        operation: &'static str,
    },
    /// The resolver could not satisfy one or more mandatory imports.
    ResolutionFailed {
        /// The bundle that failed to resolve.
        bundle: BundleId,
        /// The unsatisfiable imports.
        missing: Vec<PackageName>,
    },
    /// A bundle with the same symbolic name and version is already
    /// installed.
    DuplicateBundle {
        /// The existing bundle.
        existing: BundleId,
    },
    /// The activator returned an error; the bundle was left in the state
    /// noted.
    ActivatorFailed {
        /// The bundle whose activator failed.
        bundle: BundleId,
        /// The activator's message.
        message: String,
    },
    /// A manifest failed validation.
    InvalidManifest(String),
    /// An in-place upgrade was rejected before touching the running
    /// bundle: the target revision cannot adopt the persisted state the
    /// current revision owns (different symbolic name, or a different
    /// major version than the one that wrote the state). Never
    /// transient — retrying the same target cannot succeed.
    IncompatibleUpgrade {
        /// The bundle whose upgrade was rejected.
        bundle: BundleId,
        /// The version owning the persisted state.
        state: Version,
        /// The rejected target version.
        target: Version,
    },
    /// Persistent state could not be read back.
    CorruptState(String),
    /// The SAN rejected a persistence operation (usually transient — see
    /// [`StoreError::is_transient`]).
    Store(StoreError),
}

impl BundleError {
    /// The underlying [`StoreError`] if this error came from the SAN.
    /// Retry/quarantine logic uses this to separate transient storage
    /// faults from semantic failures.
    pub fn store_error(&self) -> Option<&StoreError> {
        match self {
            BundleError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for BundleError {
    fn from(e: StoreError) -> Self {
        BundleError::Store(e)
    }
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::NotFound(id) => write!(f, "bundle {id} not found"),
            BundleError::InvalidTransition {
                bundle,
                state,
                operation,
            } => write!(f, "cannot {operation} bundle {bundle} in state {state}"),
            BundleError::ResolutionFailed { bundle, missing } => {
                write!(f, "bundle {bundle} unresolved; missing imports: ")?;
                for (i, p) in missing.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            BundleError::DuplicateBundle { existing } => {
                write!(
                    f,
                    "same symbolic name and version already installed as {existing}"
                )
            }
            BundleError::ActivatorFailed { bundle, message } => {
                write!(f, "activator of bundle {bundle} failed: {message}")
            }
            BundleError::InvalidManifest(msg) => write!(f, "invalid manifest: {msg}"),
            BundleError::IncompatibleUpgrade {
                bundle,
                state,
                target,
            } => write!(
                f,
                "bundle {bundle}: version {target} cannot adopt state written by {state}"
            ),
            BundleError::CorruptState(msg) => write!(f, "corrupt persistent state: {msg}"),
            BundleError::Store(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

/// Errors from service lookup and invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// No service satisfies the interface/filter.
    NoSuchService(String),
    /// The service id is stale (unregistered).
    Gone(ServiceId),
    /// The service does not implement the invoked method.
    MethodNotFound {
        /// The service invoked.
        service: ServiceId,
        /// The missing method name.
        method: String,
    },
    /// The service implementation reported a failure.
    Failed(String),
    /// A sandbox policy denied the operation (set by the vosgi layer).
    PermissionDenied(String),
    /// The SAN rejected the write-through of the service's persistent data
    /// area; the call's effects were NOT durably acknowledged.
    Store(StoreError),
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::NoSuchService(what) => write!(f, "no such service: {what}"),
            ServiceError::Gone(id) => write!(f, "service {id} has been unregistered"),
            ServiceError::MethodNotFound { service, method } => {
                write!(f, "service {service} has no method {method:?}")
            }
            ServiceError::Failed(msg) => write!(f, "service failed: {msg}"),
            ServiceError::PermissionDenied(msg) => write!(f, "permission denied: {msg}"),
            ServiceError::Store(e) => write!(f, "persistent data area write failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_error_display() {
        let e = BundleError::InvalidTransition {
            bundle: BundleId(3),
            state: BundleState::Active,
            operation: "start",
        };
        assert_eq!(e.to_string(), "cannot start bundle b3 in state ACTIVE");
        let e = BundleError::ResolutionFailed {
            bundle: BundleId(1),
            missing: vec![
                PackageName::new("a.b").unwrap(),
                PackageName::new("c.d").unwrap(),
            ],
        };
        assert_eq!(
            e.to_string(),
            "bundle b1 unresolved; missing imports: a.b, c.d"
        );
    }

    #[test]
    fn service_error_display() {
        assert_eq!(
            ServiceError::MethodNotFound {
                service: ServiceId(2),
                method: "frob".into()
            }
            .to_string(),
            "service s2 has no method \"frob\""
        );
        assert_eq!(
            ServiceError::NoSuchService("org.example.Log".into()).to_string(),
            "no such service: org.example.Log"
        );
    }
}
