//! Serialization of framework state to SAN values.
//!
//! The OSGi specification (quoted in §3.2 of the paper) requires that
//! *"the framework state shall be persistent across framework reboots.
//! Here state means the information associated with the life-cycle of the
//! bundles in the framework, namely which ones are installed and its
//! running state."* That is exactly what a snapshot captures.
//!
//! # On-SAN layout
//!
//! The persisted framework state is stored as **per-bundle rows** inside
//! the framework's namespace, so a dirty flush rewrites only the rows that
//! changed instead of re-encoding the whole framework:
//!
//! ```text
//! <namespace>/header        { next_bundle, start_level }
//! <namespace>/bundle/<id>   { id, manifest, state, autostart }
//! ```
//!
//! [`assemble`] reconstructs a [`Snapshot`] from a `read_namespace` listing
//! and falls back to the pre-row monolithic `snapshot` key so state written
//! by the old layout restores unchanged. [`snapshot`]/[`parse_snapshot`]
//! keep the monolithic encoding alive as the equivalence oracle: assembling
//! the rows must produce a byte-identical snapshot value.

use crate::framework::Bundle;
use crate::{BundleId, BundleManifest, BundleState, Version};
use dosgi_san::Value;

/// Key of the header row (`next_bundle` + `start_level`).
pub const HEADER_KEY: &str = "header";

/// Key prefix of per-bundle rows.
pub const BUNDLE_KEY_PREFIX: &str = "bundle/";

/// Key of the legacy monolithic snapshot (pre-row layout).
pub const LEGACY_SNAPSHOT_KEY: &str = "snapshot";

/// The row key of a bundle.
pub fn bundle_key(id: BundleId) -> String {
    format!("{BUNDLE_KEY_PREFIX}{}", id.0)
}

/// Parses a `bundle/<id>` row key back into the bundle id.
pub fn parse_bundle_key(key: &str) -> Option<BundleId> {
    key.strip_prefix(BUNDLE_KEY_PREFIX)
        .and_then(|id| id.parse().ok())
        .map(BundleId)
}

/// One bundle's persisted record.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleRecord {
    /// The bundle's id (preserved across restore).
    pub id: BundleId,
    /// The manifest.
    pub manifest: BundleManifest,
    /// The persisted lifecycle state (`ACTIVE` collapses transient states).
    pub state: BundleState,
    /// Whether the bundle is persistently started.
    pub autostart: bool,
    /// The bundle version that last owned the persisted data area — the
    /// compatibility anchor an in-place upgrade checks before adopting
    /// the state. Rows written before this field existed default to the
    /// manifest version.
    pub state_version: Version,
}

/// A parsed framework snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Next bundle id to allocate.
    pub next_bundle: u64,
    /// Active start level at persist time.
    pub start_level: u32,
    /// All installed bundles.
    pub bundles: Vec<BundleRecord>,
}

/// Serializes the header row: the non-bundle framework state.
pub fn header_row(next_bundle: u64, start_level: u32) -> Value {
    Value::map()
        .with("next_bundle", next_bundle)
        .with("start_level", i64::from(start_level))
}

/// Serializes one bundle's row — the same map shape a bundle has inside
/// the monolithic [`snapshot`], so row and oracle encodings agree.
pub fn bundle_row(b: &Bundle) -> Value {
    Value::map()
        .with("id", b.id.0)
        .with("manifest", b.manifest.to_value())
        .with("state", b.state.as_str())
        .with("autostart", b.autostart)
        .with("state_version", b.state_version.to_string())
}

/// Serializes framework state into a single monolithic [`Value`].
pub fn snapshot<'a>(
    next_bundle: u64,
    start_level: u32,
    bundles: impl Iterator<Item = &'a Bundle>,
) -> Value {
    Value::map()
        .with("next_bundle", next_bundle)
        .with("start_level", i64::from(start_level))
        .with("bundles", Value::List(bundles.map(bundle_row).collect()))
}

fn parse_bundle_record(b: &Value) -> Result<BundleRecord, String> {
    let id = b
        .get("id")
        .and_then(Value::as_int)
        .ok_or("bundle record missing id")? as u64;
    let manifest =
        BundleManifest::from_value(b.get("manifest").ok_or("bundle record missing manifest")?)?;
    let state = BundleState::parse(
        b.get("state")
            .and_then(Value::as_str)
            .ok_or("bundle record missing state")?,
    )?;
    let state_version = match b.get("state_version").and_then(Value::as_str) {
        Some(s) => s
            .parse()
            .map_err(|_| format!("bad state_version {s:?} in bundle record"))?,
        None => manifest.version,
    };
    Ok(BundleRecord {
        id: BundleId(id),
        manifest,
        state,
        autostart: b.get("autostart").and_then(Value::as_bool).unwrap_or(false),
        state_version,
    })
}

/// Reassembles a [`Snapshot`] from a `read_namespace` listing of the
/// framework's namespace: the [`HEADER_KEY`] row plus one
/// [`bundle_key`] row per bundle. Falls back to parsing a legacy
/// monolithic [`LEGACY_SNAPSHOT_KEY`] value when no header row exists.
/// Returns `Ok(None)` when the namespace holds no framework state at all.
///
/// # Errors
///
/// Returns a description of the first missing or malformed field.
pub fn assemble(pairs: &[(String, Value)]) -> Result<Option<Snapshot>, String> {
    let header = pairs.iter().find(|(k, _)| k == HEADER_KEY);
    let Some((_, header)) = header else {
        if let Some((_, legacy)) = pairs.iter().find(|(k, _)| k == LEGACY_SNAPSHOT_KEY) {
            return parse_snapshot(legacy).map(Some);
        }
        return Ok(None);
    };
    let next_bundle = header
        .get("next_bundle")
        .and_then(Value::as_int)
        .ok_or("header missing next_bundle")? as u64;
    let start_level = header
        .get("start_level")
        .and_then(Value::as_int)
        .ok_or("header missing start_level")?
        .try_into()
        .map_err(|_| "negative start_level")?;
    let mut bundles = pairs
        .iter()
        .filter(|(k, _)| parse_bundle_key(k).is_some())
        .map(|(k, v)| {
            let record = parse_bundle_record(v)?;
            if Some(record.id) != parse_bundle_key(k) {
                return Err(format!("row {k} holds bundle id {}", record.id.0));
            }
            Ok(record)
        })
        .collect::<Result<Vec<_>, String>>()?;
    // Row keys sort lexicographically ("bundle/10" < "bundle/2"); the
    // snapshot contract is numeric id order.
    bundles.sort_by_key(|r| r.id);
    Ok(Some(Snapshot {
        next_bundle,
        start_level,
        bundles,
    }))
}

/// Parses a snapshot produced by [`snapshot`].
///
/// # Errors
///
/// Returns a description of the first missing or malformed field.
pub fn parse_snapshot(v: &Value) -> Result<Snapshot, String> {
    let next_bundle = v
        .get("next_bundle")
        .and_then(Value::as_int)
        .ok_or("snapshot missing next_bundle")? as u64;
    let start_level = v
        .get("start_level")
        .and_then(Value::as_int)
        .ok_or("snapshot missing start_level")?
        .try_into()
        .map_err(|_| "negative start_level")?;
    let bundles = v
        .get("bundles")
        .and_then(Value::as_list)
        .ok_or("snapshot missing bundles")?
        .iter()
        .map(parse_bundle_record)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Snapshot {
        next_bundle,
        start_level,
        bundles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Framework, ManifestBuilder, Version};

    #[test]
    fn snapshot_round_trip_through_framework() {
        let mut fw = Framework::new("t");
        let m = ManifestBuilder::new("a.b", Version::new(1, 0, 0))
            .export_package("a.b.api", Version::new(1, 0, 0), ["X"])
            .build()
            .unwrap();
        let id = fw.install(m.clone(), None).unwrap();
        fw.start(id).unwrap();
        let v = snapshot(2, 1, fw.bundles());
        let parsed = parse_snapshot(&v).unwrap();
        assert_eq!(parsed.next_bundle, 2);
        assert_eq!(parsed.start_level, 1);
        assert_eq!(parsed.bundles.len(), 1);
        assert_eq!(parsed.bundles[0].id, id);
        assert_eq!(parsed.bundles[0].manifest, m);
        assert_eq!(parsed.bundles[0].state, BundleState::Active);
        assert!(parsed.bundles[0].autostart);
    }

    #[test]
    fn parse_rejects_malformed_snapshots() {
        assert!(parse_snapshot(&Value::Null).is_err());
        assert!(parse_snapshot(&Value::map().with("next_bundle", 1u64)).is_err());
        let bad_bundle = Value::map()
            .with("next_bundle", 1u64)
            .with("start_level", 1i64)
            .with("bundles", Value::List(vec![Value::map().with("id", 1u64)]));
        assert!(parse_snapshot(&bad_bundle).is_err());
    }

    #[test]
    fn binary_codec_round_trip() {
        let v = snapshot(7, 3, std::iter::empty());
        let decoded = Value::decode(&v.encode()).unwrap();
        assert_eq!(parse_snapshot(&decoded).unwrap().next_bundle, 7);
    }

    #[test]
    fn bundle_keys_round_trip() {
        assert_eq!(bundle_key(BundleId(17)), "bundle/17");
        assert_eq!(parse_bundle_key("bundle/17"), Some(BundleId(17)));
        assert_eq!(parse_bundle_key("header"), None);
        assert_eq!(parse_bundle_key("bundle/x"), None);
        assert_eq!(parse_bundle_key("snapshot"), None);
    }

    #[test]
    fn assemble_matches_monolithic_snapshot() {
        let mut fw = Framework::new("t");
        let m = ManifestBuilder::new("a.b", Version::new(1, 0, 0))
            .build()
            .unwrap();
        let id = fw.install(m, None).unwrap();
        fw.start(id).unwrap();
        let rows: Vec<(String, Value)> = std::iter::once((HEADER_KEY.to_owned(), header_row(2, 1)))
            .chain(fw.bundles().map(|b| (bundle_key(b.id), bundle_row(b))))
            .collect();
        let assembled = assemble(&rows).unwrap().unwrap();
        let oracle = parse_snapshot(&snapshot(2, 1, fw.bundles())).unwrap();
        assert_eq!(assembled, oracle);
    }

    #[test]
    fn assemble_orders_bundles_numerically() {
        // Lexicographic row order would put bundle/10 before bundle/2.
        let record = |id: u64| {
            Value::map()
                .with("id", id)
                .with(
                    "manifest",
                    ManifestBuilder::new(&format!("b{id}"), Version::new(1, 0, 0))
                        .build()
                        .unwrap()
                        .to_value(),
                )
                .with("state", "INSTALLED")
                .with("autostart", false)
        };
        let rows = vec![
            ("bundle/10".to_owned(), record(10)),
            ("bundle/2".to_owned(), record(2)),
            (HEADER_KEY.to_owned(), header_row(11, 1)),
        ];
        let s = assemble(&rows).unwrap().unwrap();
        let ids: Vec<u64> = s.bundles.iter().map(|b| b.id.0).collect();
        assert_eq!(ids, vec![2, 10]);
    }

    #[test]
    fn state_version_round_trips_and_defaults() {
        let mut fw = Framework::new("t");
        let m = ManifestBuilder::new("a.b", Version::new(1, 3, 0))
            .build()
            .unwrap();
        let id = fw.install(m, None).unwrap();
        let row = bundle_row(fw.bundles().next().unwrap());
        let rows = vec![
            (HEADER_KEY.to_owned(), header_row(2, 1)),
            (bundle_key(id), row),
        ];
        let s = assemble(&rows).unwrap().unwrap();
        assert_eq!(s.bundles[0].state_version, Version::new(1, 3, 0));
        // Rows written before the field existed default to the manifest
        // version — old SAN state restores unchanged.
        let manifest = ManifestBuilder::new("a.b", Version::new(2, 0, 0))
            .build()
            .unwrap();
        let legacy_record = Value::map()
            .with("id", 1u64)
            .with("manifest", manifest.to_value())
            .with("state", "INSTALLED")
            .with("autostart", false);
        let rows = vec![
            (HEADER_KEY.to_owned(), header_row(2, 1)),
            ("bundle/1".to_owned(), legacy_record.clone()),
        ];
        let s = assemble(&rows).unwrap().unwrap();
        assert_eq!(s.bundles[0].state_version, Version::new(2, 0, 0));
        // A malformed version is corrupt state, not silently defaulted.
        let rows = vec![
            (HEADER_KEY.to_owned(), header_row(2, 1)),
            (
                "bundle/1".to_owned(),
                legacy_record.with("state_version", "not-a-version"),
            ),
        ];
        assert!(assemble(&rows).is_err());
    }

    #[test]
    fn assemble_falls_back_to_legacy_snapshot() {
        let legacy = snapshot(5, 2, std::iter::empty());
        let rows = vec![(LEGACY_SNAPSHOT_KEY.to_owned(), legacy)];
        let s = assemble(&rows).unwrap().unwrap();
        assert_eq!(s.next_bundle, 5);
        assert_eq!(s.start_level, 2);
        assert!(s.bundles.is_empty());
    }

    #[test]
    fn assemble_empty_namespace_is_none() {
        assert_eq!(assemble(&[]).unwrap(), None);
        // Unrelated keys without a header are not framework state either.
        let rows = vec![("other".to_owned(), Value::Int(1))];
        assert_eq!(assemble(&rows).unwrap(), None);
    }

    #[test]
    fn assemble_rejects_malformed_rows() {
        let rows = vec![(HEADER_KEY.to_owned(), Value::Null)];
        assert!(assemble(&rows).is_err());
        let rows = vec![
            (HEADER_KEY.to_owned(), header_row(2, 1)),
            ("bundle/1".to_owned(), Value::map().with("id", 1u64)),
        ];
        assert!(assemble(&rows).is_err());
        // A row whose key disagrees with the embedded id is corrupt.
        let mut fw = Framework::new("t");
        let m = ManifestBuilder::new("a.b", Version::new(1, 0, 0))
            .build()
            .unwrap();
        let id = fw.install(m, None).unwrap();
        let row = bundle_row(fw.bundles().next().unwrap());
        assert_eq!(id, BundleId(1));
        let rows = vec![
            (HEADER_KEY.to_owned(), header_row(2, 1)),
            ("bundle/9".to_owned(), row),
        ];
        assert!(assemble(&rows).is_err());
    }
}
