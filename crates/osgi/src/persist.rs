//! Serialization of framework state to SAN values.
//!
//! The OSGi specification (quoted in §3.2 of the paper) requires that
//! *"the framework state shall be persistent across framework reboots.
//! Here state means the information associated with the life-cycle of the
//! bundles in the framework, namely which ones are installed and its
//! running state."* That is exactly what a snapshot captures.

use crate::framework::Bundle;
use crate::{BundleId, BundleManifest, BundleState};
use dosgi_san::Value;

/// One bundle's persisted record.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleRecord {
    /// The bundle's id (preserved across restore).
    pub id: BundleId,
    /// The manifest.
    pub manifest: BundleManifest,
    /// The persisted lifecycle state (`ACTIVE` collapses transient states).
    pub state: BundleState,
    /// Whether the bundle is persistently started.
    pub autostart: bool,
}

/// A parsed framework snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Next bundle id to allocate.
    pub next_bundle: u64,
    /// Active start level at persist time.
    pub start_level: u32,
    /// All installed bundles.
    pub bundles: Vec<BundleRecord>,
}

/// Serializes framework state into a [`Value`].
pub fn snapshot<'a>(
    next_bundle: u64,
    start_level: u32,
    bundles: impl Iterator<Item = &'a Bundle>,
) -> Value {
    Value::map()
        .with("next_bundle", next_bundle)
        .with("start_level", i64::from(start_level))
        .with(
            "bundles",
            Value::List(
                bundles
                    .map(|b| {
                        Value::map()
                            .with("id", b.id.0)
                            .with("manifest", b.manifest.to_value())
                            .with("state", b.state.as_str())
                            .with("autostart", b.autostart)
                    })
                    .collect(),
            ),
        )
}

/// Parses a snapshot produced by [`snapshot`].
///
/// # Errors
///
/// Returns a description of the first missing or malformed field.
pub fn parse_snapshot(v: &Value) -> Result<Snapshot, String> {
    let next_bundle = v
        .get("next_bundle")
        .and_then(Value::as_int)
        .ok_or("snapshot missing next_bundle")? as u64;
    let start_level = v
        .get("start_level")
        .and_then(Value::as_int)
        .ok_or("snapshot missing start_level")?
        .try_into()
        .map_err(|_| "negative start_level")?;
    let bundles = v
        .get("bundles")
        .and_then(Value::as_list)
        .ok_or("snapshot missing bundles")?
        .iter()
        .map(|b| {
            let id = b
                .get("id")
                .and_then(Value::as_int)
                .ok_or("bundle record missing id")? as u64;
            let manifest = BundleManifest::from_value(
                b.get("manifest").ok_or("bundle record missing manifest")?,
            )?;
            let state = BundleState::parse(
                b.get("state")
                    .and_then(Value::as_str)
                    .ok_or("bundle record missing state")?,
            )?;
            Ok::<BundleRecord, String>(BundleRecord {
                id: BundleId(id),
                manifest,
                state,
                autostart: b.get("autostart").and_then(Value::as_bool).unwrap_or(false),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Snapshot {
        next_bundle,
        start_level,
        bundles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Framework, ManifestBuilder, Version};

    #[test]
    fn snapshot_round_trip_through_framework() {
        let mut fw = Framework::new("t");
        let m = ManifestBuilder::new("a.b", Version::new(1, 0, 0))
            .export_package("a.b.api", Version::new(1, 0, 0), ["X"])
            .build()
            .unwrap();
        let id = fw.install(m.clone(), None).unwrap();
        fw.start(id).unwrap();
        let v = snapshot(2, 1, fw.bundles());
        let parsed = parse_snapshot(&v).unwrap();
        assert_eq!(parsed.next_bundle, 2);
        assert_eq!(parsed.start_level, 1);
        assert_eq!(parsed.bundles.len(), 1);
        assert_eq!(parsed.bundles[0].id, id);
        assert_eq!(parsed.bundles[0].manifest, m);
        assert_eq!(parsed.bundles[0].state, BundleState::Active);
        assert!(parsed.bundles[0].autostart);
    }

    #[test]
    fn parse_rejects_malformed_snapshots() {
        assert!(parse_snapshot(&Value::Null).is_err());
        assert!(parse_snapshot(&Value::map().with("next_bundle", 1u64)).is_err());
        let bad_bundle = Value::map()
            .with("next_bundle", 1u64)
            .with("start_level", 1i64)
            .with("bundles", Value::List(vec![Value::map().with("id", 1u64)]));
        assert!(parse_snapshot(&bad_bundle).is_err());
    }

    #[test]
    fn binary_codec_round_trip() {
        let v = snapshot(7, 3, std::iter::empty());
        let decoded = Value::decode(&v.encode()).unwrap();
        assert_eq!(parse_snapshot(&decoded).unwrap().next_bundle, 7);
    }
}
