//! The service registry.

use crate::{
    BundleId, CallContext, Filter, PropValue, Service, ServiceError, ServiceEvent,
    ServiceEventKind, ServiceId, UsageLedger,
};
use dosgi_san::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, RwLock};

/// A registered service: metadata plus the (type-erased) implementation.
pub struct ServiceRecord {
    /// The service's id.
    pub id: ServiceId,
    /// The bundle that registered it.
    pub owner: BundleId,
    /// The interface names it is registered under.
    pub interfaces: Vec<String>,
    /// Its property dictionary (includes the auto-set `objectClass`,
    /// `service.id` and `service.ranking` keys, as in OSGi).
    pub properties: BTreeMap<String, PropValue>,
    /// Its ranking; higher wins ties in [`ServiceRegistry::best`].
    pub ranking: i64,
    implementation: Box<dyn Service>,
}

impl fmt::Debug for ServiceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceRecord")
            .field("id", &self.id)
            .field("owner", &self.owner)
            .field("interfaces", &self.interfaces)
            .field("ranking", &self.ranking)
            .finish_non_exhaustive()
    }
}

/// Immutable registration metadata published to concurrent readers: every
/// field of a [`ServiceRecord`] except the (necessarily exclusive)
/// implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMeta {
    /// The service's id.
    pub id: ServiceId,
    /// The bundle that registered it.
    pub owner: BundleId,
    /// The interface names it is registered under.
    pub interfaces: Vec<String>,
    /// Its property dictionary.
    pub properties: BTreeMap<String, PropValue>,
    /// Its ranking.
    pub ranking: i64,
}

/// Number of independent read shards. Interface names hash onto shards, so
/// concurrent lookups of different interfaces almost never contend on the
/// same lock; a power of two keeps the modulo a mask.
const SHARD_COUNT: usize = 16;

/// Stable FNV-1a over the interface name — must not vary across runs or
/// threads (shard choice is part of no observable behavior, but stability
/// keeps reasoning simple).
fn shard_of(interface: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in interface.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h as usize) & (SHARD_COUNT - 1)
}

/// One shard's published index: interface → matching registrations,
/// pre-sorted by ranking descending then id ascending (the OSGi tie-break)
/// so readers never sort.
#[derive(Debug, Default)]
struct ShardIndex {
    by_interface: BTreeMap<String, Arc<[Arc<ServiceMeta>]>>,
}

/// A cloneable, `Send + Sync` read handle onto the registry's
/// interface index — the concurrent lookup path for the real-clock
/// runtime.
///
/// Copy-on-write sharding: writers ([`ServiceRegistry::register`] and
/// friends) rebuild only the affected interface's entry inside its shard
/// and swap the shard's `Arc`; readers take a shard read lock just long
/// enough to clone an `Arc`, then work lock-free on the immutable
/// snapshot. Lookups of different interfaces land on different shards with
/// probability `1 - 1/16`, so they don't serialize behind a single lock.
///
/// Reads are **snapshot-consistent, not linearizable**: a lookup
/// concurrent with a registration may see the index from just before or
/// just after it — exactly the semantics OSGi service trackers already
/// live with.
#[derive(Debug, Clone)]
pub struct RegistryReader {
    shards: Arc<[RwLock<Arc<ShardIndex>>; SHARD_COUNT]>,
}

impl RegistryReader {
    fn new() -> Self {
        RegistryReader {
            shards: Arc::new(std::array::from_fn(|_| {
                RwLock::new(Arc::new(ShardIndex::default()))
            })),
        }
    }

    /// The published snapshot for `interface`'s shard.
    fn snapshot(&self, interface: &str) -> Arc<ShardIndex> {
        let guard = self.shards[shard_of(interface)]
            .read()
            .unwrap_or_else(|e| e.into_inner());
        Arc::clone(&guard)
    }

    /// Registrations offering `interface`, ordered by ranking descending
    /// then id ascending. Allocation-free beyond the returned `Arc` clone.
    pub fn lookup(&self, interface: &str) -> Arc<[Arc<ServiceMeta>]> {
        self.snapshot(interface)
            .by_interface
            .get(interface)
            .cloned()
            .unwrap_or_else(|| Arc::from(Vec::new()))
    }

    /// Like [`lookup`](Self::lookup), narrowed by an LDAP-style filter.
    pub fn lookup_filtered(&self, interface: &str, filter: &Filter) -> Vec<Arc<ServiceMeta>> {
        self.snapshot(interface)
            .by_interface
            .get(interface)
            .map(|entries| {
                entries
                    .iter()
                    .filter(|m| filter.matches(&m.properties))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The best (highest-ranked, then lowest-id) service offering
    /// `interface`.
    pub fn best(&self, interface: &str) -> Option<ServiceId> {
        self.snapshot(interface)
            .by_interface
            .get(interface)
            .and_then(|entries| entries.first())
            .map(|m| m.id)
    }
}

/// The framework's service registry.
///
/// Services are registered under one or more interface names with a property
/// dictionary; consumers look them up by interface, optionally narrowed by
/// an LDAP-style [`Filter`], and receive references ordered by ranking
/// (descending) then id (ascending) — the OSGi tie-break.
///
/// The `&self` methods serve the deterministic single-threaded path; for
/// concurrent readers (real-clock runtime, other node threads) a
/// copy-on-write [`RegistryReader`] handle is available via
/// [`reader`](Self::reader) — registrations publish their metadata to it
/// on every mutation.
#[derive(Debug)]
pub struct ServiceRegistry {
    services: BTreeMap<ServiceId, ServiceRecord>,
    /// Interface name → ids registered under it. Interfaces are fixed at
    /// registration (property updates cannot change them), so the index
    /// only moves on register/unregister; lookups by interface scan just
    /// the candidate set instead of every registration.
    by_interface: BTreeMap<String, BTreeSet<ServiceId>>,
    /// Cached published metadata per service, shared by every interface
    /// entry in the reader's shards (rebuilt when properties change).
    meta: BTreeMap<ServiceId, Arc<ServiceMeta>>,
    reader: RegistryReader,
    next_id: u64,
    events: Vec<ServiceEvent>,
}

impl Default for ServiceRegistry {
    fn default() -> Self {
        ServiceRegistry {
            services: BTreeMap::new(),
            by_interface: BTreeMap::new(),
            meta: BTreeMap::new(),
            reader: RegistryReader::new(),
            next_id: 0,
            events: Vec::new(),
        }
    }
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cloneable, `Send + Sync` handle for concurrent by-interface
    /// lookups. Handles observe every mutation made after (and before)
    /// they were taken — they all share the registry's shard set.
    pub fn reader(&self) -> RegistryReader {
        self.reader.clone()
    }

    /// Rebuilds the published metadata for `id` from its record.
    fn refresh_meta(&mut self, id: ServiceId) {
        let rec = &self.services[&id];
        self.meta.insert(
            id,
            Arc::new(ServiceMeta {
                id: rec.id,
                owner: rec.owner,
                interfaces: rec.interfaces.clone(),
                properties: rec.properties.clone(),
                ranking: rec.ranking,
            }),
        );
    }

    /// Republishes the affected interfaces' entries into their shards:
    /// copy-on-write per shard, so in-flight readers keep their snapshot.
    fn republish(&self, interfaces: &[String]) {
        for iface in interfaces {
            let entries: Vec<Arc<ServiceMeta>> = self
                .by_interface
                .get(iface)
                .map(|ids| {
                    let mut v: Vec<Arc<ServiceMeta>> = ids
                        .iter()
                        .filter_map(|id| self.meta.get(id))
                        .cloned()
                        .collect();
                    v.sort_by(|a, b| b.ranking.cmp(&a.ranking).then(a.id.cmp(&b.id)));
                    v
                })
                .unwrap_or_default();
            let shard = &self.reader.shards[shard_of(iface)];
            let mut guard = shard.write().unwrap_or_else(|e| e.into_inner());
            let mut next = ShardIndex {
                by_interface: guard.by_interface.clone(),
            };
            if entries.is_empty() {
                next.by_interface.remove(iface);
            } else {
                next.by_interface.insert(iface.clone(), Arc::from(entries));
            }
            *guard = Arc::new(next);
        }
    }

    /// Registers `implementation` under `interfaces` on behalf of `owner`.
    ///
    /// The keys `objectClass`, `service.id` and `service.ranking` are set
    /// automatically (`service.ranking` is read from `properties` if present,
    /// defaulting to 0).
    ///
    /// # Panics
    ///
    /// Panics if `interfaces` is empty — a service must be registered under
    /// at least one name.
    pub fn register(
        &mut self,
        owner: BundleId,
        interfaces: &[&str],
        mut properties: BTreeMap<String, PropValue>,
        implementation: Box<dyn Service>,
    ) -> ServiceId {
        assert!(
            !interfaces.is_empty(),
            "a service must offer at least one interface"
        );
        let id = ServiceId(self.next_id);
        self.next_id += 1;
        let ranking = match properties.get("service.ranking") {
            Some(PropValue::Int(r)) => *r,
            _ => 0,
        };
        let interfaces: Vec<String> = interfaces.iter().map(|s| (*s).to_owned()).collect();
        properties.insert(
            "objectClass".to_owned(),
            PropValue::List(interfaces.clone()),
        );
        properties.insert("service.id".to_owned(), PropValue::Int(id.0 as i64));
        properties.insert("service.ranking".to_owned(), PropValue::Int(ranking));
        for iface in &interfaces {
            self.by_interface
                .entry(iface.clone())
                .or_default()
                .insert(id);
        }
        self.services.insert(
            id,
            ServiceRecord {
                id,
                owner,
                interfaces: interfaces.clone(),
                properties,
                ranking,
                implementation,
            },
        );
        self.events.push(ServiceEvent {
            service: id,
            interfaces,
            kind: ServiceEventKind::Registered,
        });
        self.refresh_meta(id);
        let ifaces = self.services[&id].interfaces.clone();
        self.republish(&ifaces);
        id
    }

    /// Removes a registration.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Gone`] if the id is unknown.
    pub fn unregister(&mut self, id: ServiceId) -> Result<(), ServiceError> {
        match self.services.remove(&id) {
            Some(rec) => {
                for iface in &rec.interfaces {
                    if let Some(ids) = self.by_interface.get_mut(iface) {
                        ids.remove(&id);
                        if ids.is_empty() {
                            self.by_interface.remove(iface);
                        }
                    }
                }
                self.meta.remove(&id);
                self.republish(&rec.interfaces);
                self.events.push(ServiceEvent {
                    service: id,
                    interfaces: rec.interfaces,
                    kind: ServiceEventKind::Unregistering,
                });
                Ok(())
            }
            None => Err(ServiceError::Gone(id)),
        }
    }

    /// Removes every service registered by `owner` (called when a bundle
    /// stops), returning the ids removed.
    pub fn unregister_bundle(&mut self, owner: BundleId) -> Vec<ServiceId> {
        let ids: Vec<ServiceId> = self
            .services
            .values()
            .filter(|r| r.owner == owner)
            .map(|r| r.id)
            .collect();
        for id in &ids {
            let _ = self.unregister(*id);
        }
        ids
    }

    /// Replaces a service's properties (preserving the auto-set keys) and
    /// emits a `Modified` event.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Gone`] if the id is unknown.
    pub fn set_properties(
        &mut self,
        id: ServiceId,
        mut properties: BTreeMap<String, PropValue>,
    ) -> Result<(), ServiceError> {
        let rec = self.services.get_mut(&id).ok_or(ServiceError::Gone(id))?;
        let ranking = match properties.get("service.ranking") {
            Some(PropValue::Int(r)) => *r,
            _ => rec.ranking,
        };
        properties.insert(
            "objectClass".to_owned(),
            PropValue::List(rec.interfaces.clone()),
        );
        properties.insert("service.id".to_owned(), PropValue::Int(id.0 as i64));
        properties.insert("service.ranking".to_owned(), PropValue::Int(ranking));
        rec.ranking = ranking;
        rec.properties = properties;
        self.events.push(ServiceEvent {
            service: id,
            interfaces: rec.interfaces.clone(),
            kind: ServiceEventKind::Modified,
        });
        self.refresh_meta(id);
        let ifaces = self.services[&id].interfaces.clone();
        self.republish(&ifaces);
        Ok(())
    }

    /// References matching `interface` (if given) and `filter` (if given),
    /// ordered by ranking descending then id ascending. An interface query
    /// scans only the ids indexed under that interface, not every
    /// registration.
    pub fn references(
        &self,
        interface: Option<&str>,
        filter: Option<&Filter>,
    ) -> Vec<&ServiceRecord> {
        let mut out: Vec<&ServiceRecord> = match interface {
            Some(i) => self
                .by_interface
                .get(i)
                .into_iter()
                .flatten()
                .filter_map(|id| self.services.get(id))
                .filter(|r| filter.is_none_or(|f| f.matches(&r.properties)))
                .collect(),
            None => self
                .services
                .values()
                .filter(|r| filter.is_none_or(|f| f.matches(&r.properties)))
                .collect(),
        };
        out.sort_by(|a, b| b.ranking.cmp(&a.ranking).then(a.id.cmp(&b.id)));
        out
    }

    /// The best (highest-ranked, then lowest-id) service offering
    /// `interface`.
    pub fn best(&self, interface: &str) -> Option<ServiceId> {
        self.references(Some(interface), None).first().map(|r| r.id)
    }

    /// Looks up a record by id.
    pub fn record(&self, id: ServiceId) -> Option<&ServiceRecord> {
        self.services.get(&id)
    }

    /// Invokes `method` on service `id`, charging resource use to the
    /// owning bundle's account in `ledger`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Gone`] for unknown ids, plus whatever the
    /// implementation returns.
    pub fn call(
        &mut self,
        id: ServiceId,
        ledger: &mut UsageLedger,
        method: &str,
        arg: &Value,
    ) -> Result<Value, ServiceError> {
        let rec = self.services.get_mut(&id).ok_or(ServiceError::Gone(id))?;
        ledger.count_call(rec.owner);
        let mut ctx = CallContext::new(rec.owner, ledger);
        rec.implementation.call(&mut ctx, method, arg)
    }

    /// Like [`call`](Self::call), but with the owning bundle's persistent
    /// storage area attached to the context. Returns the result and whether
    /// the call dirtied the area (the framework then flushes it to the
    /// SAN).
    ///
    /// # Errors
    ///
    /// Same as [`call`](Self::call).
    pub fn call_with_store(
        &mut self,
        id: ServiceId,
        ledger: &mut UsageLedger,
        data: &mut std::collections::BTreeMap<String, Value>,
        method: &str,
        arg: &Value,
    ) -> Result<(Value, bool), ServiceError> {
        let rec = self.services.get_mut(&id).ok_or(ServiceError::Gone(id))?;
        ledger.count_call(rec.owner);
        let mut ctx = CallContext::with_store(rec.owner, ledger, data);
        let result = rec.implementation.call(&mut ctx, method, arg);
        let dirty = ctx.is_dirty();
        result.map(|v| (v, dirty))
    }

    /// The bundle that registered service `id`.
    pub fn owner_of(&self, id: ServiceId) -> Option<BundleId> {
        self.services.get(&id).map(|r| r.owner)
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True if no services are registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Drains accumulated registry events.
    pub fn take_events(&mut self) -> Vec<ServiceEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_net::SimDuration;

    fn echo_service() -> Box<dyn Service> {
        Box::new(
            |ctx: &mut CallContext<'_>, method: &str, arg: &Value| match method {
                "echo" => {
                    ctx.charge_cpu(SimDuration::from_micros(10));
                    Ok(arg.clone())
                }
                other => Err(ServiceError::MethodNotFound {
                    service: ServiceId(0),
                    method: other.to_owned(),
                }),
            },
        )
    }

    fn props(ranking: i64) -> BTreeMap<String, PropValue> {
        let mut p = BTreeMap::new();
        p.insert("service.ranking".to_owned(), PropValue::Int(ranking));
        p
    }

    #[test]
    fn register_sets_standard_properties() {
        let mut r = ServiceRegistry::new();
        let id = r.register(
            BundleId(1),
            &["log.Service"],
            BTreeMap::new(),
            echo_service(),
        );
        let rec = r.record(id).unwrap();
        assert_eq!(
            rec.properties.get("objectClass"),
            Some(&PropValue::List(vec!["log.Service".into()]))
        );
        assert_eq!(rec.properties.get("service.id"), Some(&PropValue::Int(0)));
        assert_eq!(rec.ranking, 0);
    }

    #[test]
    fn ranking_orders_references() {
        let mut r = ServiceRegistry::new();
        let low = r.register(BundleId(1), &["svc"], props(1), echo_service());
        let high = r.register(BundleId(1), &["svc"], props(9), echo_service());
        let mid = r.register(BundleId(2), &["svc"], props(5), echo_service());
        let refs = r.references(Some("svc"), None);
        assert_eq!(
            refs.iter().map(|x| x.id).collect::<Vec<_>>(),
            vec![high, mid, low]
        );
        assert_eq!(r.best("svc"), Some(high));
    }

    #[test]
    fn equal_ranking_breaks_ties_by_lowest_id() {
        let mut r = ServiceRegistry::new();
        let first = r.register(BundleId(1), &["svc"], props(5), echo_service());
        let _second = r.register(BundleId(1), &["svc"], props(5), echo_service());
        assert_eq!(r.best("svc"), Some(first));
    }

    #[test]
    fn filter_narrows_lookup() {
        let mut r = ServiceRegistry::new();
        let mut p = BTreeMap::new();
        p.insert("vendor".to_owned(), PropValue::from("acme"));
        let acme = r.register(BundleId(1), &["svc"], p, echo_service());
        let _plain = r.register(BundleId(1), &["svc"], BTreeMap::new(), echo_service());
        let f: Filter = "(vendor=acme)".parse().unwrap();
        let refs = r.references(Some("svc"), Some(&f));
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].id, acme);
        // Filter on objectClass works because registration injects it.
        let f: Filter = "(objectClass=svc)".parse().unwrap();
        assert_eq!(r.references(None, Some(&f)).len(), 2);
    }

    #[test]
    fn call_dispatches_and_charges_owner() {
        let mut r = ServiceRegistry::new();
        let mut ledger = UsageLedger::new();
        let id = r.register(BundleId(7), &["svc"], BTreeMap::new(), echo_service());
        let out = r.call(id, &mut ledger, "echo", &Value::Int(3)).unwrap();
        assert_eq!(out, Value::Int(3));
        let snap = ledger.snapshot(BundleId(7));
        assert_eq!(snap.calls, 1);
        assert_eq!(snap.cpu, SimDuration::from_micros(10));
        assert!(matches!(
            r.call(ServiceId(99), &mut ledger, "echo", &Value::Null),
            Err(ServiceError::Gone(_))
        ));
    }

    #[test]
    fn unregister_and_events() {
        let mut r = ServiceRegistry::new();
        let id = r.register(BundleId(1), &["svc"], BTreeMap::new(), echo_service());
        r.unregister(id).unwrap();
        assert!(r.is_empty());
        assert!(matches!(r.unregister(id), Err(ServiceError::Gone(_))));
        let events = r.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, ServiceEventKind::Registered);
        assert_eq!(events[1].kind, ServiceEventKind::Unregistering);
        assert!(r.take_events().is_empty());
    }

    #[test]
    fn unregister_bundle_sweeps_all_of_its_services() {
        let mut r = ServiceRegistry::new();
        let a = r.register(BundleId(1), &["x"], BTreeMap::new(), echo_service());
        let _b = r.register(BundleId(2), &["x"], BTreeMap::new(), echo_service());
        let c = r.register(BundleId(1), &["y"], BTreeMap::new(), echo_service());
        let removed = r.unregister_bundle(BundleId(1));
        assert_eq!(removed, vec![a, c]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn interface_index_tracks_churn() {
        let mut r = ServiceRegistry::new();
        // Multi-interface registration appears under every name.
        let ab = r.register(BundleId(1), &["a", "b"], BTreeMap::new(), echo_service());
        let b = r.register(BundleId(2), &["b"], BTreeMap::new(), echo_service());
        assert_eq!(r.references(Some("a"), None).len(), 1);
        assert_eq!(r.references(Some("b"), None).len(), 2);
        assert!(r.references(Some("zzz"), None).is_empty());
        // Unregistering removes it from every interface's candidate set.
        r.unregister(ab).unwrap();
        assert!(r.references(Some("a"), None).is_empty());
        assert_eq!(
            r.references(Some("b"), None)
                .iter()
                .map(|x| x.id)
                .collect::<Vec<_>>(),
            vec![b]
        );
        // Bundle sweep keeps the index in step too.
        r.unregister_bundle(BundleId(2));
        assert!(r.references(Some("b"), None).is_empty());
        assert!(r.by_interface.is_empty());
    }

    #[test]
    fn indexed_lookup_matches_full_scan() {
        let mut r = ServiceRegistry::new();
        for i in 0..20 {
            let iface = ["x", "y", "z"][i % 3];
            let _ = r.register(
                BundleId(1 + (i % 4) as u64),
                &[iface, "common"],
                props((i as i64 * 7) % 5),
                echo_service(),
            );
        }
        for iface in ["x", "y", "z", "common"] {
            let indexed: Vec<ServiceId> = r
                .references(Some(iface), None)
                .iter()
                .map(|x| x.id)
                .collect();
            // Oracle: the old full scan over every record.
            let mut scan: Vec<&ServiceRecord> = r
                .services
                .values()
                .filter(|rec| rec.interfaces.iter().any(|x| x == iface))
                .collect();
            scan.sort_by(|a, b| b.ranking.cmp(&a.ranking).then(a.id.cmp(&b.id)));
            let scan: Vec<ServiceId> = scan.iter().map(|x| x.id).collect();
            assert_eq!(indexed, scan);
        }
    }

    #[test]
    fn set_properties_updates_ranking_and_emits_modified() {
        let mut r = ServiceRegistry::new();
        let id = r.register(BundleId(1), &["svc"], BTreeMap::new(), echo_service());
        r.set_properties(id, props(42)).unwrap();
        assert_eq!(r.record(id).unwrap().ranking, 42);
        let kinds: Vec<ServiceEventKind> = r.take_events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![ServiceEventKind::Registered, ServiceEventKind::Modified]
        );
    }

    #[test]
    #[should_panic(expected = "at least one interface")]
    fn register_requires_an_interface() {
        let mut r = ServiceRegistry::new();
        let _ = r.register(BundleId(1), &[], BTreeMap::new(), echo_service());
    }

    #[test]
    fn reader_tracks_every_mutation() {
        let mut r = ServiceRegistry::new();
        let reader = r.reader();
        assert!(reader.lookup("svc").is_empty());
        let low = r.register(BundleId(1), &["svc"], props(1), echo_service());
        let high = r.register(BundleId(1), &["svc", "alt"], props(9), echo_service());
        // Same order as the exclusive path: ranking desc, id asc.
        let ids: Vec<ServiceId> = reader.lookup("svc").iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![high, low]);
        assert_eq!(reader.best("svc"), r.best("svc"));
        assert_eq!(reader.best("alt"), Some(high));
        // Property updates re-rank the published entries.
        r.set_properties(low, props(99)).unwrap();
        assert_eq!(reader.best("svc"), Some(low));
        assert_eq!(
            reader.lookup("svc")[0].properties.get("service.ranking"),
            Some(&PropValue::Int(99))
        );
        // Unregistration removes the published entry everywhere.
        r.unregister(high).unwrap();
        assert!(reader.lookup("alt").is_empty());
        assert_eq!(
            reader
                .lookup("svc")
                .iter()
                .map(|m| m.id)
                .collect::<Vec<_>>(),
            vec![low]
        );
        // A handle taken late sees the same state as an early one.
        let late = r.reader();
        assert_eq!(late.best("svc"), reader.best("svc"));
    }

    #[test]
    fn reader_filtered_lookup_matches_exclusive_path() {
        let mut r = ServiceRegistry::new();
        for i in 0..12 {
            let mut p = props(i % 3);
            p.insert(
                "vendor".to_owned(),
                PropValue::from(if i % 2 == 0 { "acme" } else { "other" }),
            );
            let _ = r.register(BundleId(1), &["svc"], p, echo_service());
        }
        let f: Filter = "(vendor=acme)".parse().unwrap();
        let reader = r.reader();
        let via_reader: Vec<ServiceId> = reader
            .lookup_filtered("svc", &f)
            .iter()
            .map(|m| m.id)
            .collect();
        let via_registry: Vec<ServiceId> = r
            .references(Some("svc"), Some(&f))
            .iter()
            .map(|x| x.id)
            .collect();
        assert_eq!(via_reader, via_registry);
    }

    #[test]
    fn reader_is_send_sync_and_survives_concurrent_churn() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RegistryReader>();

        let mut r = ServiceRegistry::new();
        for i in 0..8 {
            let _ = r.register(
                BundleId(i),
                &[format!("iface.{i}").as_str()],
                props(i as i64),
                echo_service(),
            );
        }
        let reader = r.reader();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let reader = reader.clone();
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    let mut done = false;
                    // At least one full sweep even if the writer already
                    // finished; then spin until told to stop.
                    while !done {
                        done = stop.load(std::sync::atomic::Ordering::Relaxed);
                        for i in 0..8 {
                            let entries = reader.lookup(&format!("iface.{i}"));
                            // Snapshots are always internally consistent:
                            // ranking descending, id ascending on ties.
                            for w in entries.windows(2) {
                                assert!(
                                    w[0].ranking > w[1].ranking
                                        || (w[0].ranking == w[1].ranking && w[0].id < w[1].id),
                                    "ordering violated"
                                );
                            }
                            seen += entries.len();
                        }
                        let _ = reader.best(&format!("iface.{t}"));
                    }
                    seen
                })
            })
            .collect();
        // Writer churns registrations while the readers spin.
        for round in 0..200 {
            let id = r.register(
                BundleId(99),
                &[format!("iface.{}", round % 8).as_str()],
                props(round),
                echo_service(),
            );
            r.unregister(id).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for t in readers {
            assert!(t.join().expect("no reader panicked") > 0);
        }
    }
}
