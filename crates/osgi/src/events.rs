//! Framework, bundle and service events.
//!
//! Events are the observability backbone the paper's Monitoring and
//! Autonomic modules rely on: lifecycle transitions and service
//! registrations are queued by the framework and drained by whoever manages
//! it (the instance manager, the monitoring module, tests).

use crate::{BundleId, ServiceId};
use std::fmt;

/// What happened to a bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BundleEventKind {
    /// The bundle was installed.
    Installed,
    /// The bundle's imports were wired.
    Resolved,
    /// The bundle reached `ACTIVE`.
    Started,
    /// The bundle left `ACTIVE`.
    Stopped,
    /// The bundle's manifest was replaced at run-time.
    Updated,
    /// The bundle was hot-swapped in place: the old revision quiesced,
    /// its persisted state handed off, and the new revision adopted it.
    Upgraded,
    /// The bundle was uninstalled.
    Uninstalled,
}

/// A bundle lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BundleEvent {
    /// The bundle concerned.
    pub bundle: BundleId,
    /// What happened.
    pub kind: BundleEventKind,
}

impl fmt::Display for BundleEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?}", self.bundle, self.kind)
    }
}

/// What happened to a service registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceEventKind {
    /// A service was registered.
    Registered,
    /// A service's properties changed.
    Modified,
    /// A service is being removed.
    Unregistering,
}

/// A service registry event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEvent {
    /// The service concerned.
    pub service: ServiceId,
    /// The interfaces it was registered under.
    pub interfaces: Vec<String>,
    /// What happened.
    pub kind: ServiceEventKind,
}

impl fmt::Display for ServiceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:?} ({})",
            self.service,
            self.kind,
            self.interfaces.join(",")
        )
    }
}

/// A framework-level event.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameworkEvent {
    /// The framework finished starting.
    Started,
    /// The framework began an orderly shutdown.
    ShuttingDown,
    /// The active start level changed.
    StartLevelChanged {
        /// The new start level.
        level: u32,
    },
    /// A non-fatal error was recorded (e.g. an activator failure during a
    /// start-level sweep).
    Error {
        /// The bundle involved, if any.
        bundle: Option<BundleId>,
        /// A description.
        message: String,
    },
}

impl fmt::Display for FrameworkEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkEvent::Started => write!(f, "framework started"),
            FrameworkEvent::ShuttingDown => write!(f, "framework shutting down"),
            FrameworkEvent::StartLevelChanged { level } => {
                write!(f, "start level changed to {level}")
            }
            FrameworkEvent::Error { bundle, message } => match bundle {
                Some(b) => write!(f, "error in {b}: {message}"),
                None => write!(f, "framework error: {message}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = BundleEvent {
            bundle: BundleId(1),
            kind: BundleEventKind::Started,
        };
        assert_eq!(e.to_string(), "b1 Started");
        let e = ServiceEvent {
            service: ServiceId(2),
            interfaces: vec!["Log".into()],
            kind: ServiceEventKind::Registered,
        };
        assert_eq!(e.to_string(), "s2 Registered (Log)");
        assert_eq!(
            FrameworkEvent::StartLevelChanged { level: 3 }.to_string(),
            "start level changed to 3"
        );
        assert_eq!(
            FrameworkEvent::Error {
                bundle: Some(BundleId(4)),
                message: "boom".into()
            }
            .to_string(),
            "error in b4: boom"
        );
    }
}
