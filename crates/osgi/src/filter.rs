//! LDAP-style service filters (RFC 1960 syntax, as used by OSGi).
//!
//! Supported grammar:
//!
//! ```text
//! filter     ::= '(' filtercomp ')'
//! filtercomp ::= '&' filter+ | '|' filter+ | '!' filter | operation
//! operation  ::= attr '=' value        equality (with '*' wildcards)
//!              | attr '=*'             presence
//!              | attr '>=' value       ordered
//!              | attr '<=' value       ordered
//!              | attr '~=' value       approximate (case/whitespace-blind)
//! ```
//!
//! # Example
//!
//! ```
//! use dosgi_osgi::{Filter, PropValue};
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f: Filter = "(&(objectClass=log.Service)(level>=3)(!(vendor=acme)))".parse()?;
//! let mut props = BTreeMap::new();
//! props.insert("objectClass".to_owned(), PropValue::from("log.Service"));
//! props.insert("level".to_owned(), PropValue::from(5i64));
//! assert!(f.matches(&props));
//! # Ok(())
//! # }
//! ```

use crate::PropValue;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A parse error, with the byte offset where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError {
    /// Byte offset in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for FilterError {}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    And(Vec<Node>),
    Or(Vec<Node>),
    Not(Box<Node>),
    Present(String),
    Equal(String, String),
    Approx(String, String),
    GreaterEq(String, String),
    LessEq(String, String),
}

/// A compiled service filter.
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    root: Node,
    source: String,
}

impl Filter {
    /// Parses a filter string.
    ///
    /// # Errors
    ///
    /// Returns a [`FilterError`] pinpointing the malformation.
    pub fn parse(input: &str) -> Result<Filter, FilterError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let root = parse_filter(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(FilterError {
                at: pos,
                message: "trailing characters".into(),
            });
        }
        Ok(Filter {
            root,
            source: input.to_owned(),
        })
    }

    /// Evaluates the filter against a property dictionary.
    pub fn matches(&self, props: &BTreeMap<String, PropValue>) -> bool {
        eval(&self.root, props)
    }

    /// The original filter string.
    pub fn as_str(&self) -> &str {
        &self.source
    }
}

impl FromStr for Filter {
    type Err = FilterError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Filter::parse(s)
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes.get(*pos).is_some_and(|b| b.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), FilterError> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(FilterError {
            at: *pos,
            message: format!("expected {:?}", ch as char),
        })
    }
}

fn parse_filter(bytes: &[u8], pos: &mut usize) -> Result<Node, FilterError> {
    skip_ws(bytes, pos);
    expect(bytes, pos, b'(')?;
    skip_ws(bytes, pos);
    let node = match bytes.get(*pos) {
        Some(b'&') => {
            *pos += 1;
            Node::And(parse_list(bytes, pos)?)
        }
        Some(b'|') => {
            *pos += 1;
            Node::Or(parse_list(bytes, pos)?)
        }
        Some(b'!') => {
            *pos += 1;
            Node::Not(Box::new(parse_filter(bytes, pos)?))
        }
        Some(_) => parse_operation(bytes, pos)?,
        None => {
            return Err(FilterError {
                at: *pos,
                message: "unexpected end of input".into(),
            })
        }
    };
    skip_ws(bytes, pos);
    expect(bytes, pos, b')')?;
    Ok(node)
}

fn parse_list(bytes: &[u8], pos: &mut usize) -> Result<Vec<Node>, FilterError> {
    let mut list = Vec::new();
    loop {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'(') => list.push(parse_filter(bytes, pos)?),
            _ => break,
        }
    }
    if list.is_empty() {
        return Err(FilterError {
            at: *pos,
            message: "composite filter needs at least one operand".into(),
        });
    }
    Ok(list)
}

fn parse_operation(bytes: &[u8], pos: &mut usize) -> Result<Node, FilterError> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|&b| !matches!(b, b'=' | b'<' | b'>' | b'~' | b'(' | b')'))
    {
        *pos += 1;
    }
    let attr = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| FilterError {
            at: start,
            message: "attribute not UTF-8".into(),
        })?
        .trim()
        .to_owned();
    if attr.is_empty() {
        return Err(FilterError {
            at: start,
            message: "empty attribute".into(),
        });
    }
    let op = match (bytes.get(*pos), bytes.get(*pos + 1)) {
        (Some(b'='), _) => {
            *pos += 1;
            b'='
        }
        (Some(b'>'), Some(b'=')) => {
            *pos += 2;
            b'>'
        }
        (Some(b'<'), Some(b'=')) => {
            *pos += 2;
            b'<'
        }
        (Some(b'~'), Some(b'=')) => {
            *pos += 2;
            b'~'
        }
        _ => {
            return Err(FilterError {
                at: *pos,
                message: "expected one of = >= <= ~=".into(),
            })
        }
    };
    let vstart = *pos;
    while bytes.get(*pos).is_some_and(|&b| b != b')' && b != b'(') {
        *pos += 1;
    }
    let value = std::str::from_utf8(&bytes[vstart..*pos])
        .map_err(|_| FilterError {
            at: vstart,
            message: "value not UTF-8".into(),
        })?
        .to_owned();
    Ok(match op {
        b'=' if value == "*" => Node::Present(attr),
        b'=' => Node::Equal(attr, value),
        b'>' => Node::GreaterEq(attr, value),
        b'<' => Node::LessEq(attr, value),
        b'~' => Node::Approx(attr, value),
        _ => unreachable!(),
    })
}

fn eval(node: &Node, props: &BTreeMap<String, PropValue>) -> bool {
    match node {
        Node::And(list) => list.iter().all(|n| eval(n, props)),
        Node::Or(list) => list.iter().any(|n| eval(n, props)),
        Node::Not(inner) => !eval(inner, props),
        Node::Present(attr) => props.contains_key(attr),
        Node::Equal(attr, pattern) => props.get(attr).is_some_and(|v| equal_match(v, pattern)),
        Node::Approx(attr, pattern) => props
            .get(attr)
            .is_some_and(|v| normalize(&v.literal()) == normalize(pattern)),
        Node::GreaterEq(attr, value) => props
            .get(attr)
            .is_some_and(|v| ordered_cmp(v, value).is_some_and(|o| o >= 0)),
        Node::LessEq(attr, value) => props
            .get(attr)
            .is_some_and(|v| ordered_cmp(v, value).is_some_and(|o| o <= 0)),
    }
}

fn equal_match(v: &PropValue, pattern: &str) -> bool {
    match v {
        PropValue::List(items) => items.iter().any(|s| wildcard_match(s, pattern)),
        other => wildcard_match(&other.literal(), pattern),
    }
}

/// Glob matching where `*` matches any run of characters.
fn wildcard_match(text: &str, pattern: &str) -> bool {
    if !pattern.contains('*') {
        return text == pattern;
    }
    let parts: Vec<&str> = pattern.split('*').collect();
    let mut rest = text;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            match rest.strip_prefix(part) {
                Some(r) => rest = r,
                None => return false,
            }
        } else if i == parts.len() - 1 {
            return rest.ends_with(part);
        } else {
            match rest.find(part) {
                Some(idx) => rest = &rest[idx + part.len()..],
                None => return false,
            }
        }
    }
    // Pattern ends with '*' (last part empty) — anything left is fine.
    parts.last().is_some_and(|p| p.is_empty()) || rest.is_empty()
}

fn normalize(s: &str) -> String {
    s.chars()
        .filter(|c| !c.is_whitespace())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Compares a property value against a filter literal. Numeric properties
/// compare numerically; strings lexicographically. Returns `None` when the
/// literal cannot be interpreted in the property's domain.
fn ordered_cmp(v: &PropValue, literal: &str) -> Option<i32> {
    match v {
        PropValue::Int(i) => literal
            .trim()
            .parse::<i64>()
            .ok()
            .map(|rhs| sign(i.cmp(&rhs) as i32)),
        PropValue::Float(f) => literal
            .trim()
            .parse::<f64>()
            .ok()
            .and_then(|rhs| f.partial_cmp(&rhs))
            .map(|o| o as i32),
        PropValue::Str(s) => Some(sign(s.as_str().cmp(literal) as i32)),
        PropValue::Bool(_) | PropValue::List(_) => None,
    }
}

fn sign(i: i32) -> i32 {
    i.signum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props(pairs: &[(&str, PropValue)]) -> BTreeMap<String, PropValue> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn equality_and_presence() {
        let p = props(&[
            ("objectClass", "log.Service".into()),
            ("level", 3i64.into()),
        ]);
        assert!(Filter::parse("(objectClass=log.Service)")
            .unwrap()
            .matches(&p));
        assert!(!Filter::parse("(objectClass=other)").unwrap().matches(&p));
        assert!(Filter::parse("(level=*)").unwrap().matches(&p));
        assert!(!Filter::parse("(missing=*)").unwrap().matches(&p));
        assert!(Filter::parse("(level=3)").unwrap().matches(&p));
    }

    #[test]
    fn boolean_composition() {
        let p = props(&[("a", 1i64.into()), ("b", 2i64.into())]);
        assert!(Filter::parse("(&(a=1)(b=2))").unwrap().matches(&p));
        assert!(!Filter::parse("(&(a=1)(b=3))").unwrap().matches(&p));
        assert!(Filter::parse("(|(a=9)(b=2))").unwrap().matches(&p));
        assert!(!Filter::parse("(|(a=9)(b=9))").unwrap().matches(&p));
        assert!(Filter::parse("(!(a=9))").unwrap().matches(&p));
        assert!(Filter::parse("(&(|(a=1)(a=2))(!(b=9)))")
            .unwrap()
            .matches(&p));
    }

    #[test]
    fn ordered_comparisons() {
        let p = props(&[
            ("rank", 10i64.into()),
            ("load", PropValue::Float(0.5)),
            ("name", "mmm".into()),
        ]);
        assert!(Filter::parse("(rank>=10)").unwrap().matches(&p));
        assert!(Filter::parse("(rank>=9)").unwrap().matches(&p));
        assert!(!Filter::parse("(rank>=11)").unwrap().matches(&p));
        assert!(Filter::parse("(rank<=10)").unwrap().matches(&p));
        assert!(Filter::parse("(load>=0.4)").unwrap().matches(&p));
        assert!(!Filter::parse("(load>=0.6)").unwrap().matches(&p));
        assert!(Filter::parse("(name>=abc)").unwrap().matches(&p));
        assert!(Filter::parse("(name<=zzz)").unwrap().matches(&p));
        // Garbage literal in a numeric domain never matches.
        assert!(!Filter::parse("(rank>=abc)").unwrap().matches(&p));
    }

    #[test]
    fn wildcards() {
        let p = props(&[("name", "org.example.log".into())]);
        assert!(Filter::parse("(name=org.*)").unwrap().matches(&p));
        assert!(Filter::parse("(name=*.log)").unwrap().matches(&p));
        assert!(Filter::parse("(name=org.*.log)").unwrap().matches(&p));
        assert!(Filter::parse("(name=*example*)").unwrap().matches(&p));
        assert!(!Filter::parse("(name=com.*)").unwrap().matches(&p));
        assert!(!Filter::parse("(name=org.*.http)").unwrap().matches(&p));
    }

    #[test]
    fn approx_ignores_case_and_whitespace() {
        let p = props(&[("vendor", "Acme Corp".into())]);
        assert!(Filter::parse("(vendor~=acmecorp)").unwrap().matches(&p));
        assert!(Filter::parse("(vendor~=ACME CORP)").unwrap().matches(&p));
        assert!(!Filter::parse("(vendor~=acme-inc)").unwrap().matches(&p));
    }

    #[test]
    fn multivalued_property_matches_any() {
        let p = props(&[(
            "objectClass",
            PropValue::List(vec!["log.Service".into(), "managed.Service".into()]),
        )]);
        assert!(Filter::parse("(objectClass=log.Service)")
            .unwrap()
            .matches(&p));
        assert!(Filter::parse("(objectClass=managed.*)")
            .unwrap()
            .matches(&p));
        assert!(!Filter::parse("(objectClass=http.Service)")
            .unwrap()
            .matches(&p));
    }

    #[test]
    fn parse_errors_pinpoint_location() {
        assert!(Filter::parse("").is_err());
        assert!(Filter::parse("(a=1").is_err());
        assert!(Filter::parse("a=1").is_err());
        assert!(Filter::parse("(=1)").is_err());
        assert!(Filter::parse("(&)").is_err());
        assert!(Filter::parse("(a=1)(b=2)").is_err()); // trailing
        assert!(Filter::parse("(a>1)").is_err()); // bare > is not an operator
        let err = Filter::parse("(a=1)x").unwrap_err();
        assert_eq!(err.at, 5);
    }

    #[test]
    fn display_preserves_source() {
        let f = Filter::parse("(&(a=1)(b=2))").unwrap();
        assert_eq!(f.to_string(), "(&(a=1)(b=2))");
        assert_eq!(f.as_str(), "(&(a=1)(b=2))");
    }

    #[test]
    fn whitespace_tolerated() {
        let p = props(&[("a", 1i64.into())]);
        assert!(Filter::parse(" ( & (a=1) ) ").unwrap().matches(&p));
    }
}
