//! Bundle activators: the code that runs when a bundle starts and stops.

use crate::framework::Framework;
use crate::{
    BundleError, BundleId, BundleManifest, ClassRef, Filter, LoadError, PropValue, Service,
    ServiceError, ServiceId, SymbolName,
};
use dosgi_net::SimDuration;
use dosgi_san::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A bundle's activator, the analogue of OSGi's `BundleActivator`.
///
/// `start` typically registers services and `stop` releases them (the
/// framework also sweeps any services the bundle forgot to unregister).
/// Errors are strings; the framework wraps them into
/// [`BundleError::ActivatorFailed`](crate::BundleError::ActivatorFailed) and
/// rolls the bundle back to `RESOLVED`.
pub trait Activator: Send {
    /// Called on the `RESOLVED → STARTING` transition.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the start; the bundle stays `RESOLVED`.
    fn start(&mut self, ctx: &mut BundleContext<'_>) -> Result<(), String>;

    /// Called on the `ACTIVE → STOPPING` transition.
    ///
    /// # Errors
    ///
    /// Errors are recorded as framework events; the stop proceeds anyway
    /// (OSGi semantics: a failing stop cannot keep a bundle active).
    fn stop(&mut self, ctx: &mut BundleContext<'_>) -> Result<(), String>;
}

/// A boxed start/stop callback as stored by [`FnActivator`].
type LifecycleFn = Box<dyn for<'a> FnMut(&mut BundleContext<'a>) -> Result<(), String> + Send>;

/// An [`Activator`] built from two closures. Convenient in tests and
/// examples.
pub struct FnActivator {
    on_start: LifecycleFn,
    on_stop: LifecycleFn,
}

impl FnActivator {
    /// Builds an activator from start and stop closures.
    pub fn new<S, T>(on_start: S, on_stop: T) -> Self
    where
        S: FnMut(&mut BundleContext<'_>) -> Result<(), String> + Send + 'static,
        T: FnMut(&mut BundleContext<'_>) -> Result<(), String> + Send + 'static,
    {
        FnActivator {
            on_start: Box::new(on_start),
            on_stop: Box::new(on_stop),
        }
    }

    /// An activator that only acts on start.
    pub fn on_start<S>(on_start: S) -> Self
    where
        S: FnMut(&mut BundleContext<'_>) -> Result<(), String> + Send + 'static,
    {
        Self::new(on_start, |_| Ok(()))
    }
}

impl fmt::Debug for FnActivator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnActivator").finish_non_exhaustive()
    }
}

impl Activator for FnActivator {
    fn start(&mut self, ctx: &mut BundleContext<'_>) -> Result<(), String> {
        (self.on_start)(ctx)
    }
    fn stop(&mut self, ctx: &mut BundleContext<'_>) -> Result<(), String> {
        (self.on_stop)(ctx)
    }
}

/// A boxed activator constructor as stored by [`ActivatorFactory`].
type BuilderFn = Box<dyn Fn(&BundleManifest) -> Box<dyn Activator> + Send + Sync>;

/// Recreates activators from manifests when a framework is restored from
/// persistent state.
///
/// Activators are behaviour and cannot be serialized to the SAN; what *is*
/// persistent is the bundle's identity. A factory maps symbolic names back
/// to code — the moral equivalent of the bundle's JAR being re-read from the
/// (SAN-backed) bundle cache on another node. This is the piece that makes
/// [`Framework::restore`](crate::Framework::restore) — and therefore the
/// paper's migration — work.
#[derive(Default)]
pub struct ActivatorFactory {
    builders: HashMap<String, BuilderFn>,
}

impl fmt::Debug for ActivatorFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&String> = self.builders.keys().collect();
        names.sort();
        f.debug_struct("ActivatorFactory")
            .field("registered", &names)
            .finish()
    }
}

impl ActivatorFactory {
    /// Creates an empty factory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a builder for bundles whose symbolic name equals `name`.
    pub fn register<F>(&mut self, name: &str, builder: F)
    where
        F: Fn(&BundleManifest) -> Box<dyn Activator> + Send + Sync + 'static,
    {
        self.builders.insert(name.to_owned(), Box::new(builder));
    }

    /// Builds an activator for `manifest`, if a builder is registered.
    pub fn create(&self, manifest: &BundleManifest) -> Option<Box<dyn Activator>> {
        self.builders
            .get(manifest.symbolic_name.as_str())
            .map(|b| b(manifest))
    }

    /// Names with registered builders, sorted.
    pub fn registered(&self) -> Vec<String> {
        let mut v: Vec<String> = self.builders.keys().cloned().collect();
        v.sort();
        v
    }
}

/// The execution context handed to activators (and other framework-resident
/// code such as the vosgi instance manager): a narrowed, bundle-scoped view
/// of the owning [`Framework`].
#[derive(Debug)]
pub struct BundleContext<'a> {
    bundle: BundleId,
    framework: &'a mut Framework,
}

impl<'a> BundleContext<'a> {
    pub(crate) fn new(bundle: BundleId, framework: &'a mut Framework) -> Self {
        BundleContext { bundle, framework }
    }

    /// The bundle this context belongs to.
    pub fn bundle(&self) -> BundleId {
        self.bundle
    }

    /// Registers a service owned by this bundle.
    pub fn register_service(
        &mut self,
        interfaces: &[&str],
        properties: BTreeMap<String, PropValue>,
        implementation: Box<dyn Service>,
    ) -> ServiceId {
        self.framework
            .register_service(self.bundle, interfaces, properties, implementation)
    }

    /// The best service offering `interface`.
    pub fn best_service(&self, interface: &str) -> Option<ServiceId> {
        self.framework.best_service(interface)
    }

    /// Service references matching `interface`/`filter`.
    pub fn service_references(
        &self,
        interface: Option<&str>,
        filter: Option<&Filter>,
    ) -> Vec<ServiceId> {
        self.framework
            .registry()
            .references(interface, filter)
            .into_iter()
            .map(|r| r.id)
            .collect()
    }

    /// Invokes a service.
    ///
    /// # Errors
    ///
    /// Propagates lookup and implementation errors.
    pub fn call_service(
        &mut self,
        id: ServiceId,
        method: &str,
        arg: &Value,
    ) -> Result<Value, ServiceError> {
        self.framework.call_service(id, method, arg)
    }

    /// Loads a class through this bundle's class space.
    ///
    /// # Errors
    ///
    /// See [`LoadError`].
    pub fn load_class(&mut self, symbol: &SymbolName) -> Result<ClassRef, LoadError> {
        self.framework.load_class(self.bundle, symbol)
    }

    /// Writes to this bundle's persistent storage area (SAN-backed when the
    /// framework has a store attached).
    ///
    /// # Errors
    ///
    /// [`BundleError::Store`] when the SAN write-through fails; the
    /// in-memory area is updated and re-flushed later regardless.
    pub fn store_put(&mut self, key: &str, value: Value) -> Result<(), BundleError> {
        self.framework.bundle_store_put(self.bundle, key, value)
    }

    /// Reads from this bundle's persistent storage area.
    ///
    /// # Errors
    ///
    /// [`BundleError::Store`] when the SAN fallback read fails.
    pub fn store_get(&self, key: &str) -> Result<Option<Value>, BundleError> {
        self.framework.bundle_store_get(self.bundle, key)
    }

    /// Charges CPU time consumed during activation to this bundle.
    pub fn charge_cpu(&mut self, d: SimDuration) {
        self.framework.ledger_mut().charge_cpu(self.bundle, d);
    }

    /// Records memory held by this bundle.
    pub fn alloc(&mut self, bytes: u64) {
        self.framework.ledger_mut().alloc(self.bundle, bytes);
    }

    /// Records memory released by this bundle.
    pub fn free(&mut self, bytes: u64) {
        self.framework.ledger_mut().free(self.bundle, bytes);
    }
}
