//! Property tests: the log-bucketed [`Histogram`] against a naive
//! `Vec<u64>` reference model, including merge = concatenation.

use dosgi_telemetry::{bucket_index, Histogram, BUCKETS};
use dosgi_testkit::prop::{self, Config, Gen};
use dosgi_testkit::rng::TestRng;
use dosgi_testkit::{prop_verify, prop_verify_eq};

/// Naive reference: keep every sample and recompute aggregates on demand.
#[derive(Debug, Default, Clone)]
struct Model {
    samples: Vec<u64>,
}

impl Model {
    fn record(&mut self, v: u64) {
        self.samples.push(v);
    }

    fn buckets(&self) -> Vec<u64> {
        let mut out = vec![0u64; BUCKETS];
        for &v in &self.samples {
            out[bucket_index(v)] += 1;
        }
        out
    }

    fn sum(&self) -> u64 {
        self.samples.iter().fold(0u64, |a, &v| a.saturating_add(v))
    }

    fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }
}

fn verify_against_model(h: &Histogram, m: &Model) -> Result<(), String> {
    prop_verify_eq!(h.count(), m.samples.len() as u64);
    prop_verify_eq!(h.sum(), m.sum());
    prop_verify_eq!(h.min(), m.min());
    prop_verify_eq!(h.max(), m.max());
    let expected = m.buckets();
    for (i, want) in expected.iter().enumerate() {
        prop_verify!(
            h.bucket(i) == *want,
            "bucket {i}: histogram {} != model {want}",
            h.bucket(i)
        );
    }
    Ok(())
}

/// Value streams spanning the interesting ranges: zeros, small values,
/// bucket-boundary powers of two, and full-range u64s.
fn streams(max_len: usize) -> Gen<Vec<u64>> {
    Gen::new(move |rng: &mut TestRng| {
        let len = rng.usize_in(0, max_len);
        (0..len)
            .map(|_| match rng.u64_below(4) {
                0 => rng.u64_in(0, 16),
                1 => 1u64 << rng.u64_below(64),
                2 => (1u64 << rng.u64_below(64)).wrapping_sub(1),
                _ => rng.next_u64(),
            })
            .collect()
    })
}

#[test]
fn histogram_matches_naive_reference_200_cases() {
    prop::check_with(
        &Config::with_cases(200),
        "histogram_matches_naive_reference",
        &streams(400),
        |stream| {
            let mut h = Histogram::new();
            let mut m = Model::default();
            for &v in stream {
                h.record(v);
                m.record(v);
            }
            verify_against_model(&h, &m)
        },
    );
}

#[test]
fn merged_histogram_equals_histogram_of_concatenation_200_cases() {
    let pairs = Gen::new(|rng: &mut TestRng| {
        let gen = streams(200);
        (gen.sample(rng), gen.sample(rng))
    });
    prop::check_with(
        &Config::with_cases(200),
        "merged_histogram_equals_concatenation",
        &pairs,
        |(a, b)| {
            let mut ha = Histogram::new();
            for &v in a {
                ha.record(v);
            }
            let mut hb = Histogram::new();
            for &v in b {
                hb.record(v);
            }
            ha.merge(&hb);

            let mut concat = Histogram::new();
            let mut m = Model::default();
            for &v in a.iter().chain(b.iter()) {
                concat.record(v);
                m.record(v);
            }
            prop_verify!(ha == concat, "merge != concatenated recording");
            verify_against_model(&ha, &m)
        },
    );
}

// ---------------------------------------------------------------------
// Causal tracing: the tree reconstructed from a merged flight-recorder
// log must match the reference happens-before order of the execution
// that produced it, for random cross-node interleavings.
// ---------------------------------------------------------------------

use dosgi_telemetry::{FlightRecorder, TraceEvent, TraceLog, TraceRef};
use std::collections::BTreeMap;

/// Reference model of one span in a random distributed execution: the
/// ground truth the merged log is checked against.
#[derive(Debug)]
struct SpanModel {
    span_id: u64,
    trace_id: u64,
    node: u64,
    parent_span: u64,
    closed: bool,
}

/// Drives 2–4 recorders through a random interleaving of root-open,
/// (possibly cross-node) child-open, and close operations, exactly the
/// way the protocol layer does: children are only ever opened from an
/// exported [`TraceContext`].
fn random_execution(rng: &mut TestRng) -> (Vec<FlightRecorder>, Vec<SpanModel>) {
    let nodes = rng.usize_in(2, 4);
    let recorders: Vec<FlightRecorder> =
        (0..nodes).map(|n| FlightRecorder::new(n as u64)).collect();
    let mut spans: Vec<SpanModel> = Vec::new();
    let mut refs: Vec<TraceRef> = Vec::new();
    let mut now_us = 0u64;
    for _ in 0..rng.usize_in(5, 60) {
        now_us += rng.u64_in(1, 1_000);
        let open: Vec<usize> = spans
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.closed)
            .map(|(i, _)| i)
            .collect();
        let op = if open.is_empty() { 0 } else { rng.u64_below(4) };
        match op {
            0 => {
                let node = rng.usize_in(0, nodes - 1);
                let r = recorders[node].root("root", now_us);
                spans.push(SpanModel {
                    span_id: r.span_id,
                    trace_id: r.trace_id,
                    node: node as u64,
                    parent_span: 0,
                    closed: false,
                });
                refs.push(r);
            }
            1 | 2 => {
                let pi = open[rng.usize_in(0, open.len() - 1)];
                let (p_node, p_span, p_trace) =
                    (spans[pi].node, spans[pi].span_id, spans[pi].trace_id);
                let ctx = recorders[p_node as usize]
                    .context(refs[pi])
                    .expect("open spans export a context");
                let node = rng.usize_in(0, nodes - 1);
                let r = recorders[node].child(ctx, "child", now_us);
                spans.push(SpanModel {
                    span_id: r.span_id,
                    trace_id: p_trace,
                    node: node as u64,
                    parent_span: p_span,
                    closed: false,
                });
                refs.push(r);
            }
            _ => {
                let i = open[rng.usize_in(0, open.len() - 1)];
                recorders[spans[i].node as usize].end(refs[i], now_us);
                spans[i].closed = true;
            }
        }
    }
    (recorders, spans)
}

#[test]
fn merged_trace_matches_happens_before_reference_200_interleavings() {
    prop::check_with(
        &Config::with_cases(200),
        "merged_trace_matches_happens_before",
        &Gen::new(|rng: &mut TestRng| rng.next_u64()),
        |seed| {
            let mut rng = TestRng::new(*seed);
            let (recorders, model) = random_execution(&mut rng);
            let log = TraceLog::merge(recorders.iter());
            prop_verify_eq!(log.dropped, 0u64);
            prop_verify_eq!(log.events.len(), model.len());

            let by_span: BTreeMap<u64, &TraceEvent> =
                log.events.iter().map(|e| (e.span_id, e)).collect();
            for m in &model {
                let e = by_span
                    .get(&m.span_id)
                    .ok_or_else(|| format!("span {} missing from merged log", m.span_id))?;
                // Tree reconstruction: linkage, trace membership, origin
                // node, and open/closed state all round-trip.
                prop_verify_eq!(e.trace_id, m.trace_id);
                prop_verify_eq!(e.parent_span, m.parent_span);
                prop_verify_eq!(e.node, m.node);
                prop_verify_eq!(e.open, !m.closed);
                prop_verify_eq!(TraceEvent::node_of(e.span_id), m.node);
                if m.closed {
                    prop_verify!(e.lamport_end > e.lamport_start, "close must tick the clock");
                } else {
                    prop_verify_eq!(e.lamport_end, e.lamport_start);
                }
                if m.parent_span != 0 {
                    // Happens-before along the edge: parent open, then
                    // context export, then child open — strictly ordered
                    // Lamport stamps even across nodes.
                    let p = by_span[&m.parent_span];
                    prop_verify!(e.ctx_lamport != 0, "child without imported context");
                    prop_verify!(
                        p.lamport_start < e.ctx_lamport && e.ctx_lamport < e.lamport_start,
                        "edge {} -> {}: {} < {} < {} violated",
                        p.span_id,
                        e.span_id,
                        p.lamport_start,
                        e.ctx_lamport,
                        e.lamport_start
                    );
                    prop_verify!(e.start_us >= p.start_us, "child opened before parent");
                }
            }

            // The merged order is a linear extension of happens-before:
            // every parent sorts before every one of its children.
            let pos: BTreeMap<u64, usize> = log
                .events
                .iter()
                .enumerate()
                .map(|(i, e)| (e.span_id, i))
                .collect();
            for e in &log.events {
                if e.parent_span != 0 {
                    prop_verify!(
                        pos[&e.parent_span] < pos[&e.span_id],
                        "merged log orders child {} before parent {}",
                        e.span_id,
                        e.parent_span
                    );
                }
            }
            Ok(())
        },
    );
}
