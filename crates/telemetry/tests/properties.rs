//! Property tests: the log-bucketed [`Histogram`] against a naive
//! `Vec<u64>` reference model, including merge = concatenation.

use dosgi_telemetry::{bucket_index, Histogram, BUCKETS};
use dosgi_testkit::prop::{self, Config, Gen};
use dosgi_testkit::rng::TestRng;
use dosgi_testkit::{prop_verify, prop_verify_eq};

/// Naive reference: keep every sample and recompute aggregates on demand.
#[derive(Debug, Default, Clone)]
struct Model {
    samples: Vec<u64>,
}

impl Model {
    fn record(&mut self, v: u64) {
        self.samples.push(v);
    }

    fn buckets(&self) -> Vec<u64> {
        let mut out = vec![0u64; BUCKETS];
        for &v in &self.samples {
            out[bucket_index(v)] += 1;
        }
        out
    }

    fn sum(&self) -> u64 {
        self.samples.iter().fold(0u64, |a, &v| a.saturating_add(v))
    }

    fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }
}

fn verify_against_model(h: &Histogram, m: &Model) -> Result<(), String> {
    prop_verify_eq!(h.count(), m.samples.len() as u64);
    prop_verify_eq!(h.sum(), m.sum());
    prop_verify_eq!(h.min(), m.min());
    prop_verify_eq!(h.max(), m.max());
    let expected = m.buckets();
    for (i, want) in expected.iter().enumerate() {
        prop_verify!(
            h.bucket(i) == *want,
            "bucket {i}: histogram {} != model {want}",
            h.bucket(i)
        );
    }
    Ok(())
}

/// Value streams spanning the interesting ranges: zeros, small values,
/// bucket-boundary powers of two, and full-range u64s.
fn streams(max_len: usize) -> Gen<Vec<u64>> {
    Gen::new(move |rng: &mut TestRng| {
        let len = rng.usize_in(0, max_len);
        (0..len)
            .map(|_| match rng.u64_below(4) {
                0 => rng.u64_in(0, 16),
                1 => 1u64 << rng.u64_below(64),
                2 => (1u64 << rng.u64_below(64)).wrapping_sub(1),
                _ => rng.next_u64(),
            })
            .collect()
    })
}

#[test]
fn histogram_matches_naive_reference_200_cases() {
    prop::check_with(
        &Config::with_cases(200),
        "histogram_matches_naive_reference",
        &streams(400),
        |stream| {
            let mut h = Histogram::new();
            let mut m = Model::default();
            for &v in stream {
                h.record(v);
                m.record(v);
            }
            verify_against_model(&h, &m)
        },
    );
}

#[test]
fn merged_histogram_equals_histogram_of_concatenation_200_cases() {
    let pairs = Gen::new(|rng: &mut TestRng| {
        let gen = streams(200);
        (gen.sample(rng), gen.sample(rng))
    });
    prop::check_with(
        &Config::with_cases(200),
        "merged_histogram_equals_concatenation",
        &pairs,
        |(a, b)| {
            let mut ha = Histogram::new();
            for &v in a {
                ha.record(v);
            }
            let mut hb = Histogram::new();
            for &v in b {
                hb.record(v);
            }
            ha.merge(&hb);

            let mut concat = Histogram::new();
            let mut m = Model::default();
            for &v in a.iter().chain(b.iter()) {
                concat.record(v);
                m.record(v);
            }
            prop_verify!(ha == concat, "merge != concatenated recording");
            verify_against_model(&ha, &m)
        },
    );
}
