//! Property tests for the time-series layer: the [`SeriesScraper`]'s
//! windowed rate and percentile series pinned against a naive
//! recompute-from-scratch reference that keeps every raw sample, plus a
//! ring-overflow downsampling regression asserting the `dropped_points`
//! accounting is exact.

use dosgi_telemetry::series::window_percentile;
use dosgi_telemetry::{
    bucket_bounds, bucket_index, ScrapeConfig, Series, SeriesKind, SeriesPoint, SeriesScraper,
    Telemetry, DROPPED_POINTS,
};
use dosgi_testkit::prop::{self, Config, Gen};
use dosgi_testkit::rng::TestRng;
use dosgi_testkit::{prop_verify, prop_verify_eq};

/// One sim step of recorded traffic, as raw events.
#[derive(Debug, Clone)]
struct Step {
    counter_incs: u64,
    gauge: i64,
    hist_samples: Vec<u64>,
}

/// A run: a handful of scrape windows, each made of raw steps.
#[derive(Debug, Clone)]
struct Run {
    windows: Vec<Vec<Step>>,
}

fn runs() -> Gen<Run> {
    Gen::new(|rng: &mut TestRng| {
        let windows = rng.usize_in(1, 8);
        let run = (0..windows)
            .map(|_| {
                let steps = rng.usize_in(0, 6);
                (0..steps)
                    .map(|_| Step {
                        counter_incs: rng.u64_in(0, 50),
                        gauge: rng.u64_in(0, 10_000) as i64 - 5_000,
                        hist_samples: (0..rng.usize_in(0, 12))
                            .map(|_| match rng.u64_below(3) {
                                0 => rng.u64_in(0, 16),
                                1 => 1u64 << rng.u64_below(32),
                                _ => rng.u64_in(0, 1_000_000),
                            })
                            .collect(),
                    })
                    .collect()
            })
            .collect();
        Run { windows: run }
    })
}

/// Naive reference percentile: sort the window's raw samples, take the
/// ceil-rank `⌈n·p/100⌉`-th smallest, and return the lower bound of its
/// log bucket (what an unclamped bucket percentile must produce).
fn naive_window_percentile(samples: &[u64], p: u64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (sorted.len() as u64).saturating_mul(p).div_ceil(100) as usize;
    Some(bucket_bounds(bucket_index(sorted[rank - 1])).0)
}

#[test]
fn series_match_naive_recompute_200_cases() {
    prop::check_with(
        &Config::with_cases(200),
        "series_match_naive_recompute",
        &runs(),
        |run| {
            let t = Telemetry::new();
            let mut scraper = SeriesScraper::new(ScrapeConfig {
                cadence_us: 1_000_000,
                capacity: 64,
            });
            // The naive model: per window, re-derived from raw events.
            // The counter and gauge are *created* by the first step that
            // touches them (even a zero-valued add), so the scraper emits
            // points for them from the first window containing any step.
            let mut want_rates: Vec<(u64, i64)> = Vec::new();
            let mut want_gauges: Vec<(u64, i64)> = Vec::new();
            let mut want_pcts: Vec<(u64, [i64; 3])> = Vec::new();
            let mut gauge_now = 0i64;
            let mut active = false;

            for (w, steps) in run.windows.iter().enumerate() {
                let now_us = w as u64 * 1_000_000;
                let mut window_incs = 0u64;
                let mut window_samples: Vec<u64> = Vec::new();
                for s in steps {
                    t.add("ops", s.counter_incs);
                    window_incs += s.counter_incs;
                    t.gauge_set("depth", s.gauge);
                    gauge_now = s.gauge;
                    active = true;
                    for &v in &s.hist_samples {
                        t.record("lat", v);
                        window_samples.push(v);
                    }
                }
                prop_verify!(scraper.scrape(&t, now_us), "scrape due every window");
                if active {
                    want_rates.push((now_us, window_incs as i64));
                    want_gauges.push((now_us, gauge_now));
                }
                if !window_samples.is_empty() {
                    let p = [50u64, 95, 99]
                        .map(|p| naive_window_percentile(&window_samples, p).unwrap() as i64);
                    want_pcts.push((now_us, p));
                }
            }

            // Counter rates: exact per-window deltas, one point per scrape.
            let got_rates: Vec<(u64, i64)> = scraper
                .series("rate:ops")
                .map(|s| s.points().map(|p| (p.at_us, p.value)).collect())
                .unwrap_or_default();
            prop_verify_eq!(got_rates, want_rates);

            // Gauges: the last-written value sampled at each scrape.
            let got_gauges: Vec<(u64, i64)> = scraper
                .series("gauge:depth")
                .map(|s| s.points().map(|p| (p.at_us, p.value)).collect())
                .unwrap_or_default();
            prop_verify_eq!(got_gauges, want_gauges);

            // Percentiles: each point equals the naive recompute from the
            // window's raw samples; quiet windows emit no point.
            for (kind, idx) in [
                (SeriesKind::P50, 0),
                (SeriesKind::P95, 1),
                (SeriesKind::P99, 2),
            ] {
                let name = format!("{}:lat", kind.prefix());
                let got: Vec<(u64, i64)> = scraper
                    .series(&name)
                    .map(|s| s.points().map(|p| (p.at_us, p.value)).collect())
                    .unwrap_or_default();
                let want: Vec<(u64, i64)> = want_pcts.iter().map(|&(at, p)| (at, p[idx])).collect();
                prop_verify_eq!(got, want);
            }

            // p50 ≤ p95 ≤ p99 at every point, by construction.
            for &(_, [p50, p95, p99]) in &want_pcts {
                prop_verify!(p50 <= p95 && p95 <= p99, "percentile ordering");
            }
            Ok(())
        },
    );
}

#[test]
fn window_percentile_matches_naive_reference_200_cases() {
    let samples = Gen::new(|rng: &mut TestRng| {
        let n = rng.usize_in(1, 300);
        (0..n)
            .map(|_| match rng.u64_below(4) {
                0 => 0,
                1 => rng.u64_in(1, 100),
                2 => 1u64 << rng.u64_below(63),
                _ => rng.next_u64(),
            })
            .collect::<Vec<u64>>()
    });
    prop::check_with(
        &Config::with_cases(200),
        "window_percentile_matches_naive",
        &samples,
        |samples| {
            let mut buckets = [0u64; dosgi_telemetry::BUCKETS];
            for &v in samples {
                buckets[bucket_index(v)] += 1;
            }
            for p in [1u64, 50, 90, 95, 99, 100] {
                prop_verify_eq!(
                    window_percentile(&buckets, samples.len() as u64, p),
                    naive_window_percentile(samples, p)
                );
            }
            Ok(())
        },
    );
}

/// Regression: however many points flow through a ring, the accounting
/// `appended == retained + dropped` is exact — per series and in the
/// registry-wide `telemetry.series.dropped_points` counter.
#[test]
fn downsampling_drop_accounting_is_exact() {
    for (capacity, pushes) in [(10, 11), (10, 1000), (240, 10_000), (7, 7), (3, 100)] {
        let mut s = Series::new(SeriesKind::Rate, capacity);
        for i in 0..pushes {
            s.push(SeriesPoint {
                at_us: i as u64,
                value: i as i64,
            });
            assert_eq!(
                s.appended(),
                s.len() as u64 + s.dropped(),
                "capacity {capacity}, push {i}"
            );
            assert!(s.len() <= capacity, "ring exceeded capacity");
        }
        assert_eq!(s.appended(), pushes as u64);
        // Timestamps stay strictly increasing through compaction.
        let times: Vec<u64> = s.points().map(|p| p.at_us).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "unordered ring");
        // The newest point always survives a compaction.
        assert_eq!(s.last().unwrap().at_us, pushes as u64 - 1);
    }
}

/// Regression: the scraper mirrors every compaction into the registry
/// counter, and a long run through small rings stays bounded.
#[test]
fn scraper_drop_counter_is_exact_over_overflowing_run() {
    let t = Telemetry::new();
    let mut scraper = SeriesScraper::new(ScrapeConfig {
        cadence_us: 1_000,
        capacity: 16,
    });
    for i in 0..500u64 {
        t.add("ops", i % 7);
        t.gauge_set("depth", (i % 13) as i64);
        t.record("lat", i * 31);
        scraper.scrape(&t, i * 1_000);
    }
    assert_eq!(scraper.scrapes(), 500);
    let dropped = scraper.total_dropped();
    assert!(dropped > 0, "500 scrapes through 16-rings must compact");
    assert_eq!(t.counter(DROPPED_POINTS), dropped);
    assert_eq!(
        scraper.total_appended(),
        scraper.total_points() as u64 + dropped
    );
    assert!(scraper.total_points() <= scraper.series_count() * 16);
    // 10:1 compaction: a full ring shrinks to ceil(capacity/10) points,
    // so each series holds at most capacity points forever.
    for name in scraper.series_names() {
        let s = scraper.series(name).unwrap();
        assert!(s.len() <= s.capacity());
        assert_eq!(s.appended(), s.len() as u64 + s.dropped());
    }
}
