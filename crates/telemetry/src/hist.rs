//! Log-bucketed histogram.
//!
//! Values are `u64`s (typically simulated microseconds or byte counts)
//! bucketed by bit length: bucket `0` holds the value `0`, bucket `i`
//! (`i >= 1`) holds values `v` with `2^(i-1) <= v < 2^i`. That gives 65
//! fixed buckets covering the full `u64` range with ~2x relative error,
//! which is plenty for order-of-magnitude latency accounting and keeps
//! recording allocation-free.

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: `0` for `0`, otherwise its bit length.
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive-exclusive `[lo, hi)` value range covered by bucket `i`
/// (bucket 0 is the degenerate `[0, 1)`). The top bucket's `hi` is
/// `u64::MAX` (saturated).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i >= 64 { u64::MAX } else { 1u64 << i };
        (lo, hi)
    }
}

/// A mergeable log-bucketed histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Fold another histogram into this one. The result is identical to
    /// the histogram of the concatenated sample streams (modulo `sum`
    /// saturation, which no simulated workload approaches).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Estimate the `p`-th percentile (`0 < p <= 100`) from the log
    /// buckets: the ceil-rank `⌈count·p/100⌉`-th smallest sample falls
    /// in some bucket, whose lower bound (clamped into `[min, max]`) is
    /// returned. Integer-only and a pure function of the bucket counts,
    /// so it keeps snapshots byte-deterministic. `None` when empty.
    pub fn percentile(&self, p: u64) -> Option<u64> {
        if self.count == 0 || p == 0 || p > 100 {
            return None;
        }
        let rank = self.count.saturating_mul(p).div_ceil(100);
        let mut cum = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_bounds(i).0.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i, *c))
            .collect()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("nonzero_buckets", &self.nonzero_buckets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_cover_each_bucket() {
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            if i < 64 {
                assert_eq!(bucket_index(hi - 1), i, "hi-1 of bucket {i}");
            }
        }
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn percentiles_from_buckets() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50), None);
        h.record(7);
        // Single sample: every percentile is that sample's bucket,
        // clamped to the exact value by min == max.
        assert_eq!(h.percentile(50), Some(7));
        assert_eq!(h.percentile(99), Some(7));
        for _ in 0..98 {
            h.record(10);
        }
        h.record(5000);
        // 100 samples: p50/p95 land in 10's bucket [8,16) -> lower
        // bound 8; p100 in 5000's bucket, clamped to max.
        assert_eq!(h.percentile(50), Some(8));
        assert_eq!(h.percentile(95), Some(8));
        assert_eq!(h.percentile(100), Some(4096));
        assert_eq!(h.percentile(0), None);
        assert_eq!(h.percentile(101), None);
        // Percentiles are monotone in p.
        let mut last = 0;
        for p in 1..=100 {
            let v = h.percentile(p).unwrap();
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn record_and_merge_basics() {
        let mut a = Histogram::new();
        a.record(0);
        a.record(5);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 105);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(100));
        assert_eq!(a.bucket(bucket_index(0)), 1);
        assert_eq!(a.bucket(bucket_index(5)), 1);
        assert_eq!(a.bucket(bucket_index(100)), 1);
    }
}
