//! Deterministic time-series: bounded ring-buffer series scraped from the
//! metric registry on a fixed sim-time cadence.
//!
//! A [`SeriesScraper`] turns the cumulative registry into time-resolved
//! points once per cadence tick:
//!
//! * **counters** become *windowed rates* — the exact delta of the
//!   cumulative counter since the previous scrape;
//! * **gauges** are *sampled* — the last-written value at scrape time;
//! * **histograms** export *per-window percentiles* — p50/p95/p99
//!   computed from the delta of the cumulative bucket counts since the
//!   previous scrape (only the samples recorded inside the window).
//!
//! Each series is a bounded ring ([`Series`]): when a ring fills, it is
//! compacted **10:1** ([`DOWNSAMPLE`]) — the buffer is scanned oldest
//! first in groups of ten and only the last point of each group is kept,
//! so old history thins out while recent points stay dense. Every point
//! lost to compaction is accounted exactly: per series in
//! [`Series::dropped`], and registry-wide in the
//! `telemetry.series.dropped_points` counter ([`DROPPED_POINTS`]). The
//! invariant `appended == retained + dropped` holds at all times.
//!
//! ## Determinism contract
//!
//! The scraper is as passive as the registry it reads: it consumes no
//! randomness, never reads the wall clock, and never influences the
//! instrumented code — in particular it must never touch the simulator's
//! fault-injector RNG stream. Timestamps are caller-supplied sim-time
//! microseconds; scraping on a fixed cadence from the sim driver's step
//! loop therefore yields byte-identical series on replay, and a chaos
//! fingerprint that is identical whether series collection is on or off.

use crate::{bucket_bounds, Histogram, Telemetry, BUCKETS};
use std::collections::{BTreeMap, VecDeque};

/// Counter incremented (registry-wide) for every point lost to ring
/// compaction across all series held by a scraper.
pub const DROPPED_POINTS: &str = "telemetry.series.dropped_points";

/// Default ring capacity per series: one minute of history at the
/// default cadence before the first compaction.
pub const DEFAULT_SERIES_CAPACITY: usize = 240;

/// Default scrape cadence: 250 ms of sim time.
pub const DEFAULT_CADENCE_US: u64 = 250_000;

/// Compaction ratio: on overflow, each group of this many consecutive
/// points is replaced by its most recent member.
pub const DOWNSAMPLE: usize = 10;

/// One sample of a series: sim-time microseconds and a value.
///
/// Rates and percentiles are non-negative but share the gauge's `i64`
/// domain so every series has one point type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Scrape time, simulated microseconds.
    pub at_us: u64,
    /// Windowed rate, sampled gauge, or window percentile.
    pub value: i64,
}

/// What a series' points mean (and the `kind:` prefix of its name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeriesKind {
    /// Counter delta per scrape window.
    Rate,
    /// Gauge value at scrape time.
    Gauge,
    /// Median of the histogram samples recorded in the window.
    P50,
    /// 95th percentile of the window's samples.
    P95,
    /// 99th percentile of the window's samples.
    P99,
}

impl SeriesKind {
    /// The series-name prefix for this kind (`rate`, `gauge`, `p50`, …).
    pub fn prefix(self) -> &'static str {
        match self {
            SeriesKind::Rate => "rate",
            SeriesKind::Gauge => "gauge",
            SeriesKind::P50 => "p50",
            SeriesKind::P95 => "p95",
            SeriesKind::P99 => "p99",
        }
    }
}

/// A bounded ring of [`SeriesPoint`]s with 10:1 overflow compaction and
/// exact drop accounting.
#[derive(Debug, Clone)]
pub struct Series {
    kind: SeriesKind,
    points: VecDeque<SeriesPoint>,
    capacity: usize,
    appended: u64,
    dropped: u64,
}

impl Series {
    /// An empty series of `kind` holding at most `capacity` points.
    pub fn new(kind: SeriesKind, capacity: usize) -> Self {
        Series {
            kind,
            points: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            appended: 0,
            dropped: 0,
        }
    }

    /// Append one point, compacting first if the ring is full.
    pub fn push(&mut self, p: SeriesPoint) {
        if self.points.len() >= self.capacity {
            self.compact();
        }
        self.points.push_back(p);
        self.appended += 1;
    }

    /// 10:1 in-place compaction: scan oldest-first in groups of
    /// [`DOWNSAMPLE`], keep each group's last (most recent) point, and
    /// count every discarded point into `dropped`.
    fn compact(&mut self) {
        let old = std::mem::take(&mut self.points);
        let n = old.len();
        let mut kept = VecDeque::with_capacity(self.capacity);
        let mut i = 0;
        while i < n {
            let end = (i + DOWNSAMPLE).min(n);
            kept.push_back(old[end - 1]);
            self.dropped += (end - 1 - i) as u64;
            i = end;
        }
        self.points = kept;
    }

    /// The series' point semantics.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// Points currently retained, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &SeriesPoint> {
        self.points.iter()
    }

    /// Number of points currently retained (never exceeds capacity).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point has survived (or ever been pushed).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent point, if any.
    pub fn last(&self) -> Option<SeriesPoint> {
        self.points.back().copied()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total points ever pushed. Always `len() + dropped()`.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Points lost to compaction, exactly.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The unclamped `p`-th percentile of a *window* histogram given by
/// delta bucket counts: the lower bound of the bucket holding the
/// ceil-rank `⌈count·p/100⌉`-th smallest window sample.
///
/// Unlike [`Histogram::percentile`] this cannot clamp into `[min, max]`
/// — a window's exact extrema are not recoverable from cumulative
/// histograms — so it is a pure function of the delta buckets, which is
/// what makes it exactly reproducible from a naive recompute.
pub fn window_percentile(buckets: &[u64; BUCKETS], count: u64, p: u64) -> Option<u64> {
    if count == 0 || p == 0 || p > 100 {
        return None;
    }
    let rank = count.saturating_mul(p).div_ceil(100);
    let mut cum = 0u64;
    for (i, c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return Some(bucket_bounds(i).0);
        }
    }
    None // unreachable when count matches the bucket sum
}

/// Scraper knobs.
#[derive(Debug, Clone)]
pub struct ScrapeConfig {
    /// Sim-time microseconds between scrapes.
    pub cadence_us: u64,
    /// Ring capacity per series.
    pub capacity: usize,
}

impl Default for ScrapeConfig {
    fn default() -> Self {
        ScrapeConfig {
            cadence_us: DEFAULT_CADENCE_US,
            capacity: DEFAULT_SERIES_CAPACITY,
        }
    }
}

#[derive(Clone)]
struct HistCursor {
    buckets: [u64; BUCKETS],
    count: u64,
}

/// Scrapes a [`Telemetry`] registry into bounded time series on a fixed
/// sim-time cadence. See the module docs for the point semantics.
pub struct SeriesScraper {
    config: ScrapeConfig,
    next_due_us: Option<u64>,
    last_counters: BTreeMap<String, u64>,
    last_hists: BTreeMap<String, HistCursor>,
    series: BTreeMap<String, Series>,
    scrapes: u64,
}

impl SeriesScraper {
    /// A scraper with the given cadence and ring capacity.
    pub fn new(config: ScrapeConfig) -> Self {
        SeriesScraper {
            config,
            next_due_us: None,
            last_counters: BTreeMap::new(),
            last_hists: BTreeMap::new(),
            series: BTreeMap::new(),
            scrapes: 0,
        }
    }

    /// True when a scrape is due at `now_us` (always, before the first).
    pub fn due(&self, now_us: u64) -> bool {
        self.next_due_us.is_none_or(|d| now_us >= d)
    }

    /// Scrape once if the cadence says a scrape is due at `now_us`.
    /// Returns `true` when a scrape happened. The first call always
    /// scrapes (establishing the baseline window from zero).
    pub fn scrape(&mut self, telemetry: &Telemetry, now_us: u64) -> bool {
        if let Some(due) = self.next_due_us {
            if now_us < due {
                return false;
            }
        }
        self.next_due_us = Some(now_us + self.config.cadence_us);
        self.scrapes += 1;

        let dropped_before = self.total_dropped();
        let capacity = self.config.capacity;
        let series = &mut self.series;
        let last_counters = &mut self.last_counters;
        let last_hists = &mut self.last_hists;
        telemetry.read(|counters, gauges, histograms| {
            for (name, cum) in counters {
                // The drop-accounting counter is written by the scraper
                // itself *after* this read; tracking a series of it
                // would only echo the scraper back at itself.
                if name.starts_with("telemetry.series.") {
                    continue;
                }
                let prev = last_counters.insert(name.clone(), *cum).unwrap_or(0);
                let delta = cum.saturating_sub(prev);
                push_point(
                    series,
                    SeriesKind::Rate,
                    name,
                    now_us,
                    delta as i64,
                    capacity,
                );
            }
            for (name, v) in gauges {
                push_point(series, SeriesKind::Gauge, name, now_us, *v, capacity);
            }
            for (name, h) in histograms {
                let cur = cursor_of(h);
                let prev = last_hists.insert(name.clone(), cur.clone());
                let (delta_buckets, delta_count) = match prev {
                    Some(p) => {
                        let mut d = [0u64; BUCKETS];
                        for (i, slot) in d.iter_mut().enumerate() {
                            *slot = cur.buckets[i].saturating_sub(p.buckets[i]);
                        }
                        (d, cur.count.saturating_sub(p.count))
                    }
                    None => (cur.buckets, cur.count),
                };
                if delta_count == 0 {
                    continue; // no samples this window: no percentile point
                }
                for (kind, p) in [
                    (SeriesKind::P50, 50),
                    (SeriesKind::P95, 95),
                    (SeriesKind::P99, 99),
                ] {
                    if let Some(v) = window_percentile(&delta_buckets, delta_count, p) {
                        push_point(series, kind, name, now_us, v as i64, capacity);
                    }
                }
            }
        });

        let newly_dropped = self.total_dropped() - dropped_before;
        if newly_dropped > 0 {
            telemetry.add(DROPPED_POINTS, newly_dropped);
        }
        true
    }

    /// The series named `<kind>:<metric>`, if it exists.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// All series names, sorted.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Points currently retained across all series. Bounded by
    /// `series_count() * capacity` forever, regardless of run length.
    pub fn total_points(&self) -> usize {
        self.series.values().map(Series::len).sum()
    }

    /// Points lost to compaction across all series, exactly.
    pub fn total_dropped(&self) -> u64 {
        self.series.values().map(Series::dropped).sum()
    }

    /// Points ever appended across all series.
    pub fn total_appended(&self) -> u64 {
        self.series.values().map(Series::appended).sum()
    }

    /// Scrapes performed so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes
    }

    /// The configured cadence in sim-time microseconds.
    pub fn cadence_us(&self) -> u64 {
        self.config.cadence_us
    }
}

fn cursor_of(h: &Histogram) -> HistCursor {
    let mut buckets = [0u64; BUCKETS];
    for (i, c) in h.nonzero_buckets() {
        buckets[i] = c;
    }
    HistCursor {
        buckets,
        count: h.count(),
    }
}

fn push_point(
    series: &mut BTreeMap<String, Series>,
    kind: SeriesKind,
    metric: &str,
    at_us: u64,
    value: i64,
    capacity: usize,
) {
    series
        .entry(format!("{}:{}", kind.prefix(), metric))
        .or_insert_with(|| Series::new(kind, capacity))
        .push(SeriesPoint { at_us, value });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_exact_deltas_and_gauges_are_samples() {
        let t = Telemetry::new();
        let mut s = SeriesScraper::new(ScrapeConfig::default());
        t.add("ops", 5);
        t.gauge_set("depth", 3);
        assert!(s.scrape(&t, 0));
        t.add("ops", 7);
        t.gauge_set("depth", -1);
        assert!(s.scrape(&t, 250_000));
        let rate: Vec<i64> = s
            .series("rate:ops")
            .unwrap()
            .points()
            .map(|p| p.value)
            .collect();
        assert_eq!(rate, vec![5, 7]);
        let depth: Vec<i64> = s
            .series("gauge:depth")
            .unwrap()
            .points()
            .map(|p| p.value)
            .collect();
        assert_eq!(depth, vec![3, -1]);
    }

    #[test]
    fn cadence_gates_scrapes() {
        let t = Telemetry::new();
        let mut s = SeriesScraper::new(ScrapeConfig {
            cadence_us: 1000,
            capacity: 8,
        });
        assert!(s.scrape(&t, 0));
        assert!(!s.scrape(&t, 999));
        assert!(s.scrape(&t, 1000));
        assert_eq!(s.scrapes(), 2);
    }

    #[test]
    fn window_percentiles_come_from_the_window_only() {
        let t = Telemetry::new();
        let mut s = SeriesScraper::new(ScrapeConfig::default());
        for _ in 0..100 {
            t.record("lat", 10); // bucket [8,16)
        }
        assert!(s.scrape(&t, 0));
        for _ in 0..100 {
            t.record("lat", 5000); // bucket [4096,8192)
        }
        assert!(s.scrape(&t, 250_000));
        let p50: Vec<i64> = s
            .series("p50:lat")
            .unwrap()
            .points()
            .map(|p| p.value)
            .collect();
        // First window is all 10s (bucket floor 8); second window is all
        // 5000s (bucket floor 4096) — the first window's samples must not
        // bleed into the second.
        assert_eq!(p50, vec![8, 4096]);
    }

    #[test]
    fn quiet_histogram_window_emits_no_point() {
        let t = Telemetry::new();
        let mut s = SeriesScraper::new(ScrapeConfig::default());
        t.record("lat", 7);
        assert!(s.scrape(&t, 0));
        assert!(s.scrape(&t, 250_000)); // no new samples
        assert_eq!(s.series("p95:lat").unwrap().len(), 1);
    }

    #[test]
    fn overflow_compacts_ten_to_one_with_exact_accounting() {
        let mut s = Series::new(SeriesKind::Gauge, 20);
        for i in 0..21i64 {
            s.push(SeriesPoint {
                at_us: i as u64,
                value: i,
            });
        }
        // The 21st push compacted 20 points into 2 (last of each ten).
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 18);
        assert_eq!(s.appended(), 21);
        assert_eq!(s.appended(), s.len() as u64 + s.dropped());
        let vals: Vec<i64> = s.points().map(|p| p.value).collect();
        assert_eq!(vals, vec![9, 19, 20]);
    }

    #[test]
    fn scraper_reports_drops_into_the_registry() {
        let t = Telemetry::new();
        let mut s = SeriesScraper::new(ScrapeConfig {
            cadence_us: 100,
            capacity: 10,
        });
        t.incr("ops");
        for i in 0..40u64 {
            s.scrape(&t, i * 100);
        }
        let dropped = s.total_dropped();
        assert!(dropped > 0, "40 points through a 10-ring must compact");
        assert_eq!(t.counter(DROPPED_POINTS), dropped);
        let ring = s.series("rate:ops").unwrap();
        assert_eq!(ring.appended(), 40);
        assert_eq!(ring.appended(), ring.len() as u64 + ring.dropped());
    }
}
