//! Schema-versioned, byte-deterministic JSON snapshots.
//!
//! The format mirrors `dosgi-testkit`'s bench reports: hand-rolled
//! compact JSON built from `format!` with `{:?}` string escaping, a
//! trailing newline, and files written under `results/` at the
//! workspace root. Every value is an integer or a string and every map
//! is a `BTreeMap`, so the same recorded state always serializes to the
//! same bytes.
//!
//! Schema (version 3 — v3 added the `alerts` timeline of SLO burn-rate
//! transitions recorded by [`crate::SloEngine`]; v2 added the derived
//! `p50`/`p95`/`p99` summary fields on histogram entries, computed from
//! the log buckets by [`Histogram::percentile`]):
//!
//! ```json
//! {
//!   "schema_version": 3,
//!   "label": "chaos",
//!   "seed": 7,
//!   "counters": {"gcs.view.installed": 12, ...},
//!   "gauges": {"core.cluster.nodes_running": 5, ...},
//!   "histograms": {
//!     "san.retry.backoff_us": {
//!       "count": 3, "sum": 9500, "min": 500, "max": 8000,
//!       "p50": 4096, "p95": 4096, "p99": 4096,
//!       "buckets": [[10, 2], [13, 1]]
//!     }
//!   },
//!   "spans": [
//!     {"id": 1, "name": "core.migration.handoff/acme-web",
//!      "start_us": 100, "end_us": 4200, "parent": null}
//!   ],
//!   "open_spans": [ ...same shape, no "end_us"... ],
//!   "alerts": [
//!     {"slo": "std-latency", "at_us": 8750000, "state": "firing",
//!      "window": "fast", "burn_x100": 4100}
//!   ],
//!   "dropped_spans": 0
//! }
//! ```

use crate::slo::AlertEvent;
use crate::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Current snapshot schema version.
pub const SCHEMA_VERSION: u64 = 3;

/// A completed span: `[start_us, end_us]` in simulated microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedSpan {
    /// Registry-unique span id (ids start at 1).
    pub id: u64,
    /// Span name, `crate.subsystem.phase` style.
    pub name: String,
    /// Simulated time the span was entered, in microseconds.
    pub start_us: u64,
    /// Simulated time the span was exited, in microseconds.
    pub end_us: u64,
    /// Id of the enclosing span open at enter time, if any.
    pub parent: Option<u64>,
}

impl ClosedSpan {
    /// Span duration in simulated microseconds (0 if clocks ran
    /// backwards, which the sim never does).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// A span still open at snapshot time (unbalanced enter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenSpan {
    /// Registry-unique span id.
    pub id: u64,
    /// Span name.
    pub name: String,
    /// Simulated enter time in microseconds.
    pub start_us: u64,
    /// Id of the enclosing span open at enter time, if any.
    pub parent: Option<u64>,
}

/// A point-in-time copy of a telemetry registry, serializable to
/// deterministic JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Snapshot label; also names the output file `telemetry_<label>.json`.
    pub label: String,
    /// Seed of the run that produced this snapshot.
    pub seed: u64,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Log-bucketed histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Closed spans, oldest first (bounded by the ring capacity).
    pub spans: Vec<ClosedSpan>,
    /// Spans still open when the snapshot was taken.
    pub open_spans: Vec<OpenSpan>,
    /// SLO alert transitions, oldest first (the v3 alert timeline).
    pub alerts: Vec<AlertEvent>,
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_owned(),
    }
}

impl Snapshot {
    /// Spans dropped from the ring buffer before this snapshot (the
    /// `telemetry.dropped_spans` counter).
    pub fn dropped_spans(&self) -> u64 {
        self.counters
            .get(crate::DROPPED_SPANS)
            .copied()
            .unwrap_or(0)
    }

    /// Serialize to compact, byte-deterministic JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"schema_version\":{},\"label\":{:?},\"seed\":{}",
            self.schema_version, self.label, self.seed
        );
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let _ = write!(out, "{}{:?}:{}", if i > 0 { "," } else { "" }, k, v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let _ = write!(out, "{}{:?}:{}", if i > 0 { "," } else { "" }, k, v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(b, c)| format!("[{b},{c}]"))
                .collect();
            let _ = write!(
                out,
                "{}{:?}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                if i > 0 { "," } else { "" },
                k,
                h.count(),
                h.sum(),
                opt_u64(h.min()),
                opt_u64(h.max()),
                opt_u64(h.percentile(50)),
                opt_u64(h.percentile(95)),
                opt_u64(h.percentile(99)),
                buckets.join(",")
            );
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"id\":{},\"name\":{:?},\"start_us\":{},\"end_us\":{},\"parent\":{}}}",
                if i > 0 { "," } else { "" },
                s.id,
                s.name,
                s.start_us,
                s.end_us,
                opt_u64(s.parent)
            );
        }
        out.push_str("],\"open_spans\":[");
        for (i, s) in self.open_spans.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"id\":{},\"name\":{:?},\"start_us\":{},\"parent\":{}}}",
                if i > 0 { "," } else { "" },
                s.id,
                s.name,
                s.start_us,
                opt_u64(s.parent)
            );
        }
        out.push_str("],\"alerts\":[");
        for (i, a) in self.alerts.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"slo\":{:?},\"at_us\":{},\"state\":{:?},\"window\":{:?},\"burn_x100\":{}}}",
                if i > 0 { "," } else { "" },
                a.slo,
                a.at_us,
                if a.firing { "firing" } else { "resolved" },
                a.window.as_str(),
                a.burn_x100
            );
        }
        let _ = writeln!(out, "],\"dropped_spans\":{}}}", self.dropped_spans());
        out
    }

    /// Write `telemetry_<label>.json` into `dir` (created if needed).
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("telemetry_{}.json", self.label));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample() -> Snapshot {
        let t = Telemetry::new();
        t.incr("a.b.count");
        t.add("a.b.count", 2);
        t.gauge_set("a.b.level", -4);
        t.record("a.b.lat_us", 0);
        t.record("a.b.lat_us", 700);
        let s = t.span_enter("a.phase", 10);
        t.span_exit(s, 25);
        t.span_enter("a.open", 30);
        t.record_alert(AlertEvent {
            slo: "std-latency".to_owned(),
            at_us: 40,
            firing: true,
            window: crate::AlertWindow::Fast,
            burn_x100: 4100,
        });
        t.snapshot("unit", 42)
    }

    #[test]
    fn json_is_stable_across_identical_recordings() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn json_contains_required_fields() {
        let j = sample().to_json();
        assert!(j.starts_with("{\"schema_version\":3,"));
        assert!(j.contains("\"label\":\"unit\""));
        assert!(j.contains("\"seed\":42"));
        assert!(j.contains("\"a.b.count\":3"));
        assert!(j.contains("\"a.b.level\":-4"));
        // Samples 0 and 700: p50 = bucket [0,1) lower bound 0; p95/p99
        // fall in 700's bucket [512,1024), clamped to max 700.
        assert!(j.contains(
            "\"count\":2,\"sum\":700,\"min\":0,\"max\":700,\"p50\":0,\"p95\":512,\"p99\":512"
        ));
        assert!(j.contains("\"name\":\"a.phase\",\"start_us\":10,\"end_us\":25"));
        assert!(j.contains("\"open_spans\":[{\"id\":"));
        assert!(j.contains(
            "\"alerts\":[{\"slo\":\"std-latency\",\"at_us\":40,\"state\":\"firing\",\
             \"window\":\"fast\",\"burn_x100\":4100}]"
        ));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn write_to_names_file_after_label() {
        let dir = std::env::temp_dir().join(format!("dosgi-telemetry-test-{}", std::process::id()));
        let path = sample().write_to(&dir).expect("write snapshot");
        assert!(path.ends_with("telemetry_unit.json"));
        let bytes = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(bytes, sample().to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
