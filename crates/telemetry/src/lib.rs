//! # dosgi-telemetry — cluster-wide metrics, spans, and snapshots
//!
//! A zero-dependency observability layer for the dosgi stack:
//!
//! * a registry of named **counters** (`u64`, monotonic), **gauges**
//!   (`i64`, last-write-wins), and log-bucketed **histograms**
//!   ([`Histogram`]);
//! * **sim-time span tracing** — [`Telemetry::span_enter`] /
//!   [`Telemetry::span_exit`] with parent nesting derived from the open
//!   span stack, closed spans kept in a bounded ring buffer (overflow
//!   drops the oldest span and increments `telemetry.dropped_spans`);
//! * a stable, schema-versioned **JSON snapshot** writer ([`Snapshot`])
//!   whose output is byte-deterministic: `BTreeMap` key order, integer
//!   arithmetic only, and simulated timestamps only.
//!
//! ## Determinism contract
//!
//! Telemetry is *passive*: it never reads the wall clock, never consumes
//! randomness, and never influences control flow in the instrumented
//! code. All timestamps fed to spans are simulated-time microseconds
//! supplied by the caller (`SimTime::as_micros()`), so a seeded replay
//! produces a byte-identical snapshot and — because nothing observable
//! changes — a byte-identical chaos fingerprint whether telemetry is
//! enabled or disabled.
//!
//! ## Naming convention
//!
//! Metrics are named `crate.subsystem.metric`, e.g. `gcs.view.installed`,
//! `san.retry.backoff_us`, `core.registry.ops`, `ipvs.routed.n3`.
//!
//! ## Handles
//!
//! [`Telemetry`] is a cheap-clone handle. [`Telemetry::disabled`] (also
//! the `Default`) is a no-op: every operation returns immediately, so
//! library types can hold one unconditionally. [`Telemetry::new`]
//! creates an enabled registry; clones share it, which is how one
//! cluster-wide registry is threaded through nodes, stores, frameworks,
//! and directors.

mod hist;
pub mod series;
pub mod slo;
pub mod snapshot;
pub mod trace;

pub use hist::{bucket_bounds, bucket_index, Histogram, BUCKETS};
pub use series::{
    ScrapeConfig, Series, SeriesKind, SeriesPoint, SeriesScraper, DEFAULT_CADENCE_US,
    DEFAULT_SERIES_CAPACITY, DROPPED_POINTS,
};
pub use slo::{derive_health, AlertEvent, AlertWindow, HealthState, SloEngine, SloSpec};
pub use snapshot::{ClosedSpan, OpenSpan, Snapshot, SCHEMA_VERSION};
pub use trace::{
    FlightRecorder, TraceContext, TraceEvent, TraceLog, TraceRef, DEFAULT_EVENT_CAPACITY,
    TRACE_SCHEMA_VERSION,
};

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Counter name incremented when the closed-span ring buffer overflows.
pub const DROPPED_SPANS: &str = "telemetry.dropped_spans";

/// Counter name incremented when the alert timeline overflows.
pub const DROPPED_ALERTS: &str = "telemetry.dropped_alerts";

/// Default capacity of the closed-span ring buffer.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

/// Capacity of the alert timeline (alert transitions are sparse; a run
/// that overflows this is itself an alerting bug worth seeing).
pub const ALERT_CAPACITY: usize = 1024;

/// Identifier returned by [`Telemetry::span_enter`].
///
/// `SpanId(0)` is the reserved *null* id handed out by disabled handles;
/// enabled registries start numbering at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id (never matches a live span).
    pub const NONE: SpanId = SpanId(0);
}

struct LiveSpan {
    id: u64,
    name: String,
    start_us: u64,
    parent: Option<u64>,
}

struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    next_span: u64,
    open: Vec<LiveSpan>,
    closed: VecDeque<ClosedSpan>,
    span_capacity: usize,
    alerts: VecDeque<AlertEvent>,
}

impl Inner {
    fn new(span_capacity: usize) -> Self {
        Inner {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            next_span: 1,
            open: Vec::new(),
            closed: VecDeque::new(),
            span_capacity,
            alerts: VecDeque::new(),
        }
    }
}

/// Cheap-clone handle onto a shared telemetry registry (or a no-op).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// An enabled registry with the default span-ring capacity.
    pub fn new() -> Self {
        Self::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled registry keeping at most `capacity` closed spans.
    pub fn with_span_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Inner::new(capacity.max(1))))),
        }
    }

    /// The no-op handle: every operation returns immediately.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle points at a live registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, Inner>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().expect("telemetry poisoned"))
    }

    /// Increment counter `name` by 1.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `n`.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(mut g) = self.lock() {
            *g.counters.entry(name.to_owned()).or_insert(0) += n;
        }
    }

    /// Read counter `name` (0 when absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock()
            .and_then(|g| g.counters.get(name).copied())
            .unwrap_or(0)
    }

    /// Set gauge `name` to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, v: i64) {
        if let Some(mut g) = self.lock() {
            g.gauges.insert(name.to_owned(), v);
        }
    }

    /// Read gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.lock().and_then(|g| g.gauges.get(name).copied())
    }

    /// Record sample `v` into histogram `name`.
    pub fn record(&self, name: &str, v: u64) {
        if let Some(mut g) = self.lock() {
            g.histograms.entry(name.to_owned()).or_default().record(v);
        }
    }

    /// Copy out histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().and_then(|g| g.histograms.get(name).cloned())
    }

    /// Read the whole registry under one lock — counters, gauges and
    /// histograms by reference, no clones. This is the
    /// [`SeriesScraper`]'s bulk read path; `f` must not call back into
    /// this handle (the lock is held). Returns `None` on a disabled
    /// handle (the closure is not called).
    pub fn read<R>(
        &self,
        f: impl FnOnce(
            &BTreeMap<String, u64>,
            &BTreeMap<String, i64>,
            &BTreeMap<String, Histogram>,
        ) -> R,
    ) -> Option<R> {
        self.lock()
            .map(|g| f(&g.counters, &g.gauges, &g.histograms))
    }

    /// Append an alert transition to the timeline. Overflow beyond
    /// [`ALERT_CAPACITY`] drops the oldest event and increments
    /// `telemetry.dropped_alerts`.
    pub fn record_alert(&self, event: AlertEvent) {
        if let Some(mut g) = self.lock() {
            if g.alerts.len() >= ALERT_CAPACITY {
                g.alerts.pop_front();
                *g.counters.entry(DROPPED_ALERTS.to_owned()).or_insert(0) += 1;
            }
            g.alerts.push_back(event);
        }
    }

    /// Copy out the alert timeline, oldest first.
    pub fn alerts(&self) -> Vec<AlertEvent> {
        self.lock()
            .map(|g| g.alerts.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Open a span named `name` at simulated time `now_us`.
    ///
    /// The span's parent is the most recently opened still-open span.
    /// Disabled handles return [`SpanId::NONE`].
    pub fn span_enter(&self, name: &str, now_us: u64) -> SpanId {
        let Some(mut g) = self.lock() else {
            return SpanId::NONE;
        };
        let id = g.next_span;
        g.next_span += 1;
        let parent = g.open.last().map(|s| s.id);
        g.open.push(LiveSpan {
            id,
            name: name.to_owned(),
            start_us: now_us,
            parent,
        });
        SpanId(id)
    }

    /// Close the span `id` at simulated time `now_us`.
    ///
    /// Returns `false` (and records nothing) when `id` does not name an
    /// open span — an exit-without-enter is rejected, not invented. On a
    /// disabled handle this is an accepted no-op (`true`), matching the
    /// [`SpanId::NONE`] its `span_enter` handed out.
    pub fn span_exit(&self, id: SpanId, now_us: u64) -> bool {
        let Some(mut g) = self.lock() else {
            return true;
        };
        let Some(pos) = g.open.iter().rposition(|s| s.id == id.0) else {
            *g.counters
                .entry("telemetry.rejected_span_exits".to_owned())
                .or_insert(0) += 1;
            return false;
        };
        let live = g.open.remove(pos);
        if g.closed.len() >= g.span_capacity {
            g.closed.pop_front();
            *g.counters.entry(DROPPED_SPANS.to_owned()).or_insert(0) += 1;
        }
        g.closed.push_back(ClosedSpan {
            id: live.id,
            name: live.name,
            start_us: live.start_us,
            end_us: now_us,
            parent: live.parent,
        });
        true
    }

    /// Number of currently open spans.
    pub fn open_spans(&self) -> usize {
        self.lock().map(|g| g.open.len()).unwrap_or(0)
    }

    /// Materialize a deterministic snapshot of everything recorded so
    /// far. Open (unbalanced) spans are reported as open, not silently
    /// closed. The registry keeps accumulating afterwards.
    pub fn snapshot(&self, label: &str, seed: u64) -> Snapshot {
        let mut snap = Snapshot {
            schema_version: snapshot::SCHEMA_VERSION,
            label: label.to_owned(),
            seed,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: Vec::new(),
            open_spans: Vec::new(),
            alerts: Vec::new(),
        };
        if let Some(g) = self.lock() {
            snap.counters = g.counters.clone();
            snap.gauges = g.gauges.clone();
            snap.histograms = g.histograms.clone();
            snap.alerts = g.alerts.iter().cloned().collect();
            snap.spans = g.closed.iter().cloned().collect();
            snap.open_spans = g
                .open
                .iter()
                .map(|s| OpenSpan {
                    id: s.id,
                    name: s.name.clone(),
                    start_us: s.start_us,
                    parent: s.parent,
                })
                .collect();
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.incr("a.b.c");
        t.gauge_set("g", 7);
        t.record("h", 3);
        assert_eq!(t.counter("a.b.c"), 0);
        assert_eq!(t.gauge("g"), None);
        assert!(t.histogram("h").is_none());
        let id = t.span_enter("s", 10);
        assert_eq!(id, SpanId::NONE);
        assert!(t.span_exit(id, 20));
        let snap = t.snapshot("off", 1);
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::new();
        let u = t.clone();
        t.incr("x");
        u.incr("x");
        assert_eq!(t.counter("x"), 2);
    }

    #[test]
    fn span_nesting_assigns_parents() {
        let t = Telemetry::new();
        let outer = t.span_enter("outer", 0);
        let inner = t.span_enter("inner", 5);
        assert!(t.span_exit(inner, 9));
        assert!(t.span_exit(outer, 20));
        let snap = t.snapshot("s", 0);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "inner");
        assert_eq!(snap.spans[0].parent, Some(outer.0));
        assert_eq!(snap.spans[1].name, "outer");
        assert_eq!(snap.spans[1].parent, None);
    }

    #[test]
    fn exit_without_enter_is_rejected() {
        let t = Telemetry::new();
        assert!(!t.span_exit(SpanId(999), 5));
        assert!(!t.span_exit(SpanId::NONE, 5));
        let real = t.span_enter("real", 0);
        assert!(t.span_exit(real, 1));
        // Double-exit of the same id is also an exit-without-enter.
        assert!(!t.span_exit(real, 2));
        assert_eq!(t.counter("telemetry.rejected_span_exits"), 3);
        assert_eq!(t.snapshot("s", 0).spans.len(), 1);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let t = Telemetry::with_span_capacity(2);
        for i in 0..4u64 {
            let id = t.span_enter(&format!("s{i}"), i * 10);
            assert!(t.span_exit(id, i * 10 + 1));
        }
        let snap = t.snapshot("s", 0);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "s2");
        assert_eq!(snap.spans[1].name, "s3");
        assert_eq!(snap.counters.get(DROPPED_SPANS), Some(&2));
    }

    #[test]
    fn unbalanced_spans_reported_as_open() {
        let t = Telemetry::new();
        let a = t.span_enter("left-open", 3);
        let b = t.span_enter("closed", 4);
        assert!(t.span_exit(b, 6));
        let snap = t.snapshot("s", 0);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.open_spans.len(), 1);
        assert_eq!(snap.open_spans[0].name, "left-open");
        assert_eq!(snap.open_spans[0].id, a.0);
        assert_eq!(snap.open_spans[0].start_us, 3);
        assert_eq!(t.open_spans(), 1);
    }

    #[test]
    fn exiting_parent_before_child_keeps_child_recorded() {
        let t = Telemetry::new();
        let outer = t.span_enter("outer", 0);
        let inner = t.span_enter("inner", 1);
        // Unbalanced: outer exits first; inner stays open with its
        // parent reference intact.
        assert!(t.span_exit(outer, 2));
        assert!(t.span_exit(inner, 3));
        let snap = t.snapshot("s", 0);
        assert_eq!(snap.spans[0].name, "outer");
        assert_eq!(snap.spans[1].name, "inner");
        assert_eq!(snap.spans[1].parent, Some(outer.0));
    }
}
