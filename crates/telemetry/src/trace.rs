//! Distributed causal tracing: per-node flight recorders, wire-carried
//! trace contexts, and a deterministic cluster-wide trace log.
//!
//! Node-local spans ([`crate::Telemetry::span_enter`]) cannot describe a
//! protocol that runs across nodes: a migration is released by one node,
//! ordered by the sequencer, and adopted by another. This module links
//! those pieces into one tree:
//!
//! * a [`TraceContext`] — trace id, parent span id, and a **Lamport
//!   stamp** — minted at protocol entry points and carried inside GCS
//!   wire messages, so a span opened on the receiving node records which
//!   logical instant of the sender it causally follows;
//! * a bounded per-node [`FlightRecorder`] of causally-stamped
//!   [`TraceEvent`]s (the black box: survives into the snapshot, drops
//!   the oldest event on overflow and counts the loss);
//! * a [`TraceLog`] that merges every node's recorder into one
//!   deterministic event list and exports it as Chrome trace-event JSON
//!   (loadable in `chrome://tracing` / Perfetto).
//!
//! ## Lamport stamping rules
//!
//! Each enabled recorder keeps one logical clock `C`:
//!
//! 1. opening a local span (root or local child) ticks `C += 1`; the
//!    new value is the span's `lamport_start`;
//! 2. exporting a context ([`FlightRecorder::context`]) is a *send*:
//!    `C += 1`, and the new value rides in the context;
//! 3. importing a context ([`FlightRecorder::child`] /
//!    [`FlightRecorder::observe`]) is a *receive*:
//!    `C = max(C, ctx.lamport) + 1`;
//! 4. closing a span ticks `C += 1` into its `lamport_end`.
//!
//! Therefore `parent.lamport_start < ctx.lamport < child.lamport_start`
//! holds for every cross-node edge, which is exactly what the
//! `trace_check` analyzer verifies (happens-before is respected, no
//! span was closed on a node that never saw its parent's stamp).
//!
//! ## Determinism & passivity
//!
//! Like the rest of `dosgi-telemetry`, recorders are strictly passive:
//! timestamps are caller-supplied sim-time micros, no wall clock, no
//! randomness, no control-flow influence. Span ids are allocated as
//! `(node + 1) << 40 | seq`, so they are unique cluster-wide, ordered
//! per node, and a pure function of the (seeded) run — the merged log
//! serializes to byte-identical JSON on every replay. Ids stay below
//! 2^53 for any realistic node count, so strict JSON readers that use
//! doubles still round-trip them exactly.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Schema version stamped into exported trace files (`metadata.schema`).
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Default capacity of a flight recorder's event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

const NODE_SHIFT: u32 = 40;

/// A causal reference carried inside wire messages.
///
/// `lamport` is the sender's logical clock at context-export time; the
/// receiver folds it into its own clock before opening the child span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceContext {
    /// Id of the trace (== span id of its root span).
    pub trace_id: u64,
    /// Span the receiver should attach children to.
    pub parent_span: u64,
    /// Sender's Lamport stamp at export time (always > 0).
    pub lamport: u64,
}

/// Handle onto a span opened in a [`FlightRecorder`].
///
/// `TraceRef::NONE` is the inert null handle (handed out by disabled
/// recorders); every operation on it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceRef {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// The span's cluster-unique id.
    pub span_id: u64,
}

impl TraceRef {
    /// The null reference: never names a live span.
    pub const NONE: TraceRef = TraceRef {
        trace_id: 0,
        span_id: 0,
    };

    /// Whether this reference names a real span.
    pub fn is_some(&self) -> bool {
        self.span_id != 0
    }
}

/// One causally-stamped protocol event (a closed — or, at export time,
/// still-open — span on one node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Trace this event belongs to.
    pub trace_id: u64,
    /// Cluster-unique span id (`(node + 1) << 40 | seq`).
    pub span_id: u64,
    /// Parent span id; `0` for a trace root.
    pub parent_span: u64,
    /// Node the span was recorded on.
    pub node: u64,
    /// Event name, `crate.protocol.phase` style.
    pub name: String,
    /// Sim-time open instant, microseconds.
    pub start_us: u64,
    /// Sim-time close instant (== `start_us` when still open).
    pub end_us: u64,
    /// Recorder clock right after opening the span.
    pub lamport_start: u64,
    /// Recorder clock right after closing (== `lamport_start` if open).
    pub lamport_end: u64,
    /// The Lamport stamp of the imported [`TraceContext`] this span was
    /// created from, or `0` for roots and node-local children. Non-zero
    /// proves the recording node *saw* its remote parent.
    pub ctx_lamport: u64,
    /// True when the span was still open at export time (crash or
    /// in-flight protocol when the run ended).
    pub open: bool,
}

impl TraceEvent {
    /// The node a span id was allocated on.
    pub fn node_of(span_id: u64) -> u64 {
        (span_id >> NODE_SHIFT).saturating_sub(1)
    }

    /// Event duration in simulated microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

struct OpenSpanRec {
    trace_id: u64,
    parent_span: u64,
    name: String,
    start_us: u64,
    lamport_start: u64,
    ctx_lamport: u64,
}

struct RecInner {
    node: u64,
    clock: u64,
    next_seq: u64,
    open: BTreeMap<u64, OpenSpanRec>,
    closed: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    rejected: u64,
}

impl RecInner {
    fn alloc_span(&mut self) -> u64 {
        let id = ((self.node + 1) << NODE_SHIFT) | self.next_seq;
        self.next_seq += 1;
        id
    }
}

/// Cheap-clone per-node flight recorder (or a no-op when disabled).
///
/// Mirrors the [`crate::Telemetry`] handle discipline: library types
/// hold one unconditionally, [`FlightRecorder::disabled`] (the
/// `Default`) makes every operation free, clones share the ring.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<RecInner>>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl FlightRecorder {
    /// An enabled recorder for `node` with the default ring capacity.
    pub fn new(node: u64) -> Self {
        Self::with_capacity(node, DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled recorder keeping at most `capacity` closed events.
    pub fn with_capacity(node: u64, capacity: usize) -> Self {
        FlightRecorder {
            inner: Some(Arc::new(Mutex::new(RecInner {
                node,
                clock: 0,
                next_seq: 1,
                open: BTreeMap::new(),
                closed: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
                rejected: 0,
            }))),
        }
    }

    /// The no-op handle.
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// Whether this handle points at a live ring.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, RecInner>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().expect("flight recorder poisoned"))
    }

    /// The node this recorder stamps events with.
    pub fn node(&self) -> Option<u64> {
        self.lock().map(|g| g.node)
    }

    /// Current Lamport clock value (0 when disabled).
    pub fn clock(&self) -> u64 {
        self.lock().map(|g| g.clock).unwrap_or(0)
    }

    /// Open a new root span: starts a fresh trace whose id is the root's
    /// own span id.
    pub fn root(&self, name: &str, now_us: u64) -> TraceRef {
        let Some(mut g) = self.lock() else {
            return TraceRef::NONE;
        };
        g.clock += 1;
        let id = g.alloc_span();
        let lamport_start = g.clock;
        g.open.insert(
            id,
            OpenSpanRec {
                trace_id: id,
                parent_span: 0,
                name: name.to_owned(),
                start_us: now_us,
                lamport_start,
                ctx_lamport: 0,
            },
        );
        TraceRef {
            trace_id: id,
            span_id: id,
        }
    }

    /// Open a child span from an imported wire context (a *receive*:
    /// the local clock is folded with the context's stamp first).
    pub fn child(&self, ctx: TraceContext, name: &str, now_us: u64) -> TraceRef {
        let Some(mut g) = self.lock() else {
            return TraceRef::NONE;
        };
        g.clock = g.clock.max(ctx.lamport) + 1;
        let id = g.alloc_span();
        let lamport_start = g.clock;
        g.open.insert(
            id,
            OpenSpanRec {
                trace_id: ctx.trace_id,
                parent_span: ctx.parent_span,
                name: name.to_owned(),
                start_us: now_us,
                lamport_start,
                ctx_lamport: ctx.lamport,
            },
        );
        TraceRef {
            trace_id: ctx.trace_id,
            span_id: id,
        }
    }

    /// Open a node-local child of a span this recorder owns.
    pub fn child_of(&self, parent: TraceRef, name: &str, now_us: u64) -> TraceRef {
        if !parent.is_some() {
            return TraceRef::NONE;
        }
        let Some(mut g) = self.lock() else {
            return TraceRef::NONE;
        };
        g.clock += 1;
        let id = g.alloc_span();
        let lamport_start = g.clock;
        g.open.insert(
            id,
            OpenSpanRec {
                trace_id: parent.trace_id,
                parent_span: parent.span_id,
                name: name.to_owned(),
                start_us: now_us,
                lamport_start,
                ctx_lamport: 0,
            },
        );
        TraceRef {
            trace_id: parent.trace_id,
            span_id: id,
        }
    }

    /// Export a wire context under `of` (a *send*: ticks the clock).
    ///
    /// Returns `None` for [`TraceRef::NONE`] or a disabled recorder, so
    /// untraced flows stay untraced end to end.
    pub fn context(&self, of: TraceRef) -> Option<TraceContext> {
        if !of.is_some() {
            return None;
        }
        let mut g = self.lock()?;
        g.clock += 1;
        Some(TraceContext {
            trace_id: of.trace_id,
            parent_span: of.span_id,
            lamport: g.clock,
        })
    }

    /// Fold a received context's stamp into the local clock without
    /// opening a span (every traced delivery must call this so later
    /// local spans causally follow it).
    pub fn observe(&self, ctx: TraceContext) {
        if let Some(mut g) = self.lock() {
            g.clock = g.clock.max(ctx.lamport) + 1;
        }
    }

    /// Record a zero-duration child event under a local parent span.
    pub fn instant(&self, parent: TraceRef, name: &str, now_us: u64) -> bool {
        let r = self.child_of(parent, name, now_us);
        r.is_some() && self.end(r, now_us)
    }

    /// Record a zero-duration child event from an imported context.
    pub fn instant_for(&self, ctx: TraceContext, name: &str, now_us: u64) -> bool {
        let r = self.child(ctx, name, now_us);
        r.is_some() && self.end(r, now_us)
    }

    /// Close span `r` at sim-time `now_us`.
    ///
    /// Unknown / double closes are rejected and counted; closing
    /// [`TraceRef::NONE`] on any handle (or anything on a disabled one)
    /// is an accepted no-op.
    pub fn end(&self, r: TraceRef, now_us: u64) -> bool {
        let Some(mut g) = self.lock() else {
            return true;
        };
        if !r.is_some() {
            return true;
        }
        let Some(span) = g.open.remove(&r.span_id) else {
            g.rejected += 1;
            return false;
        };
        g.clock += 1;
        let ev = TraceEvent {
            trace_id: span.trace_id,
            span_id: r.span_id,
            parent_span: span.parent_span,
            node: g.node,
            name: span.name,
            start_us: span.start_us,
            end_us: now_us,
            lamport_start: span.lamport_start,
            lamport_end: g.clock,
            ctx_lamport: span.ctx_lamport,
            open: false,
        };
        if g.closed.len() >= g.capacity {
            g.closed.pop_front();
            g.dropped += 1;
        }
        g.closed.push_back(ev);
        true
    }

    /// Closed events, oldest first (bounded by the ring capacity).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock()
            .map(|g| g.closed.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Snapshot of spans still open (crashed or in-flight protocol),
    /// exported with `open = true` and `end_us == start_us`.
    pub fn open_events(&self) -> Vec<TraceEvent> {
        self.lock()
            .map(|g| {
                g.open
                    .iter()
                    .map(|(id, s)| TraceEvent {
                        trace_id: s.trace_id,
                        span_id: *id,
                        parent_span: s.parent_span,
                        node: g.node,
                        name: s.name.clone(),
                        start_us: s.start_us,
                        end_us: s.start_us,
                        lamport_start: s.lamport_start,
                        lamport_end: s.lamport_start,
                        ctx_lamport: s.ctx_lamport,
                        open: true,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Events dropped from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.lock().map(|g| g.dropped).unwrap_or(0)
    }

    /// Unknown / double closes rejected so far.
    pub fn rejected(&self) -> u64 {
        self.lock().map(|g| g.rejected).unwrap_or(0)
    }
}

/// A cluster-wide merge of per-node flight recorders, exportable as
/// Chrome trace-event JSON.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// All events, sorted by `(trace_id, lamport_start, span_id)` — a
    /// deterministic causal order (Lamport ties are broken by span id,
    /// which encodes the node).
    pub events: Vec<TraceEvent>,
    /// Total events dropped across all merged recorders.
    pub dropped: u64,
    /// Total rejected closes across all merged recorders.
    pub rejected: u64,
}

impl TraceLog {
    /// Merge recorders (closed *and* still-open events) into one log.
    pub fn merge<'a, I: IntoIterator<Item = &'a FlightRecorder>>(recorders: I) -> TraceLog {
        let mut log = TraceLog::default();
        for r in recorders {
            log.events.extend(r.events());
            log.events.extend(r.open_events());
            log.dropped += r.dropped();
            log.rejected += r.rejected();
        }
        log.events
            .sort_by_key(|e| (e.trace_id, e.lamport_start, e.span_id));
        log
    }

    /// Serialize as Chrome trace-event JSON (complete `"ph":"X"` events,
    /// `ts`/`dur` in microseconds, `pid` = node). Causal metadata rides
    /// in `args`, which `chrome://tracing`/Perfetto display but ignore.
    /// Byte-deterministic: events are pre-sorted and every value is an
    /// integer or a string.
    pub fn to_chrome_json(&self, label: &str, seed: u64) -> String {
        // Dense per-trace track ids so Perfetto draws each trace on its
        // own row; ordering follows first appearance in the sorted log.
        let mut tids: BTreeMap<u64, u64> = BTreeMap::new();
        for e in &self.events {
            let next = tids.len() as u64 + 1;
            tids.entry(e.trace_id).or_insert(next);
        }
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"name\":{:?},\"cat\":\"dosgi\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":{},\"span_id\":{},\"parent_span\":{},\"lamport_start\":{},\"lamport_end\":{},\"ctx_lamport\":{},\"open\":{}}}}}",
                if i > 0 { "," } else { "" },
                e.name,
                e.start_us,
                e.duration_us(),
                e.node,
                tids[&e.trace_id],
                e.trace_id,
                e.span_id,
                e.parent_span,
                e.lamport_start,
                e.lamport_end,
                e.ctx_lamport,
                u64::from(e.open),
            );
        }
        let _ = writeln!(
            out,
            "],\"metadata\":{{\"schema\":{},\"label\":{:?},\"seed\":{},\"events\":{},\"dropped\":{},\"rejected\":{}}}}}",
            TRACE_SCHEMA_VERSION,
            label,
            seed,
            self.events.len(),
            self.dropped,
            self.rejected
        );
        out
    }

    /// Write `trace_<label>.json` into `dir` (created if needed).
    pub fn write_to(&self, dir: &Path, label: &str, seed: u64) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("trace_{label}.json"));
        std::fs::write(&path, self.to_chrome_json(label, seed))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = FlightRecorder::disabled();
        let root = r.root("m", 0);
        assert_eq!(root, TraceRef::NONE);
        assert!(r.context(root).is_none());
        assert!(r.end(root, 1));
        assert_eq!(r.clock(), 0);
        assert!(r.events().is_empty());
        assert!(r.open_events().is_empty());
    }

    #[test]
    fn span_ids_encode_the_node() {
        let r = FlightRecorder::new(3);
        let a = r.root("a", 0);
        let b = r.root("b", 0);
        assert_eq!(TraceEvent::node_of(a.span_id), 3);
        assert_eq!(TraceEvent::node_of(b.span_id), 3);
        assert_ne!(a.span_id, b.span_id);
        let other = FlightRecorder::new(4);
        let c = other.root("c", 0);
        assert_ne!(a.span_id, c.span_id);
    }

    #[test]
    fn lamport_stamps_order_cross_node_edges() {
        let sender = FlightRecorder::new(0);
        let receiver = FlightRecorder::new(1);
        let root = sender.root("migrate", 100);
        let ctx = sender.context(root).expect("ctx");
        let child = receiver.child(ctx, "adopt", 200);
        assert!(receiver.end(child, 250));
        assert!(sender.end(root, 300));
        let s = &sender.events()[0];
        let c = &receiver.events()[0];
        assert_eq!(c.trace_id, s.span_id);
        assert_eq!(c.parent_span, s.span_id);
        assert_eq!(c.ctx_lamport, ctx.lamport);
        assert!(s.lamport_start < ctx.lamport);
        assert!(ctx.lamport < c.lamport_start);
    }

    #[test]
    fn observe_advances_the_clock() {
        let r = FlightRecorder::new(2);
        r.observe(TraceContext {
            trace_id: 9,
            parent_span: 9,
            lamport: 50,
        });
        assert_eq!(r.clock(), 51);
        // A later local root causally follows the observed stamp.
        let root = r.root("later", 0);
        assert!(root.is_some());
        assert_eq!(r.clock(), 52);
    }

    #[test]
    fn unknown_and_double_end_are_rejected() {
        let r = FlightRecorder::new(0);
        let root = r.root("a", 0);
        assert!(r.end(root, 1));
        assert!(!r.end(root, 2));
        assert!(!r.end(
            TraceRef {
                trace_id: 1,
                span_id: 77,
            },
            3
        ));
        assert_eq!(r.rejected(), 2);
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let r = FlightRecorder::with_capacity(0, 2);
        for i in 0..4u64 {
            let s = r.root(&format!("s{i}"), i * 10);
            assert!(r.end(s, i * 10 + 1));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "s2");
        assert_eq!(evs[1].name, "s3");
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn open_spans_survive_into_the_export() {
        let r = FlightRecorder::new(0);
        let root = r.root("crashed-mid-flight", 40);
        let open = r.open_events();
        assert_eq!(open.len(), 1);
        assert!(open[0].open);
        assert_eq!(open[0].span_id, root.span_id);
        assert_eq!(open[0].end_us, open[0].start_us);
        let log = TraceLog::merge([&r]);
        assert_eq!(log.events.len(), 1);
        assert!(log.to_chrome_json("t", 0).contains("\"open\":1"));
    }

    #[test]
    fn merged_log_is_sorted_and_deterministic() {
        let build = || {
            let a = FlightRecorder::new(0);
            let b = FlightRecorder::new(1);
            let root = a.root("migrate", 0);
            let ctx = a.context(root).unwrap();
            let adopt = b.child(ctx, "adopt", 5);
            b.end(adopt, 9);
            a.end(root, 12);
            let other = b.root("redirect", 20);
            b.end(other, 21);
            TraceLog::merge([&a, &b]).to_chrome_json("unit", 7)
        };
        let j = build();
        assert_eq!(j, build());
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"metadata\":{\"schema\":1,\"label\":\"unit\",\"seed\":7"));
        assert!(j.ends_with("}\n"));
        // The root sorts before its child (lower Lamport stamp).
        let migrate = j.find("\"name\":\"migrate\"").unwrap();
        let adopt = j.find("\"name\":\"adopt\"").unwrap();
        assert!(migrate < adopt);
    }

    #[test]
    fn instant_events_are_zero_duration_children() {
        let r = FlightRecorder::new(0);
        let root = r.root("failover", 0);
        assert!(r.instant(root, "redirect", 7));
        r.end(root, 9);
        let evs = r.events();
        assert_eq!(evs[0].name, "redirect");
        assert_eq!(evs[0].duration_us(), 0);
        assert_eq!(evs[0].parent_span, root.span_id);
    }

    #[test]
    fn write_to_names_file_after_label() {
        let dir = std::env::temp_dir().join(format!("dosgi-trace-test-{}", std::process::id()));
        let r = FlightRecorder::new(0);
        let s = r.root("x", 0);
        r.end(s, 1);
        let log = TraceLog::merge([&r]);
        let path = log.write_to(&dir, "unit", 3).expect("write trace");
        assert!(path.ends_with("trace_unit.json"));
        let bytes = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(bytes, log.to_chrome_json("unit", 3));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
