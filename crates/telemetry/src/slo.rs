//! Declarative SLOs, multi-window burn-rate alerting, and node health.
//!
//! An [`SloSpec`] names a service-level objective as a *bad-event
//! fraction budget*: `bad` counters over `total` counters must stay
//! under `budget_ppm` parts-per-million. The [`SloEngine`] samples the
//! cumulative counters on the scrape cadence and evaluates **burn
//! rates** — how many times faster than budget the error budget is being
//! consumed — over two window pairs:
//!
//! * **fast pair** (5 s and 1 m): catches a flash crowd in seconds, but
//!   only fires when *both* windows breach, so a single bad scrape tick
//!   cannot page;
//! * **slow pair** (30 s and 6 m): catches a slow leak the fast pair's
//!   high threshold ignores.
//!
//! A pair breaches when both of its windows burn at or above the pair's
//! threshold; the alert is **firing** while either pair breaches and
//! **resolved** when neither does. Only *transitions* emit an
//! [`AlertEvent`] (with the breaching window pair and the burn
//! multiple), so the alert timeline is sparse and — because evaluation
//! is integer arithmetic over sim-time samples — byte-deterministic on
//! replay.
//!
//! [`HealthState`] rolls alerts, quarantine, and queue pressure into the
//! per-node ok/degraded/critical scoreboard exported by the sim driver
//! and `RealCluster`'s command plane.

use crate::Telemetry;
use std::collections::VecDeque;

/// Fast-pair windows: 5 seconds and 1 minute (sim-time µs).
pub const FAST_WINDOWS_US: (u64, u64) = (5_000_000, 60_000_000);

/// Slow-pair windows: 30 seconds and 6 minutes (sim-time µs).
pub const SLOW_WINDOWS_US: (u64, u64) = (30_000_000, 360_000_000);

/// Default fast-pair threshold: 10.0× budget burn (×100 fixed-point).
pub const DEFAULT_FAST_BURN_X100: u64 = 1_000;

/// Default slow-pair threshold: 2.0× budget burn (×100 fixed-point).
pub const DEFAULT_SLOW_BURN_X100: u64 = 200;

/// A declarative service-level objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// SLO name — the `alert_firing(<name>)` subject in policy scripts.
    pub name: String,
    /// Counters whose sum is the bad-event count.
    pub bad: Vec<String>,
    /// Counters whose sum is the total-event count.
    pub total: Vec<String>,
    /// Error budget: allowed bad fraction, parts-per-million.
    pub budget_ppm: u64,
    /// Fast-pair burn threshold, ×100 (1_000 = 10× budget).
    pub fast_burn_x100: u64,
    /// Slow-pair burn threshold, ×100 (200 = 2× budget).
    pub slow_burn_x100: u64,
}

impl SloSpec {
    /// A spec with the default burn thresholds.
    pub fn new(
        name: impl Into<String>,
        bad: Vec<String>,
        total: Vec<String>,
        budget_ppm: u64,
    ) -> Self {
        SloSpec {
            name: name.into(),
            bad,
            total,
            budget_ppm: budget_ppm.max(1),
            fast_burn_x100: DEFAULT_FAST_BURN_X100,
            slow_burn_x100: DEFAULT_SLOW_BURN_X100,
        }
    }
}

/// Which window pair breached (or last breached, for a resolve).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertWindow {
    /// The 5 s / 1 m pair.
    Fast,
    /// The 30 s / 6 m pair.
    Slow,
}

impl AlertWindow {
    /// Snapshot-JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertWindow::Fast => "fast",
            AlertWindow::Slow => "slow",
        }
    }
}

/// One alert-state transition, recorded into the snapshot timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertEvent {
    /// The [`SloSpec::name`] this event belongs to.
    pub slo: String,
    /// Transition time, simulated microseconds.
    pub at_us: u64,
    /// `true` = firing, `false` = resolved.
    pub firing: bool,
    /// The breaching pair (for a resolve: the pair that had been firing).
    pub window: AlertWindow,
    /// Burn multiple ×100 at transition time (the breaching pair's
    /// effective burn; for a resolve, the residual maximum burn).
    pub burn_x100: u64,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    at_us: u64,
    bad: u64,
    total: u64,
}

struct SloState {
    spec: SloSpec,
    ring: VecDeque<Sample>,
    ring_capacity: usize,
    firing: bool,
    last_window: AlertWindow,
}

/// Evaluates registered [`SloSpec`]s over cumulative counter samples.
pub struct SloEngine {
    slos: Vec<SloState>,
    cadence_us: u64,
}

impl SloEngine {
    /// An engine sampled every `cadence_us` sim-time microseconds. The
    /// per-SLO sample ring is sized to cover the slowest window (6 m) at
    /// that cadence — bounded memory with no downsampling needed.
    pub fn new(cadence_us: u64) -> Self {
        SloEngine {
            slos: Vec::new(),
            cadence_us: cadence_us.max(1),
        }
    }

    /// Register an SLO.
    pub fn add(&mut self, spec: SloSpec) {
        let ring_capacity = ((SLOW_WINDOWS_US.1 / self.cadence_us) as usize + 2).min(4096);
        self.slos.push(SloState {
            spec,
            ring: VecDeque::with_capacity(ring_capacity),
            ring_capacity,
            firing: false,
            last_window: AlertWindow::Fast,
        });
    }

    /// Registered SLO names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.slos.iter().map(|s| s.spec.name.as_str()).collect()
    }

    /// Whether the named SLO's alert is currently firing.
    pub fn firing(&self, name: &str) -> bool {
        self.slos.iter().any(|s| s.spec.name == name && s.firing)
    }

    /// Number of SLOs currently firing.
    pub fn firing_count(&self) -> usize {
        self.slos.iter().filter(|s| s.firing).count()
    }

    /// Sample every SLO's counters from `telemetry` at `now_us`,
    /// evaluate burn rates, and return the alert transitions (empty on
    /// a steady state). Each transition is also recorded into the
    /// registry's alert timeline for the schema-v3 snapshot.
    pub fn observe(&mut self, telemetry: &Telemetry, now_us: u64) -> Vec<AlertEvent> {
        let samples: Vec<(u64, u64)> = self
            .slos
            .iter()
            .map(|s| {
                let bad = s.spec.bad.iter().map(|n| telemetry.counter(n)).sum();
                let total = s.spec.total.iter().map(|n| telemetry.counter(n)).sum();
                (bad, total)
            })
            .collect();
        let events = self.ingest(now_us, &samples);
        for e in &events {
            telemetry.record_alert(e.clone());
        }
        events
    }

    /// Like [`SloEngine::observe`] but with caller-supplied cumulative
    /// `(bad, total)` samples, aligned with registration order. Useful
    /// when the counters do not live in a [`Telemetry`] registry.
    pub fn ingest(&mut self, now_us: u64, samples: &[(u64, u64)]) -> Vec<AlertEvent> {
        let mut events = Vec::new();
        for (state, &(bad, total)) in self.slos.iter_mut().zip(samples) {
            state.ring.push_back(Sample {
                at_us: now_us,
                bad,
                total,
            });
            while state.ring.len() > state.ring_capacity {
                state.ring.pop_front();
            }
            let budget = state.spec.budget_ppm;
            let fast = pair_burn(&state.ring, now_us, FAST_WINDOWS_US, budget);
            let slow = pair_burn(&state.ring, now_us, SLOW_WINDOWS_US, budget);
            let fast_breach = fast >= state.spec.fast_burn_x100;
            let slow_breach = slow >= state.spec.slow_burn_x100;
            let firing_now = fast_breach || slow_breach;
            if firing_now != state.firing {
                let window = if !firing_now {
                    state.last_window
                } else if fast_breach {
                    AlertWindow::Fast
                } else {
                    AlertWindow::Slow
                };
                events.push(AlertEvent {
                    slo: state.spec.name.clone(),
                    at_us: now_us,
                    firing: firing_now,
                    window,
                    burn_x100: if firing_now && fast_breach {
                        fast
                    } else if firing_now {
                        slow
                    } else {
                        fast.max(slow)
                    },
                });
                state.firing = firing_now;
                if firing_now {
                    state.last_window = window;
                }
            }
        }
        events
    }
}

/// The pair's effective burn ×100: the *minimum* of its two windows'
/// burns (a pair breaches only when both windows do, so its effective
/// burn is the weaker of the two).
fn pair_burn(ring: &VecDeque<Sample>, now_us: u64, windows: (u64, u64), budget_ppm: u64) -> u64 {
    window_burn(ring, now_us, windows.0, budget_ppm)
        .min(window_burn(ring, now_us, windows.1, budget_ppm))
}

/// Burn ×100 over the trailing `window_us`: the bad fraction of the
/// events inside the window, divided by the budget fraction. Integer
/// arithmetic only (`u128` intermediates), a pure function of the
/// sample ring — byte-deterministic on replay.
fn window_burn(ring: &VecDeque<Sample>, now_us: u64, window_us: u64, budget_ppm: u64) -> u64 {
    let Some(cur) = ring.back() else { return 0 };
    let start = now_us.saturating_sub(window_us);
    // Baseline: the newest sample at or before the window start, or the
    // oldest retained sample while history is still shorter than the
    // window (an honest shorter-window estimate, deterministic either way).
    let Some(base) = ring
        .iter()
        .rev()
        .find(|s| s.at_us <= start)
        .or_else(|| ring.front())
    else {
        return 0;
    };
    if base.at_us >= cur.at_us {
        return 0; // no elapsed window yet
    }
    let bad_d = cur.bad.saturating_sub(base.bad) as u128;
    let total_d = cur.total.saturating_sub(base.total) as u128;
    if total_d == 0 {
        return 0;
    }
    // burn = (bad/total) / (budget_ppm / 1e6), reported ×100.
    let x = bad_d * 1_000_000 * 100 / (total_d * budget_ppm.max(1) as u128);
    x.min(u64::MAX as u128) as u64
}

/// Per-node health, rolled up from alert state, quarantine, and queue
/// pressure. Ordered: `Ok < Degraded < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Serving normally.
    Ok,
    /// An SLO alert is firing, or queues are under sustained pressure.
    Degraded,
    /// Quarantined state is present, or alerts coincide with saturated
    /// queues — repair is needed, not just headroom.
    Critical,
}

impl HealthState {
    /// Scoreboard/gauge spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Critical => "critical",
        }
    }

    /// Gauge encoding: 0 = ok, 1 = degraded, 2 = critical.
    pub fn as_gauge(self) -> i64 {
        match self {
            HealthState::Ok => 0,
            HealthState::Degraded => 1,
            HealthState::Critical => 2,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Queue-pressure percentage above which a node counts as pressured.
pub const QUEUE_PRESSURE_PCT: u64 = 80;

/// Derive a node's [`HealthState`] from its observable indicators:
/// `alerts_firing` SLO alerts scoped to the node, `quarantined`
/// instances homed on it, and its deepest queue at `queue_pct` percent
/// of capacity. A dead node is `Critical` by definition — callers
/// short-circuit that case before consulting the indicators.
pub fn derive_health(alerts_firing: usize, quarantined: usize, queue_pct: u64) -> HealthState {
    let pressured = queue_pct >= QUEUE_PRESSURE_PCT;
    if quarantined > 0 || (alerts_firing > 0 && pressured) {
        HealthState::Critical
    } else if alerts_firing > 0 || pressured {
        HealthState::Degraded
    } else {
        HealthState::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: u64 = 250_000;

    fn spec() -> SloSpec {
        SloSpec::new(
            "std-latency",
            vec!["bad".into()],
            vec!["total".into()],
            10_000, // 1% budget
        )
    }

    #[test]
    fn quiet_counters_never_fire() {
        let mut e = SloEngine::new(TICK);
        e.add(spec());
        for i in 0..100u64 {
            let ev = e.ingest(i * TICK, &[(0, i * 10)]);
            assert!(ev.is_empty());
        }
        assert!(!e.firing("std-latency"));
        assert_eq!(e.firing_count(), 0);
    }

    #[test]
    fn sustained_burn_fires_fast_pair_then_resolves() {
        let mut e = SloEngine::new(TICK);
        e.add(spec());
        let mut bad = 0u64;
        let mut total = 0u64;
        let mut fired_at = None;
        let mut resolved_at = None;
        // 2 minutes of clean traffic, then 100% errors for 30 s, then clean.
        for i in 0..1200u64 {
            let now = i * TICK;
            total += 100;
            if (480..600).contains(&i) {
                bad += 100;
            }
            for ev in e.ingest(now, &[(bad, total)]) {
                if ev.firing && fired_at.is_none() {
                    fired_at = Some(ev.at_us);
                    // Early in a run the slow pair's long window is still
                    // short history, so either pair may catch the burst.
                    let threshold = match ev.window {
                        AlertWindow::Fast => DEFAULT_FAST_BURN_X100,
                        AlertWindow::Slow => DEFAULT_SLOW_BURN_X100,
                    };
                    assert!(
                        ev.burn_x100 >= threshold,
                        "burn {} below threshold {threshold}",
                        ev.burn_x100
                    );
                } else if !ev.firing && fired_at.is_some() && resolved_at.is_none() {
                    resolved_at = Some(ev.at_us);
                }
            }
        }
        let fired = fired_at.expect("a 100%-error burst on a 1% budget must fire");
        let resolved = resolved_at.expect("alert must resolve after the burst");
        let burst_start = 480 * TICK;
        assert!(fired >= burst_start);
        assert!(
            fired <= burst_start + 10_000_000,
            "fast pair must fire within 10 s of the burst (fired {} µs after)",
            fired - burst_start
        );
        assert!(resolved > fired);
        assert!(!e.firing("std-latency"));
    }

    #[test]
    fn single_bad_tick_does_not_page() {
        let mut e = SloEngine::new(TICK);
        e.add(spec());
        let mut bad = 0u64;
        let mut total = 0u64;
        // One 250 ms tick of 100% errors inside a minute of clean traffic:
        // the 1 m window's burn stays under 10×, so the fast pair holds.
        for i in 0..240u64 {
            total += 100;
            if i == 120 {
                bad += 100;
            }
            let ev = e.ingest(i * TICK, &[(bad, total)]);
            assert!(ev.is_empty(), "one bad tick paged at i={i}: {ev:?}");
        }
    }

    #[test]
    fn slow_leak_fires_slow_pair() {
        let mut e = SloEngine::new(TICK);
        let mut s = spec();
        // Disable the fast pair so only the slow one can catch this.
        s.fast_burn_x100 = u64::MAX;
        e.add(s);
        let mut bad = 0u64;
        let mut total = 0u64;
        let mut window = None;
        // 4% errors forever: 4× a 1% budget — under the 10× fast
        // threshold, over the 2× slow threshold once 6 m of history shows.
        for i in 0..2000u64 {
            total += 100;
            if i % 25 == 0 {
                bad += 100;
            }
            for ev in e.ingest(i * TICK, &[(bad, total)]) {
                if ev.firing && window.is_none() {
                    window = Some(ev.window);
                }
            }
        }
        assert_eq!(window, Some(AlertWindow::Slow));
        assert!(e.firing("std-latency"));
    }

    #[test]
    fn observe_reads_counters_and_records_the_timeline() {
        let t = Telemetry::new();
        let mut e = SloEngine::new(TICK);
        e.add(spec());
        for i in 0..120u64 {
            t.add("total", 100);
            if i >= 40 {
                t.add("bad", 100);
            }
            e.observe(&t, i * TICK);
        }
        assert!(e.firing("std-latency"));
        let alerts = t.alerts();
        assert_eq!(alerts.len(), 1, "exactly one firing transition: {alerts:?}");
        assert!(alerts[0].firing);
        assert_eq!(alerts[0].slo, "std-latency");
    }

    #[test]
    fn ring_stays_bounded() {
        let mut e = SloEngine::new(TICK);
        e.add(spec());
        for i in 0..10_000u64 {
            e.ingest(i * TICK, &[(0, i)]);
        }
        let cap = (SLOW_WINDOWS_US.1 / TICK) as usize + 2;
        assert!(e.slos[0].ring.len() <= cap);
    }

    #[test]
    fn health_derivation_matrix() {
        assert_eq!(derive_health(0, 0, 0), HealthState::Ok);
        assert_eq!(derive_health(0, 0, 79), HealthState::Ok);
        assert_eq!(derive_health(1, 0, 0), HealthState::Degraded);
        assert_eq!(derive_health(0, 0, 80), HealthState::Degraded);
        assert_eq!(derive_health(1, 0, 80), HealthState::Critical);
        assert_eq!(derive_health(0, 1, 0), HealthState::Critical);
        assert!(HealthState::Ok < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Critical);
        assert_eq!(HealthState::Critical.as_gauge(), 2);
        assert_eq!(HealthState::Degraded.to_string(), "degraded");
    }
}
