//! **E8 — Figure 6 + §4: shared IP behind a fault-tolerant ipvs.**
//!
//! Three measurements:
//!
//! 1. **Throughput scaling** — §4: *"We may start as many replicas of the
//!    service as required and the ipvs infrastructure can, to some extent,
//!    transparently perform load-balancing thus scaling the service
//!    performance beyond the performance of a single node."* Each backend
//!    has a fixed capacity; achieved throughput vs replica count shows the
//!    near-linear region and the saturation of the offered load.
//! 2. **Scheduler comparison** — distribution quality under uniform and
//!    skewed clients for rr / wrr / lc / sh.
//! 3. **Director failover** — connection survival with and without the
//!    connection-synchronization daemon.

use dosgi_bench::{print_table, ratio};
use dosgi_ipvs::{
    replicated_service, FaultTolerantIpvs, IpvsDirector, RealServer, Scheduler, VirtualService,
};
use dosgi_net::{IpAddr, IpBindings, NodeId, Port, SocketAddr};

const VIP: SocketAddr = SocketAddr::new(IpAddr::new(10, 0, 0, 100), Port(80));
const BACKEND_CAPACITY: u64 = 1_000; // requests/sec per node
const OFFERED: u64 = 4_200; // requests/sec offered by clients

fn main() {
    // ------------------------------------------------------------------
    // 1. Throughput scaling with replica count.
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for replicas in 1u32..=6 {
        let nodes: Vec<NodeId> = (0..replicas).map(NodeId).collect();
        let mut d = IpvsDirector::new();
        d.add_service(replicated_service(VIP, Scheduler::RoundRobin, &nodes));
        // One simulated second: OFFERED clients each open a connection;
        // a backend serves at most BACKEND_CAPACITY of them.
        let mut served_per: Vec<u64> = vec![0; replicas as usize];
        let mut served = 0u64;
        for client in 0..OFFERED {
            let node = d.connect(client, VIP).expect("routable");
            let slot = &mut served_per[node.index()];
            if *slot < BACKEND_CAPACITY {
                *slot += 1;
                served += 1;
            } // else: the backend sheds the request (saturated)
            d.release(client, VIP);
        }
        rows.push(vec![
            replicas.to_string(),
            (u64::from(replicas) * BACKEND_CAPACITY).to_string(),
            served.to_string(),
            format!("{:.0}%", 100.0 * served as f64 / OFFERED as f64),
            ratio(served as f64, BACKEND_CAPACITY as f64),
        ]);
    }
    print_table(
        &format!("E8a: throughput vs replicas (capacity {BACKEND_CAPACITY}/s per node, offered {OFFERED}/s)"),
        &["replicas", "aggregate capacity", "served", "goodput", "vs 1 node"],
        &rows,
    );

    // ------------------------------------------------------------------
    // 2. Scheduler comparison: distribution across 3 backends.
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for sched in [
        Scheduler::RoundRobin,
        Scheduler::WeightedRoundRobin,
        Scheduler::LeastConnections,
        Scheduler::SourceHash,
    ] {
        let mut vs = VirtualService::new(VIP, sched);
        vs.add_server(RealServer::new(NodeId(0)).with_weight(2)); // a beefier box
        vs.add_server(RealServer::new(NodeId(1)));
        vs.add_server(RealServer::new(NodeId(2)));
        let mut d = IpvsDirector::new();
        d.add_service(vs);
        for client in 0..3000u64 {
            d.connect(client, VIP).expect("routable");
        }
        let counts: Vec<u64> = (0..3).map(|n| d.routed_to(VIP, NodeId(n))).collect();
        rows.push(vec![
            format!("{sched:?}"),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
        ]);
    }
    print_table(
        "E8b: 3000 clients across 3 backends (n0 weight 2)",
        &["scheduler", "n0 (w=2)", "n1", "n2"],
        &rows,
    );

    // ------------------------------------------------------------------
    // 3. Director failover: with vs without connection sync.
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for sync in [true, false] {
        let nodes: Vec<NodeId> = (10..13).map(NodeId).collect();
        let mut d = IpvsDirector::new();
        d.add_service(replicated_service(VIP, Scheduler::RoundRobin, &nodes));
        let mut ft = FaultTolerantIpvs::new(NodeId(0), NodeId(1), d, sync);
        let mut bindings = IpBindings::new();
        ft.bind_vips(&mut bindings);
        let before: Vec<NodeId> = (0..300u64).map(|c| ft.connect(c, VIP).unwrap()).collect();
        ft.fail_active(&mut bindings);
        // After a takeover, clients reconnect in arbitrary order (here:
        // reversed). With connection sync their affinity survives; without
        // it the fresh scheduler deals them out anew.
        let mut after = vec![NodeId(0); 300];
        for c in (0..300u64).rev() {
            after[c as usize] = ft.connect(c, VIP).unwrap();
        }
        let kept = before.iter().zip(&after).filter(|(a, b)| a == b).count();
        rows.push(vec![
            if sync {
                "with conn sync"
            } else {
                "without sync"
            }
            .to_string(),
            bindings.owner_of(VIP.ip).unwrap().to_string(),
            format!("{kept}/300"),
            ft.director().stats().tracked.to_string(),
        ]);
    }
    print_table(
        "E8c: director failover (VIP takeover by the standby)",
        &[
            "mode",
            "VIP now at",
            "clients keeping their backend",
            "tracked conns",
        ],
        &rows,
    );
    println!(
        "\nShape check (Fig. 6/§4): throughput scales ~linearly until the offered \
         load saturates; weighted/least-conn respect capacity differences; the VIP \
         survives the director's death, and connection sync preserves affinity."
    );
}
