//! **E15 — overload survival: admission control, backpressure, shedding.**
//!
//! ROADMAP item 4 / §3.3–§4 of the paper: dependability claims are only as
//! honest as the load behind them. Three measurements, all deterministic
//! on the simulated clock:
//!
//! 1. **The goodput/latency knee** — an open-loop class-mixed Poisson
//!    workload sweeps offered load from 0.5× to 4× of a backend's
//!    capacity, with and without admission control. Goodput counts only
//!    completions inside their class SLO. With bounded queues + priority
//!    shedding, goodput must hold within 10% of capacity at every
//!    overload point; the unbounded (no-admission) run queues without
//!    limit, latency diverges, and goodput collapses.
//! 2. **Policy-driven reaction** — the `POLLED_OVERLOAD_POLICY` rules
//!    (scale-out on sustained p95 breach, shed-class on queue pressure)
//!    drive the admission layer through a flash crowd: the director adds
//!    a standby replica and sheds the background class at the knee, then
//!    lifts the shed once pressure clears. (E16 races this naive polled
//!    trigger against the burn-rate-alert-driven `OVERLOAD_POLICY`.)
//! 3. **Flash-crowd chaos** — a hand-built nemesis schedule kills a node
//!    at the flash-crowd peak and restarts it later; the at-most-one-
//!    live-copy, durability-floor, and convergence invariants must hold,
//!    and the telemetry-on/off fingerprints must be byte-equal
//!    (instrumentation passivity under overload).
//!
//! Emits `results/telemetry_e15.json` (validated by `telemetry_check`:
//! the shed/queued/deadline-missed counters must be present and live).

use dosgi_bench::{print_table, ratio, write_telemetry_snapshot};
use dosgi_core::autonomic::POLLED_OVERLOAD_POLICY;
use dosgi_core::chaos::{run_nemesis_with_telemetry, ChaosOptions};
use dosgi_core::loadgen::{Burst, ClassMix, RateSchedule, ScheduledLoadGenerator};
use dosgi_ipvs::{
    replicated_service, AdmissionConfig, IpvsDirector, RealServer, RequestClass, RouteError,
    Scheduler,
};
use dosgi_net::{IpAddr, NodeId, Port, SimDuration, SimTime, SocketAddr};
use dosgi_policy::{Blackboard, PolicyAction, PolicyEngine};
use dosgi_telemetry::Telemetry;
use dosgi_testkit::nemesis::{NemesisOp, NemesisPlan, NemesisStep};

const VIP: SocketAddr = SocketAddr::new(IpAddr::new(10, 0, 0, 150), Port(80));
/// One backend's deterministic service capacity (requests/second).
const CAPACITY: u64 = 2_000;
/// Bounded queue: 64 requests × 500µs service = 32ms worst-case wait,
/// inside every class SLO — whatever is admitted can still finish on time.
const QUEUE_CAPACITY: usize = 64;
const SEED: u64 = 15;
const TICK_US: u64 = 5_000;

struct SweepOutcome {
    offered: u64,
    admitted: u64,
    shed: u64,
    displaced: u64,
    good: u64,
    p95_standard_us: u64,
    deadline_missed: u64,
}

/// Drives `secs` of open-loop load at `rate` against one backend, with a
/// bounded (admission) or effectively unbounded (no-admission) queue.
fn run_sweep_point(rate: f64, secs: u64, admission: bool, telemetry: &Telemetry) -> SweepOutcome {
    let queue_capacity = if admission {
        QUEUE_CAPACITY
    } else {
        usize::MAX // accept everything: the melt-down baseline
    };
    let mut d = IpvsDirector::new();
    d.set_telemetry(telemetry.clone());
    d.add_service(
        replicated_service(VIP, Scheduler::RoundRobin, &[NodeId(0)]).with_admission(
            AdmissionConfig {
                queue_capacity,
                service_us_per_request: 1_000_000 / CAPACITY,
            },
        ),
    );
    let mut gen = ScheduledLoadGenerator::new(RateSchedule::constant(rate), SEED, SimTime::ZERO);
    let mut mix = ClassMix::standard_web(SEED);
    let mut client = 0u64;
    let mut offered = 0u64;
    let mut good = 0u64;
    let mut standard_latencies: Vec<u64> = Vec::new();
    let horizon_us = secs * 1_000_000;
    let mut now_us = 0u64;
    while now_us < horizon_us {
        now_us += TICK_US;
        let arrivals = gen.arrivals_until(SimTime::from_micros(now_us));
        for _ in 0..arrivals {
            offered += 1;
            client += 1;
            let class = mix.sample();
            let _ = d.admit(client, VIP, class, now_us);
        }
        for c in d.drain(VIP, now_us) {
            if !c.missed_deadline() {
                good += 1;
            }
            if c.class == RequestClass::Standard {
                standard_latencies.push(c.latency_us());
            }
        }
    }
    standard_latencies.sort_unstable();
    let p95 = if standard_latencies.is_empty() {
        0
    } else {
        standard_latencies[(standard_latencies.len() - 1) * 95 / 100]
    };
    let s = d.stats();
    SweepOutcome {
        offered,
        admitted: s.queued,
        shed: s.shed,
        displaced: s.displaced,
        good,
        p95_standard_us: p95,
        deadline_missed: s.deadline_missed,
    }
}

fn knee_sweep(telemetry: &Telemetry) {
    const SECS: u64 = 20;
    let mut rows = Vec::new();
    let mut hold = true;
    for &mult in &[0.5f64, 1.0, 1.5, 2.0, 3.0, 4.0] {
        let rate = mult * CAPACITY as f64;
        let with = run_sweep_point(rate, SECS, true, telemetry);
        let without = run_sweep_point(rate, SECS, false, telemetry);
        let good_rate = with.good / SECS;
        let good_rate_off = without.good / SECS;
        if mult >= 2.0 {
            // The acceptance gate: admission holds ≥90% of capacity while
            // the unbounded run collapses below that line.
            hold &= good_rate as f64 >= 0.9 * CAPACITY as f64;
            hold &= (good_rate_off as f64) < 0.9 * CAPACITY as f64;
        }
        rows.push(vec![
            format!("{mult:.1}x"),
            with.offered.to_string(),
            format!("{good_rate}/s"),
            format!(
                "{:.0}%",
                100.0 * with.shed as f64 / with.offered.max(1) as f64
            ),
            format!("{:.1}ms", with.p95_standard_us as f64 / 1000.0),
            format!("{good_rate_off}/s"),
            format!("{:.0}ms", without.p95_standard_us as f64 / 1000.0),
            without.deadline_missed.to_string(),
            ratio(good_rate as f64, good_rate_off.max(1) as f64),
        ]);
        // A displaced victim is counted both queued (on admit) and shed
        // (on eviction), so the exact conservation law is:
        assert_eq!(
            with.admitted + with.shed - with.displaced,
            with.offered,
            "every request is either admitted or shed exactly once"
        );
    }
    print_table(
        &format!(
            "E15a: goodput/latency knee, 1 backend @ {CAPACITY}/s, queue {QUEUE_CAPACITY}, {SECS}s per point"
        ),
        &[
            "offered",
            "requests",
            "goodput (adm)",
            "shed (adm)",
            "p95 std (adm)",
            "goodput (none)",
            "p95 std (none)",
            "SLO misses (none)",
            "adm vs none",
        ],
        &rows,
    );
    assert!(
        hold,
        "knee criterion failed: admission must hold >=90% of capacity at >=2x \
         while no-admission collapses below it"
    );
}

/// The policy loop reacting to the knee: scale-out on sustained p95
/// breach, shed-class on queue pressure, un-shed once clear.
fn policy_reaction(telemetry: &Telemetry) {
    const SECS: u64 = 30;
    let schedule = RateSchedule::constant(CAPACITY as f64).with_burst(Burst {
        start: SimTime::from_secs(8),
        duration: SimDuration::from_secs(10),
        multiplier: 3.0,
    });
    let mut d = IpvsDirector::new();
    d.set_telemetry(telemetry.clone());
    d.add_service(
        replicated_service(VIP, Scheduler::RoundRobin, &[NodeId(0)]).with_admission(
            AdmissionConfig {
                queue_capacity: QUEUE_CAPACITY,
                service_us_per_request: 1_000_000 / CAPACITY,
            },
        ),
    );
    let mut engine =
        PolicyEngine::compile(POLLED_OVERLOAD_POLICY).expect("overload policy compiles");
    let mut bb = Blackboard::new();
    let mut gen = ScheduledLoadGenerator::new(schedule, SEED + 1, SimTime::ZERO);
    let mut mix = ClassMix::standard_web(SEED + 1);
    let mut client = 0u64;
    // Rolling 1s window of *attempted* standard-class requests for the
    // client-perceived p95 signal: completions contribute their measured
    // latency, shed requests count as SLO-busting (a rejected client does
    // not experience a fast request — without this, a healthily bounded
    // queue can never breach p95 and scale-out would never fire).
    const SHED_PENALTY_US: u64 = 10_000_000;
    let mut window: Vec<(u64, u64)> = Vec::new();
    let mut replicas = 1usize;
    let mut timeline: Vec<(u64, String)> = Vec::new();
    let mut good_per_sec = vec![0u64; SECS as usize];
    let mut next_policy_us = 250_000u64;
    let horizon_us = SECS * 1_000_000;
    let mut now_us = 0u64;
    while now_us < horizon_us {
        now_us += TICK_US;
        for _ in 0..gen.arrivals_until(SimTime::from_micros(now_us)) {
            client += 1;
            let class = mix.sample();
            if let Err(RouteError::Shed(_, RequestClass::Standard)) =
                d.admit(client, VIP, class, now_us)
            {
                window.push((now_us, SHED_PENALTY_US));
            }
        }
        for c in d.drain(VIP, now_us) {
            if !c.missed_deadline() {
                good_per_sec[((c.completed_us - 1) / 1_000_000).min(SECS - 1) as usize] += 1;
            }
            if c.class == RequestClass::Standard {
                window.push((c.completed_us, c.latency_us()));
            }
        }
        if now_us >= next_policy_us {
            next_policy_us += 250_000;
            window.retain(|(at, _)| *at + 1_000_000 > now_us);
            let mut lat: Vec<u64> = window.iter().map(|(_, l)| *l).collect();
            lat.sort_unstable();
            let p95 = if lat.is_empty() {
                0
            } else {
                lat[(lat.len() - 1) * 95 / 100]
            };
            let depth: usize = d.queue_depths(VIP).iter().map(|(_, q)| q).sum();
            bb.set_global_metric("p95_latency_us", p95 as f64);
            bb.set_global_metric("slo_us", RequestClass::Standard.slo_us() as f64);
            bb.set_global_metric("queue_depth", depth as f64);
            bb.set_global_metric("queue_capacity", (QUEUE_CAPACITY * replicas) as f64);
            for decision in engine.evaluate(&bb, &[]) {
                match &decision.action {
                    PolicyAction::ScaleOut if replicas < 2 => {
                        replicas += 1;
                        let vs = d.service_mut(VIP).expect("vip registered");
                        vs.add_server(RealServer::new(NodeId(1)));
                        timeline.push((now_us, "scale_out: standby n1 joins".into()));
                    }
                    PolicyAction::ShedClass { class } => {
                        if let Some(c) = RequestClass::from_name(class) {
                            if !d.is_shedding(VIP, c) {
                                d.set_shed_class(VIP, c, true);
                                timeline.push((now_us, format!("shed_class({class}) on")));
                            }
                        }
                    }
                    PolicyAction::Custom { name, args, .. } if name == "stop_shed" => {
                        if let Some(c) = args.first().and_then(|a| RequestClass::from_name(a)) {
                            if d.is_shedding(VIP, c) {
                                d.set_shed_class(VIP, c, false);
                                timeline
                                    .push((now_us, format!("stop_shed({c}) — pressure cleared")));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    let rows: Vec<Vec<String>> = timeline
        .iter()
        .map(|(at, what)| vec![format!("{:.2}s", *at as f64 / 1e6), what.clone()])
        .collect();
    print_table(
        "E15b: policy reaction timeline (burst 3x from 8s to 18s)",
        &["at", "event"],
        &rows,
    );
    let pre: u64 = good_per_sec[2..7].iter().sum::<u64>() / 5;
    let burst: u64 = good_per_sec[10..17].iter().sum::<u64>() / 7;
    println!(
        "goodput pre-burst {pre}/s, during burst (after reaction) {burst}/s \
         ({replicas} replicas serving)"
    );
    assert!(
        timeline.iter().any(|(_, w)| w.starts_with("scale_out")),
        "sustained p95 breach must trigger scale-out"
    );
    assert!(
        timeline.iter().any(|(_, w)| w.starts_with("shed_class")),
        "queue pressure must trigger class shedding"
    );
    assert!(
        timeline.iter().any(|(_, w)| w.starts_with("stop_shed")),
        "shedding must lift once pressure clears"
    );
    assert!(
        burst as f64 >= 1.5 * CAPACITY as f64,
        "with the standby serving, burst goodput must beat one node: {burst}/s"
    );
}

/// Flash-crowd chaos: the client load doubles in tempo and a node dies at
/// the crowd's peak; the dependability invariants and instrumentation
/// passivity must survive.
fn flash_crowd_chaos() {
    let plan = NemesisPlan {
        seed: SEED,
        nodes: 5,
        horizon_us: 60_000_000,
        steps: vec![
            // The kill lands mid-crowd (the schedule peak), the restart
            // leaves a quiet tail for convergence checking.
            NemesisStep {
                at_us: 20_000_000,
                op: NemesisOp::CrashNode { node: 2 },
            },
            NemesisStep {
                at_us: 38_000_000,
                op: NemesisOp::RestartNode { node: 2 },
            },
        ],
    };
    // A flash crowd in the harness's terms: clients hammer every instance
    // five times faster than the default sweep.
    let opts = ChaosOptions {
        client_period: SimDuration::from_millis(20),
        ..ChaosOptions::default()
    };
    let on = run_nemesis_with_telemetry(&plan, &opts, Telemetry::new());
    let off = run_nemesis_with_telemetry(&plan, &opts, Telemetry::disabled());
    print_table(
        "E15c: flash-crowd chaos (node 2 killed at peak, restarted at 38s)",
        &["metric", "value"],
        &[
            vec!["steps applied".to_string(), on.steps_applied.to_string()],
            vec!["acked increments".to_string(), on.acked.to_string()],
            vec!["violations".to_string(), on.violations.len().to_string()],
            vec![
                "fingerprint".to_string(),
                format!("{:016x}", on.fingerprint),
            ],
            vec![
                "telemetry on/off equal".to_string(),
                (on.fingerprint == off.fingerprint).to_string(),
            ],
        ],
    );
    for v in &on.violations {
        println!("  violation: {v}");
    }
    assert!(
        on.ok(),
        "invariants must hold through the flash-crowd node kill"
    );
    assert_eq!(
        on.fingerprint, off.fingerprint,
        "telemetry must stay passive under overload (byte-equal fingerprints)"
    );
}

fn main() {
    let telemetry = Telemetry::new();
    knee_sweep(&telemetry);
    policy_reaction(&telemetry);
    flash_crowd_chaos();
    write_telemetry_snapshot(&telemetry, "e15", SEED);
    println!(
        "\nShape check (ROADMAP item 4): bounded queues + priority shedding hold \
         goodput at the capacity line through 4x overload while the unbounded \
         baseline collapses; the policy loop scales out and sheds at the knee; \
         the invariants survive a node kill at flash-crowd peak."
    );
}
