//! **E11 — the fallible SAN: dependability under storage faults.**
//!
//! The paper's architecture hangs all durability on the SAN ("the state of
//! the platform is stored in the SAN"), and §3.2's redeployment story
//! silently assumes the SAN answers. This experiment measures what the
//! retry/backoff + quarantine machinery actually delivers when it does
//! not:
//!
//! (a) failover downtime after a node crash as a function of the SAN's
//!     transient error rate — retries absorb flakiness at the cost of
//!     re-materialization latency;
//! (b) the quarantine/heal cycle under a full brown-out — downtime is
//!     dominated by the brown-out itself, and the instance returns
//!     automatically (with state intact) once the SAN heals.
//!
//! All time is simulated, all randomness seeded: re-running produces the
//! same table byte for byte. A JSON copy lands in
//! `results/e11_fallible_san.json`.

use dosgi_bench::{print_table, write_telemetry_snapshot};
use dosgi_core::{workloads, ClusterConfig, DosgiCluster, NodeEvent};
use dosgi_net::SimDuration;
use dosgi_san::{FaultPlan, Value};
use dosgi_telemetry::Telemetry;

struct Row {
    error_rate: f64,
    downtime_us: u64,
    retries: u64,
    quarantined: bool,
    state_intact: bool,
}

fn crash_under_flaky_san(error_rate: f64, telemetry: &Telemetry) -> Row {
    let mut c =
        DosgiCluster::new_with_telemetry(3, ClusterConfig::default(), 1_100, telemetry.clone());
    c.run_for(SimDuration::from_secs(1));
    c.deploy(
        workloads::counter_instance_with("acme", "ctr", workloads::COUNTER_WRITE_THROUGH),
        0,
    )
    .unwrap();
    c.run_for(SimDuration::from_millis(500));
    for _ in 0..5 {
        c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
            .unwrap();
    }
    if error_rate > 0.0 {
        c.set_fault_plan(FaultPlan::flaky(error_rate, 0xE11_5EED));
    }
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(8));
    c.clear_faults();
    c.run_for(SimDuration::from_secs(4));

    let events = c.take_events();
    let retries = events
        .iter()
        .filter(|(_, e)| matches!(e, NodeEvent::AdoptRetried { .. }))
        .count() as u64;
    let quarantined = events
        .iter()
        .any(|(_, e)| matches!(e, NodeEvent::Quarantined { .. }));
    let state_intact =
        c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null) == Ok(Value::Int(6));
    c.record_telemetry_gauges();
    Row {
        error_rate,
        downtime_us: c.sla().record("ctr").down.as_micros(),
        retries,
        quarantined,
        state_intact,
    }
}

fn main() {
    let telemetry = Telemetry::new();
    // ------------------------------------------------------------------
    // (a) Crash + flaky SAN: downtime vs transient error rate.
    // ------------------------------------------------------------------
    let rows: Vec<Row> = [0.0, 0.05, 0.10, 0.20, 0.30, 0.50]
        .into_iter()
        .map(|r| crash_under_flaky_san(r, &telemetry))
        .collect();
    print_table(
        "E11a: crash failover vs SAN transient error rate (3 nodes)",
        &[
            "error rate",
            "downtime",
            "adopt retries",
            "quarantined",
            "state intact",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}%", r.error_rate * 100.0),
                    format!("{} ms", r.downtime_us / 1_000),
                    r.retries.to_string(),
                    r.quarantined.to_string(),
                    r.state_intact.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // ------------------------------------------------------------------
    // (b) Crash during a SAN brown-out: quarantine, then heal.
    // ------------------------------------------------------------------
    let mut rows_b = Vec::new();
    for brownout_s in [2u64, 5, 10] {
        let mut c =
            DosgiCluster::new_with_telemetry(3, ClusterConfig::default(), 1_200, telemetry.clone());
        c.run_for(SimDuration::from_secs(1));
        c.deploy(
            workloads::counter_instance_with("acme", "ctr", workloads::COUNTER_WRITE_THROUGH),
            0,
        )
        .unwrap();
        c.run_for(SimDuration::from_millis(500));
        for _ in 0..5 {
            c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
                .unwrap();
        }
        let from = c.now();
        c.set_fault_plan(
            FaultPlan::none().with_brownout(from, from + SimDuration::from_secs(brownout_s)),
        );
        c.crash_node(0);
        c.run_for(SimDuration::from_secs(brownout_s + 8));
        let events = c.take_events();
        let quarantined = events
            .iter()
            .any(|(_, e)| matches!(e, NodeEvent::Quarantined { .. }));
        let healed = c.probe("ctr");
        let state_intact =
            c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null) == Ok(Value::Int(6));
        rows_b.push(vec![
            format!("{brownout_s} s"),
            format!("{} ms", c.sla().record("ctr").down.as_micros() / 1_000),
            quarantined.to_string(),
            healed.to_string(),
            state_intact.to_string(),
        ]);
    }
    print_table(
        "E11b: crash during SAN brown-out (quarantine -> heal, 3 nodes)",
        &[
            "brown-out",
            "downtime",
            "quarantined",
            "healed",
            "state intact",
        ],
        &rows_b,
    );

    // JSON copy for tooling.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"error_rate\":{},\"downtime_us\":{},\"retries\":{},\
                 \"quarantined\":{},\"state_intact\":{}}}",
                r.error_rate, r.downtime_us, r.retries, r.quarantined, r.state_intact
            )
        })
        .collect();
    let json = format!(
        "{{\"experiment\":\"e11_fallible_san\",\"flaky_crash\":[{}]}}\n",
        json_rows.join(",")
    );
    let _ = std::fs::create_dir_all("results");
    if let Err(e) = std::fs::write("results/e11_fallible_san.json", json) {
        eprintln!("could not write results/e11_fallible_san.json: {e}");
    }
    write_telemetry_snapshot(&telemetry, "e11_fallible_san", 1_100);
}
