//! **E4 — §2: the isolation matrix.**
//!
//! Verifies every isolation dimension the paper claims for virtual
//! instances: namespace (class space), service, filesystem, network and
//! performance (resource accounting) isolation — each tested as both the
//! *allowed* and the *denied* direction, then a noisy-neighbour run showing
//! per-customer CPU accounting stays separate (the thing §3.1 says a stock
//! JVM cannot do).

use dosgi_bench::print_table;
use dosgi_core::workloads;
use dosgi_net::{IpAddr, Port, SimDuration};
use dosgi_osgi::{Framework, SymbolName};
use dosgi_san::Value;
use dosgi_vosgi::{
    InstanceDescriptor, InstanceManager, Permission, ResourceQuota, SecurityPolicy, VosgiError,
};

fn main() {
    let mut fw = Framework::new("host");
    let repo = workloads::standard_repository();
    let factory = workloads::standard_factory();
    let m = repo.manifest(workloads::LOG_BUNDLE).unwrap().clone();
    let a = factory.create(&m);
    let id = fw.install(m, a).unwrap();
    fw.start(id).unwrap();
    let mut mgr = InstanceManager::new(fw, repo, factory);

    let ip = IpAddr::new(10, 0, 0, 9);
    let a = mgr
        .create_instance(
            InstanceDescriptor::builder("acme", "a")
                .bundle(workloads::WEB_BUNDLE)
                .share_package("org.dosgi.log.api")
                .share_service(workloads::LOG_SERVICE)
                .policy(
                    SecurityPolicy::deny_all()
                        .grant_file_rw("/data/acme")
                        .grant(Permission::Bind {
                            ip,
                            port: Some(Port(8080)),
                        })
                        .grant(Permission::Connect {
                            ip: IpAddr::new(10, 0, 0, 1),
                        }),
                )
                .quota(ResourceQuota::small())
                .build(),
        )
        .unwrap();
    let b = mgr
        .create_instance(
            InstanceDescriptor::builder("globex", "b")
                .bundle(workloads::WEB_BUNDLE)
                .build(), // deny-all, no shares
        )
        .unwrap();
    mgr.start_instance(a).unwrap();
    mgr.start_instance(b).unwrap();

    let ab = mgr
        .instance(a)
        .unwrap()
        .framework()
        .find_bundle(workloads::WEB_BUNDLE)
        .unwrap();
    let bb = mgr
        .instance(b)
        .unwrap()
        .framework()
        .find_bundle(workloads::WEB_BUNDLE)
        .unwrap();
    let shared_class = SymbolName::parse("org.dosgi.log.api.Logger").unwrap();
    let own_class = SymbolName::parse("org.app.web.impl.Handler").unwrap();

    let verdict = |allowed: bool, r: Result<String, VosgiError>| -> Vec<String> {
        let (status, detail) = match (&r, allowed) {
            (Ok(d), true) => ("ALLOWED ✓", d.clone()),
            (Err(e), false) => ("DENIED ✓", e.to_string()),
            (Ok(d), false) => ("LEAK ✗", d.clone()),
            (Err(e), true) => ("BROKEN ✗", e.to_string()),
        };
        vec![status.to_owned(), detail]
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut check = |dim: &str, what: &str, allowed: bool, r: Result<String, VosgiError>| {
        let mut row = vec![dim.to_owned(), what.to_owned()];
        row.extend(verdict(allowed, r));
        rows.push(row);
    };

    // Namespace isolation.
    check(
        "namespace",
        "A loads its own class",
        true,
        mgr.load_class(a, ab, &own_class)
            .map(|r| format!("{:?}", r.via)),
    );
    check(
        "namespace",
        "A loads exported host class",
        true,
        mgr.load_class(a, ab, &shared_class)
            .map(|r| format!("{:?}", r.via)),
    );
    check(
        "namespace",
        "B loads non-exported host class",
        false,
        mgr.load_class(b, bb, &shared_class)
            .map(|r| format!("{:?}", r.via)),
    );

    // Service isolation.
    check(
        "service",
        "A calls exported host log service",
        true,
        mgr.call_service(a, workloads::LOG_SERVICE, "log", &Value::Null)
            .map(|_| "ok".into()),
    );
    check(
        "service",
        "B calls non-exported host service",
        false,
        mgr.call_service(b, workloads::LOG_SERVICE, "log", &Value::Null)
            .map(|_| "ok".into()),
    );

    // Filesystem isolation.
    check(
        "filesystem",
        "A writes inside its grant",
        true,
        mgr.fs_write(a, "/data/acme/app.db", 512)
            .map(|_| "ok".into()),
    );
    check(
        "filesystem",
        "A writes outside its grant",
        false,
        mgr.fs_write(a, "/data/globex/app.db", 512)
            .map(|_| "ok".into()),
    );
    check(
        "filesystem",
        "B (deny-all) reads anything",
        false,
        mgr.fs_read(b, "/etc/hosts").map(|_| "ok".into()),
    );

    // Network isolation (incl. the paper's bind-to-own-IP rule).
    check(
        "network",
        "A binds its assigned IP:port",
        true,
        mgr.net_bind(a, ip, Port(8080)).map(|_| "ok".into()),
    );
    check(
        "network",
        "A binds a foreign IP",
        false,
        mgr.net_bind(a, IpAddr::new(10, 0, 0, 77), Port(8080))
            .map(|_| "ok".into()),
    );
    check(
        "network",
        "A connects to granted peer",
        true,
        mgr.net_connect(a, IpAddr::new(10, 0, 0, 1))
            .map(|_| "ok".into()),
    );
    check(
        "network",
        "B (deny-all) connects anywhere",
        false,
        mgr.net_connect(b, IpAddr::new(8, 8, 8, 8))
            .map(|_| "ok".into()),
    );

    // Disk quota (performance isolation at the storage dimension).
    check(
        "quota",
        "A writes within its disk quota",
        true,
        mgr.fs_write(a, "/data/acme/big", 1 << 20)
            .map(|_| "ok".into()),
    );
    check(
        "quota",
        "A exceeds its disk quota",
        false,
        mgr.fs_write(a, "/data/acme/huge", 1 << 30)
            .map(|_| "ok".into()),
    );

    print_table(
        "E4: isolation matrix (§2 claims)",
        &["dimension", "scenario", "verdict", "detail"],
        &rows,
    );

    // Noisy neighbour: per-customer CPU accounting stays separate.
    for _ in 0..1000 {
        mgr.call_service(
            b,
            workloads::WEB_SERVICE,
            "handle",
            &Value::map().with("work_us", 5_000i64),
        )
        .unwrap();
    }
    for _ in 0..10 {
        mgr.call_service(
            a,
            workloads::WEB_SERVICE,
            "handle",
            &Value::map().with("work_us", 500i64),
        )
        .unwrap();
    }
    let ua = mgr.usage(a).unwrap();
    let ub = mgr.usage(b).unwrap();
    print_table(
        "E4: per-customer accounting under a noisy neighbour",
        &["instance", "cpu", "calls"],
        &[
            vec![
                "a (tame)".to_string(),
                format!("{}", ua.cpu),
                ua.calls.to_string(),
            ],
            vec![
                "b (noisy)".to_string(),
                format!("{}", ub.cpu),
                ub.calls.to_string(),
            ],
        ],
    );
    let quota_check = mgr
        .check_quota(a, ua.cpu, SimDuration::from_secs(60))
        .unwrap();
    println!(
        "\nquota evaluation of the tame instance against its own usage only: {} violations",
        quota_check.len()
    );
    println!(
        "b's 5s of CPU never pollutes a's account — the JSR-284-style accounting §3.1 wanted."
    );
}
