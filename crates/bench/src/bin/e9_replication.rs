//! **E9 — §3.2's future work: replicating the running context.**
//!
//! The paper defers live context migration and sketches *"having the
//! running context of the bundle replicated on other nodes and doing
//! instantaneous failover"*, flagging unknown costs. This ablation
//! quantifies the trade-off across four strategies on the same crash
//! scenario: a stateful counter takes 200 updates, its node crashes, the
//! cluster fails over.
//!
//! Columns: updates lost, per-update SAN write overhead, downtime.

use dosgi_bench::print_table;
use dosgi_core::{replication, workloads, ClusterConfig, DosgiCluster};
use dosgi_net::SimDuration;
use dosgi_san::Value;

struct Outcome {
    lost: i64,
    san_writes: u64,
    update_bytes: u64,
    failover_bytes_read: u64,
    failover_bytes_written: u64,
    downtime: SimDuration,
}

fn run(bundle: &str, standby: bool, seed: u64) -> Outcome {
    let mut c = DosgiCluster::new(3, ClusterConfig::default(), seed);
    c.run_for(SimDuration::from_secs(1));
    c.deploy(workloads::counter_instance_with("bank", "ctr", bundle), 0)
        .unwrap();
    c.run_for(SimDuration::from_millis(500));
    if standby {
        replication::prepare_standby(&mut c, "ctr", 1).unwrap();
        c.run_for(SimDuration::from_millis(200));
    }

    c.store().reset_stats();
    let updates = 203i64;
    for _ in 0..updates {
        c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
            .unwrap();
    }
    let update_stats = c.store().stats();

    // Separate accounting for the failover round itself: the survivor's
    // restore reads + its re-persisted rows (change detection keeps the
    // rewrites to what actually differs).
    c.store().reset_stats();
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(4));
    let failover_stats = c.store().stats();
    assert!(c.probe("ctr"), "failed over");
    let got = c
        .call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null)
        .unwrap()
        .as_int()
        .unwrap();
    Outcome {
        lost: updates - got,
        san_writes: update_stats.writes,
        update_bytes: update_stats.bytes_written,
        failover_bytes_read: failover_stats.bytes_read,
        failover_bytes_written: failover_stats.bytes_written,
        downtime: c.sla().record("ctr").down,
    }
}

fn main() {
    let strategies: [(&str, &str, bool); 4] = [
        (
            "restart (paper baseline)",
            workloads::COUNTER_ON_STOP,
            false,
        ),
        (
            &format!("checkpoint every {}", workloads::CHECKPOINT_EVERY),
            workloads::COUNTER_CHECKPOINT,
            false,
        ),
        ("write-through", workloads::COUNTER_WRITE_THROUGH, false),
        (
            "write-through + hot standby",
            workloads::COUNTER_WRITE_THROUGH,
            true,
        ),
    ];
    let mut rows = Vec::new();
    for (i, (label, bundle, standby)) in strategies.iter().enumerate() {
        let o = run(bundle, *standby, 1000 + i as u64);
        rows.push(vec![
            (*label).to_string(),
            o.lost.to_string(),
            format!("{:.3}", o.san_writes as f64 / 203.0),
            format!("{:.1}", o.update_bytes as f64 / 203.0),
            format!("{}", o.failover_bytes_read),
            format!("{}", o.failover_bytes_written),
            format!("{}", o.downtime),
        ]);
    }
    print_table(
        "E9: context-replication ablation (203 updates, then crash + failover)",
        &[
            "strategy",
            "updates lost",
            "SAN writes / update",
            "SAN B / update",
            "failover B read",
            "failover B written",
            "downtime",
        ],
        &rows,
    );
    println!(
        "\nShape check (§3.2 future work): durability is bought with per-update \
         writes (0 → 1/k → 1), and the hot standby cuts the re-materialization \
         half of the downtime — the \"near zero downtime\" direction, with its \
         cost now measured rather than speculated."
    );
}
