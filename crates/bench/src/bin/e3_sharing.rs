//! **E3 — Figure 4: sharing host bundles through explicit exports.**
//!
//! Compares nested instances that each carry their own copy of the common
//! infrastructure (Fig. 3) against instances that use the host's single
//! copy through the delegating classloader (Fig. 4): modeled memory, real
//! lookup latency through each path, and the safety property (packages off
//! the export list do not leak).

use dosgi_bench::{mib, print_table, ratio};
use dosgi_core::workloads;
use dosgi_osgi::{Framework, LoadPath, SymbolName};
use dosgi_vosgi::{
    DeploymentTopology, FootprintModel, InstanceDescriptor, InstanceManager, VosgiError,
};
use std::time::Instant;

fn host_with_log() -> Framework {
    let mut fw = Framework::new("host");
    let repo = workloads::standard_repository();
    let factory = workloads::standard_factory();
    for name in [workloads::LOG_BUNDLE, workloads::HTTP_BUNDLE] {
        let m = repo.manifest(name).unwrap().clone();
        let a = factory.create(&m);
        let id = fw.install(m, a).unwrap();
        fw.start(id).unwrap();
    }
    fw
}

fn main() {
    // ------------------------------------------------------------------
    // Memory: per-instance copies vs one shared host copy (cost model).
    // ------------------------------------------------------------------
    let model = FootprintModel::default();
    let rows: Vec<Vec<String>> = [1u64, 5, 10, 20, 50]
        .iter()
        .map(|&customers| {
            let copied = DeploymentTopology::NestedInstances.footprint(&model, customers, 8, 4);
            let shared = DeploymentTopology::SharedBundles.footprint(&model, customers, 8, 4);
            vec![
                customers.to_string(),
                copied.bundle_copies.to_string(),
                shared.bundle_copies.to_string(),
                mib(copied.memory_bytes),
                mib(shared.memory_bytes),
                ratio(copied.memory_bytes as f64, shared.memory_bytes as f64),
            ]
        })
        .collect();
    print_table(
        "E3: per-instance copies (Fig.3) vs shared host bundles (Fig.4)",
        &[
            "customers",
            "copies (3)",
            "copies (4)",
            "memory (3)",
            "memory (4)",
            "saving",
        ],
        &rows,
    );

    // ------------------------------------------------------------------
    // Lookup latency: own package vs host delegation (real wall clock).
    // ------------------------------------------------------------------
    let mut mgr = InstanceManager::new(
        host_with_log(),
        workloads::standard_repository(),
        workloads::standard_factory(),
    );
    let d = InstanceDescriptor::builder("acme", "a")
        .bundle(workloads::WEB_BUNDLE)
        .share_package("org.dosgi.log.api")
        .share_service(workloads::LOG_SERVICE)
        .build();
    let id = mgr.create_instance(d).unwrap();
    mgr.start_instance(id).unwrap();
    let bundle = mgr
        .instance(id)
        .unwrap()
        .framework()
        .find_bundle(workloads::WEB_BUNDLE)
        .unwrap();

    let own = SymbolName::parse("org.app.web.impl.Handler").unwrap();
    let delegated = SymbolName::parse("org.dosgi.log.api.Logger").unwrap();
    let n = 100_000u32;

    let t0 = Instant::now();
    for _ in 0..n {
        let r = mgr.load_class(id, bundle, &own).unwrap();
        assert_eq!(r.via, LoadPath::Own);
    }
    let own_cost = t0.elapsed() / n;

    let t0 = Instant::now();
    for _ in 0..n {
        let r = mgr.load_class(id, bundle, &delegated).unwrap();
        assert_eq!(r.via, LoadPath::HostDelegation);
    }
    let delegated_cost = t0.elapsed() / n;

    print_table(
        "E3: class lookup latency by path (wall clock)",
        &["path", "latency"],
        &[
            vec![
                "instance-local (own package)".to_string(),
                format!("{own_cost:?}"),
            ],
            vec![
                "host delegation (explicit export)".to_string(),
                format!("{delegated_cost:?}"),
            ],
        ],
    );

    // ------------------------------------------------------------------
    // Safety: non-exported packages do not leak.
    // ------------------------------------------------------------------
    let d2 = InstanceDescriptor::builder("evil", "b")
        .bundle(workloads::WEB_BUNDLE)
        .build(); // no shares at all
    let id2 = mgr.create_instance(d2).unwrap();
    mgr.start_instance(id2).unwrap();
    let bundle2 = mgr
        .instance(id2)
        .unwrap()
        .framework()
        .find_bundle(workloads::WEB_BUNDLE)
        .unwrap();
    let leak = mgr.load_class(id2, bundle2, &delegated);
    let svc = mgr.call_service(id2, workloads::LOG_SERVICE, "log", &dosgi_san::Value::Null);
    println!("\nsafety (leak prevention):");
    println!(
        "  class  org.dosgi.log.api.Logger without export -> {}",
        match leak {
            Err(VosgiError::Load(e)) => format!("DENIED ({e})"),
            other => format!("UNEXPECTED {other:?}"),
        }
    );
    println!(
        "  service {} without export -> {}",
        workloads::LOG_SERVICE,
        match svc {
            Err(VosgiError::Denied(e)) => format!("DENIED ({e})"),
            other => format!("UNEXPECTED {other:?}"),
        }
    );
}
