//! **E13 — real-clock throughput: ops/sec vs thread count.**
//!
//! PR 9's tentpole: the node logic now runs behind the [`Fabric`] trait on
//! either the deterministic simulator or the real-clock runtime
//! (`RealCluster`: one OS thread per node, `mpsc` links, monotonic clock).
//! This experiment measures what the simulator *cannot*: wall-clock
//! throughput of genuinely concurrent nodes.
//!
//! Three sections:
//!
//! 1. **Scaling sweep** — aggregate ops/sec at 1/2/4/8 threads on the two
//!    hot paths: full migration rounds on real-clock clusters, and paced
//!    open-loop admission decisions. Both are latency-bound (protocol
//!    rounds, inter-arrival pacing), so concurrency overlaps the waiting:
//!    the 4-thread cell must reach ≥2.5× the 1-thread cell even on a
//!    single-core host.
//! 2. **Sim-equivalent control** — the same admission op mix, one thread,
//!    unpaced, timestamped from a virtual counter (simulator shape) vs the
//!    real clock. The real-clock runtime abstraction must not tax the hot
//!    path.
//! 3. **Optimization wins** — before/after ns/op for the PR-9 hot-path
//!    work: scratch-reuse wire encode, zero-copy wire decode, pre-sized
//!    SAN codec, sharded copy-on-write registry reads.
//!
//! Writes `results/e13_throughput.txt` and the measured aggregates as a
//! telemetry snapshot, `results/telemetry_e13.json` (validated by
//! `telemetry_check`). The CI guard (`perf_guard --bin`, see
//! `results/perf_baseline_e13.json`) re-measures a reduced version of
//! this sweep on every run.

use dosgi_bench::e13;
use dosgi_bench::{print_table, write_telemetry_snapshot};
use dosgi_telemetry::Telemetry;
use std::time::Duration;

const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Timed window per migration cell — long enough for dozens of rounds.
const MIGRATION_WINDOW: Duration = Duration::from_millis(1500);
/// Timed window per admission cell.
const ADMISSION_WINDOW: Duration = Duration::from_millis(400);

fn main() {
    let mut lines: Vec<String> = Vec::new();
    fn say(lines: &mut Vec<String>, s: String) {
        println!("{s}");
        lines.push(s);
    }

    say(
        &mut lines,
        "E13: real-clock throughput vs thread count".into(),
    );
    say(
        &mut lines,
        format!(
            "host: {} core(s) visible; scaling below comes from latency overlap",
            std::thread::available_parallelism().map_or(1, |n| n.get())
        ),
    );
    say(&mut lines, String::new());

    // ---- 1. scaling sweep --------------------------------------------
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut migration = Vec::new();
    let mut admission = Vec::new();
    for &t in &THREADS {
        let mig = e13::migration_ops_per_sec(t, MIGRATION_WINDOW);
        let adm = e13::admission_ops_per_sec(t, ADMISSION_WINDOW);
        migration.push(mig);
        admission.push(adm);
        rows.push(vec![
            t.to_string(),
            format!("{mig:.1}"),
            format!("{:.2}x", mig / migration[0]),
            format!("{adm:.0}"),
            format!("{:.2}x", adm / admission[0]),
        ]);
    }
    print_table(
        "ops/sec vs threads (real-clock backend)",
        &["threads", "migration/s", "scale", "admission/s", "scale"],
        &rows,
    );
    for r in &rows {
        lines.push(r.join("\t"));
    }

    let mig_speedup = migration[2] / migration[0];
    let adm_speedup = admission[2] / admission[0];
    say(&mut lines, String::new());
    say(
        &mut lines,
        format!(
        "4-thread speedup: migration {mig_speedup:.2}x, admission {adm_speedup:.2}x (claim: >=2.5x)"
    ),
    );

    // ---- 2. sim-equivalent single-thread control ---------------------
    let sim = e13::admission_tight_ops_per_sec(false, Duration::from_millis(300));
    let real = e13::admission_tight_ops_per_sec(true, Duration::from_millis(300));
    say(&mut lines, String::new());
    say(
        &mut lines,
        format!(
        "single-thread admission, unpaced: sim-time {sim:.0} ops/s, real-clock {real:.0} ops/s \
         (ratio {:.2}; the runtime abstraction must not tax the hot path)",
        real / sim
    ),
    );

    // ---- 3. per-optimization wins ------------------------------------
    let wins = e13::optimization_wins();
    let rows: Vec<Vec<String>> = wins
        .iter()
        .map(|w| {
            vec![
                w.name.to_string(),
                format!("{:.0}", w.old_ns),
                format!("{:.0}", w.new_ns),
                format!("{:.2}x", w.speedup()),
            ]
        })
        .collect();
    say(&mut lines, String::new());
    print_table(
        "hot-path optimization wins (ns/op)",
        &["optimization", "before", "after", "speedup"],
        &rows,
    );
    for r in &rows {
        lines.push(r.join("\t"));
    }

    // The measured aggregates as a telemetry snapshot, so the validator
    // covers real-clock results with the same checks as the sim runs.
    let telemetry = Telemetry::new();
    for (i, &t) in THREADS.iter().enumerate() {
        telemetry.gauge_set(&format!("e13.migration.t{t}_ops"), migration[i] as i64);
        telemetry.gauge_set(&format!("e13.admission.t{t}_ops"), admission[i] as i64);
        telemetry.add("e13.cells", 2);
    }
    telemetry.gauge_set("e13.admission.sim_ops", sim as i64);
    telemetry.gauge_set("e13.admission.real_ops", real as i64);
    for w in &wins {
        telemetry.record("e13.win.ns_per_op.before", w.old_ns as u64);
        telemetry.record("e13.win.ns_per_op.after", w.new_ns as u64);
        telemetry.add("e13.wins", 1);
    }
    write_telemetry_snapshot(&telemetry, "e13", 13);

    // Report, then enforce the scaling claim so CI catches a runtime whose
    // concurrency stopped overlapping.
    let path = dosgi_testkit::workspace_root()
        .join("results")
        .join("e13_throughput.txt");
    if let Err(e) = std::fs::write(&path, lines.join("\n") + "\n") {
        eprintln!("e13: could not write {} ({e})", path.display());
    } else {
        println!("\nreport: {}", path.display());
    }

    assert!(
        mig_speedup >= 2.5 && adm_speedup >= 2.5,
        "real-clock backend must reach >=2.5x aggregate ops/sec at 4 threads \
         (measured migration {mig_speedup:.2}x, admission {adm_speedup:.2}x)"
    );
    println!("e13: scaling claim holds");
}
