//! **CI perf guard** for the delta persistence fast path.
//!
//! Replays the deterministic E5 migration scenario (fixed seed, simulated
//! clock — byte counts are exactly reproducible) on **every registered SAN
//! backend** and compares the SAN bytes written/read during the migration
//! round against the committed per-backend baseline
//! (`results/perf_baseline_e5.json` for the map backend,
//! `results/perf_baseline_e5_<backend>.json` for the rest). A regression
//! of more than 10% on either axis fails the build: blowing the
//! change-detection or per-row persistence win is a bug, not noise.
//!
//! Because faults, stats, and change detection live in the `SharedStore`
//! wrapper rather than the backends, a conformant backend observes the
//! *same* byte counts — the per-backend baselines double as a coarse
//! conformance check and will catch a backend that silently re-routes or
//! amplifies traffic.
//!
//! To accept an intentional change, regenerate the baselines with
//! `PERF_GUARD_WRITE_BASELINE=1 cargo run --release -p dosgi-bench --bin
//! perf_guard` and commit the new JSON.

//! The guard also covers the **E14 hot-swap blackout**: the deterministic
//! counter-scale in-place upgrade (fixed seed, fault-free SAN) whose
//! modeled service interruption is exactly reproducible. The blackout has
//! a ceiling (+10% against `results/perf_baseline_e14.json`): a change
//! that widens the swap window — an extra flush, a fatter persist, a
//! slower swap — fails CI rather than silently eroding the µs-scale claim.

//! The guard also covers the **E15 admission-control hot path**: a fixed
//! 2× overload scenario (open-loop Poisson arrivals, class mix, bounded
//! queues) whose completed/shed counts are exactly reproducible on the
//! simulated clock. `completed` has a floor (a drain that stops being
//! work-conserving tanks throughput) and `shed` a ceiling (admission that
//! sheds more at the same load has regressed), both ±10% against
//! `results/perf_baseline_e15_admission.json`.

//! The guard also covers the **E16 series-scrape cost**: the median
//! wall-clock nanoseconds of one [`SeriesScraper`] pass over a 1 000-metric
//! registry. The committed baseline (`results/perf_baseline_e16_scrape.json`)
//! stores a 3×-derated ceiling measured at baseline time — wall time is
//! noisy, so only a scrape that blows *through* that generous ceiling
//! fails: the observability layer must never silently eat the hot path.

use dosgi_core::loadgen::{ClassMix, RateSchedule, ScheduledLoadGenerator};
use dosgi_core::{workloads, ClusterConfig, DosgiCluster};
use dosgi_ipvs::{replicated_service, AdmissionConfig, IpvsDirector, Scheduler};
use dosgi_net::{IpAddr, NodeId, Port, SimDuration, SimTime, SocketAddr};
use dosgi_san::{BackendKind, Value};
use dosgi_testkit::Json;

const TOLERANCE: f64 = 0.10;

fn baseline_file(kind: BackendKind) -> String {
    match kind {
        BackendKind::Map => "perf_baseline_e5.json".to_owned(),
        other => format!("perf_baseline_e5_{}.json", other.name()),
    }
}

/// The deterministic migration round: deploy a counter with a 256 KiB data
/// area on node 0, settle, then migrate it to node 1. Returns the SAN
/// bytes written/read during the round itself.
fn measure(kind: BackendKind) -> (u64, u64) {
    let config = ClusterConfig {
        backend: kind,
        ..ClusterConfig::default()
    };
    let mut c = DosgiCluster::new(3, config, 500);
    c.run_for(SimDuration::from_millis(500));
    c.deploy(workloads::counter_instance("bank", "ctr"), 0)
        .unwrap();
    c.run_for(SimDuration::from_millis(500));
    let ns = "instance/ctr/data/org.app.counter";
    let blob = vec![0u8; 1024];
    for i in 0..256 {
        c.store()
            .put(ns, &format!("blob-{i}"), Value::Bytes(blob.clone()))
            .expect("no faults armed");
    }
    for _ in 0..5 {
        c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
            .unwrap();
    }
    c.store().reset_stats();
    c.migrate("ctr", 1).unwrap();
    c.run_for(SimDuration::from_secs(8));
    // Stats snapshot covers exactly the migration round (the verifying
    // `get` below would add the lazy data-area hydration read).
    let s = c.store().stats();
    assert_eq!(c.home_of("ctr"), Some(1), "migrated");
    assert_eq!(
        c.call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null)
            .unwrap(),
        Value::Int(5),
        "state intact"
    );
    (s.bytes_written, s.bytes_read)
}

/// Guard one backend against its committed baseline. Returns `false` on a
/// regression (or a missing baseline).
fn guard(kind: BackendKind, write_baseline: bool) -> bool {
    let (written, read) = measure(kind);
    println!("perf_guard[{kind}]: e5 migration round: {written} B written, {read} B read");
    let path = dosgi_testkit::workspace_root()
        .join("results")
        .join(baseline_file(kind));

    if write_baseline {
        let body = format!(
            "{{\n  \"scenario\": \"e5_migration_round\",\n  \"backend\": \"{kind}\",\n  \"bytes_written\": {written},\n  \"bytes_read\": {read}\n}}\n"
        );
        std::fs::create_dir_all(path.parent().expect("results dir has a parent"))
            .expect("create results dir");
        std::fs::write(&path, body).expect("write baseline");
        println!(
            "perf_guard[{kind}]: baseline rewritten at {}",
            path.display()
        );
        return true;
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "perf_guard[{kind}]: no baseline at {} ({e})",
                path.display()
            );
            eprintln!("perf_guard: generate one with PERF_GUARD_WRITE_BASELINE=1");
            return false;
        }
    };
    let json = Json::parse(&text).expect("baseline JSON parses");
    let base_written = json
        .get("bytes_written")
        .and_then(Json::as_u64)
        .expect("baseline has bytes_written");
    let base_read = json
        .get("bytes_read")
        .and_then(Json::as_u64)
        .expect("baseline has bytes_read");

    let mut ok = true;
    for (label, now, base) in [
        ("bytes_written", written, base_written),
        ("bytes_read", read, base_read),
    ] {
        let limit = (base as f64 * (1.0 + TOLERANCE)).ceil() as u64;
        let status = if now > limit {
            ok = false;
            "REGRESSION"
        } else {
            "ok"
        };
        println!("perf_guard[{kind}]: {label}: {now} vs baseline {base} (limit {limit}) {status}");
    }
    if !ok {
        eprintln!(
            "perf_guard[{kind}]: SAN byte cost regressed >{:.0}% vs {}",
            TOLERANCE * 100.0,
            path.display()
        );
        eprintln!("perf_guard: if intentional, regenerate with PERF_GUARD_WRITE_BASELINE=1");
    }
    ok
}

/// The deterministic E14 hot-swap round: a counter with 5 increments of
/// state, upgraded in place 1.0.0 → 1.1.0 on a fault-free SAN. Returns
/// the modeled blackout in µs — exact and replayable.
fn measure_hot_swap() -> u64 {
    use dosgi_core::NodeEvent;
    use dosgi_osgi::Version;

    let mut c = DosgiCluster::new(2, ClusterConfig::default(), 14);
    c.run_for(SimDuration::from_millis(500));
    c.deploy(
        workloads::counter_instance_with("bank", "ctr", workloads::COUNTER_WRITE_THROUGH),
        0,
    )
    .unwrap();
    c.run_for(SimDuration::from_secs(1));
    for _ in 0..5 {
        c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
            .unwrap();
    }
    c.upgrade_bundle(
        "ctr",
        workloads::counter_manifest_at(workloads::COUNTER_WRITE_THROUGH, Version::new(1, 1, 0)),
    )
    .unwrap();
    let deadline = c.now() + SimDuration::from_secs(10);
    while c.now() < deadline {
        c.step();
        for (_, ev) in c.take_events() {
            if let NodeEvent::BundleUpgraded { blackout, .. } = ev {
                assert_eq!(
                    c.call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null)
                        .unwrap(),
                    Value::Int(5),
                    "state intact"
                );
                return blackout.as_micros();
            }
        }
    }
    panic!("hot swap did not land on a fault-free SAN");
}

/// Guard the hot-swap blackout: the modeled interruption must not widen
/// beyond the committed baseline (+10%).
fn guard_hot_swap(write_baseline: bool) -> bool {
    let blackout_us = measure_hot_swap();
    println!("perf_guard[hot_swap]: e14 counter-scale swap blackout: {blackout_us} µs");
    let path = dosgi_testkit::workspace_root()
        .join("results")
        .join("perf_baseline_e14.json");

    if write_baseline {
        let body = format!(
            "{{\n  \"scenario\": \"e14_hot_swap_blackout\",\n  \"blackout_us\": {blackout_us}\n}}\n"
        );
        std::fs::create_dir_all(path.parent().expect("results dir has a parent"))
            .expect("create results dir");
        std::fs::write(&path, body).expect("write baseline");
        println!(
            "perf_guard[hot_swap]: baseline rewritten at {}",
            path.display()
        );
        return true;
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "perf_guard[hot_swap]: no baseline at {} ({e})",
                path.display()
            );
            eprintln!("perf_guard: generate one with PERF_GUARD_WRITE_BASELINE=1");
            return false;
        }
    };
    let json = Json::parse(&text).expect("baseline JSON parses");
    let base = json
        .get("blackout_us")
        .and_then(Json::as_u64)
        .expect("baseline has blackout_us");
    let limit = (base as f64 * (1.0 + TOLERANCE)).ceil() as u64;
    let ok = blackout_us <= limit;
    let status = if ok { "ok" } else { "REGRESSION" };
    println!(
        "perf_guard[hot_swap]: blackout_us: {blackout_us} vs baseline {base} (limit {limit}) {status}"
    );
    if !ok {
        eprintln!(
            "perf_guard[hot_swap]: swap blackout widened >{:.0}% vs {}",
            TOLERANCE * 100.0,
            path.display()
        );
        eprintln!("perf_guard: if intentional, regenerate with PERF_GUARD_WRITE_BASELINE=1");
    }
    ok
}

/// The deterministic E15 admission round: one backend at 2000/s with a
/// 64-deep queue under 2× open-loop load for 10 simulated seconds.
/// Returns (offered, completed, shed) — exact, replayable counts.
fn measure_admission() -> (u64, u64, u64) {
    let vip = SocketAddr::new(IpAddr::new(10, 0, 0, 200), Port(80));
    let mut d = IpvsDirector::new();
    d.add_service(
        replicated_service(vip, Scheduler::RoundRobin, &[NodeId(0)])
            .with_admission(AdmissionConfig::per_second(2_000, 64)),
    );
    let mut gen = ScheduledLoadGenerator::new(RateSchedule::constant(4_000.0), 15, SimTime::ZERO);
    let mut mix = ClassMix::standard_web(15);
    let mut client = 0u64;
    let mut now_us = 0u64;
    while now_us < 10_000_000 {
        now_us += 5_000;
        for _ in 0..gen.arrivals_until(SimTime::from_micros(now_us)) {
            client += 1;
            let _ = d.admit(client, vip, mix.sample(), now_us);
        }
        d.drain(vip, now_us);
    }
    let s = d.stats();
    (client, s.completed, s.shed)
}

/// Guard the admission hot path: `completed` must not fall below, and
/// `shed` must not rise above, the committed baseline (±10%).
fn guard_admission(write_baseline: bool) -> bool {
    let (offered, completed, shed) = measure_admission();
    println!(
        "perf_guard[admission]: e15 2x overload round: {offered} offered, \
         {completed} completed, {shed} shed"
    );
    let path = dosgi_testkit::workspace_root()
        .join("results")
        .join("perf_baseline_e15_admission.json");

    if write_baseline {
        let body = format!(
            "{{\n  \"scenario\": \"e15_admission_2x_overload\",\n  \"offered\": {offered},\n  \"completed\": {completed},\n  \"shed\": {shed}\n}}\n"
        );
        std::fs::create_dir_all(path.parent().expect("results dir has a parent"))
            .expect("create results dir");
        std::fs::write(&path, body).expect("write baseline");
        println!(
            "perf_guard[admission]: baseline rewritten at {}",
            path.display()
        );
        return true;
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "perf_guard[admission]: no baseline at {} ({e})",
                path.display()
            );
            eprintln!("perf_guard: generate one with PERF_GUARD_WRITE_BASELINE=1");
            return false;
        }
    };
    let json = Json::parse(&text).expect("baseline JSON parses");
    let base_completed = json
        .get("completed")
        .and_then(Json::as_u64)
        .expect("baseline has completed");
    let base_shed = json
        .get("shed")
        .and_then(Json::as_u64)
        .expect("baseline has shed");

    let mut ok = true;
    let floor = (base_completed as f64 * (1.0 - TOLERANCE)).floor() as u64;
    let status = if completed < floor {
        ok = false;
        "REGRESSION"
    } else {
        "ok"
    };
    println!(
        "perf_guard[admission]: completed: {completed} vs baseline {base_completed} (floor {floor}) {status}"
    );
    let limit = (base_shed as f64 * (1.0 + TOLERANCE)).ceil() as u64;
    let status = if shed > limit {
        ok = false;
        "REGRESSION"
    } else {
        "ok"
    };
    println!(
        "perf_guard[admission]: shed: {shed} vs baseline {base_shed} (limit {limit}) {status}"
    );
    if !ok {
        eprintln!(
            "perf_guard[admission]: admission hot path regressed >{:.0}% vs {}",
            TOLERANCE * 100.0,
            path.display()
        );
        eprintln!("perf_guard: if intentional, regenerate with PERF_GUARD_WRITE_BASELINE=1");
    }
    ok
}

/// The E13 real-clock throughput guard: a reduced version of the
/// `e13_throughput` sweep. Wall-clock numbers are noisy, so the committed
/// baseline stores **pre-derated floors** (half the ops/sec measured at
/// baseline time); the usual ±10% tolerance then applies to those floors.
/// Two ratio floors ride along: 4-thread migration speedup (the runtime's
/// concurrency must keep overlapping latency) and the real-vs-sim
/// single-thread admission ratio (the real-clock abstraction must not tax
/// the hot path).
fn guard_e13(write_baseline: bool) -> bool {
    use std::time::Duration;

    let mig1 = dosgi_bench::e13::migration_ops_per_sec(1, Duration::from_millis(800));
    let mig4 = dosgi_bench::e13::migration_ops_per_sec(4, Duration::from_millis(800));
    let sim = dosgi_bench::e13::admission_tight_ops_per_sec(false, Duration::from_millis(200));
    let real = dosgi_bench::e13::admission_tight_ops_per_sec(true, Duration::from_millis(200));
    let speedup = mig4 / mig1;
    let ratio = real / sim;
    println!(
        "perf_guard[e13]: migration {mig1:.1} ops/s @1T, {mig4:.1} ops/s @4T \
         (speedup {speedup:.2}x); tight admission real/sim ratio {ratio:.2}"
    );
    let path = dosgi_testkit::workspace_root()
        .join("results")
        .join("perf_baseline_e13.json");

    if write_baseline {
        let body = format!(
            "{{\n  \"scenario\": \"e13_real_clock_throughput\",\n  \
             \"migration_1t_floor\": {},\n  \"migration_4t_floor\": {},\n  \
             \"speedup_4t_floor_x100\": 200,\n  \"tight_ratio_floor_x100\": 50\n}}\n",
            (mig1 * 0.5) as u64,
            (mig4 * 0.5) as u64,
        );
        std::fs::create_dir_all(path.parent().expect("results dir has a parent"))
            .expect("create results dir");
        std::fs::write(&path, body).expect("write baseline");
        println!("perf_guard[e13]: baseline rewritten at {}", path.display());
        return true;
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_guard[e13]: no baseline at {} ({e})", path.display());
            eprintln!("perf_guard: generate one with PERF_GUARD_WRITE_BASELINE=1");
            return false;
        }
    };
    let json = Json::parse(&text).expect("baseline JSON parses");
    let field = |name: &str| {
        json.get(name)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("baseline has {name}"))
    };

    let mut ok = true;
    for (label, now, floor) in [
        ("migration_1t_ops", mig1, field("migration_1t_floor") as f64),
        ("migration_4t_ops", mig4, field("migration_4t_floor") as f64),
        (
            "speedup_4t_x100",
            speedup * 100.0,
            field("speedup_4t_floor_x100") as f64,
        ),
        (
            "tight_ratio_x100",
            ratio * 100.0,
            field("tight_ratio_floor_x100") as f64,
        ),
    ] {
        let limit = floor * (1.0 - TOLERANCE);
        let status = if now < limit {
            ok = false;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "perf_guard[e13]: {label}: {now:.1} vs floor {floor:.1} (limit {limit:.1}) {status}"
        );
    }
    if !ok {
        eprintln!(
            "perf_guard[e13]: real-clock throughput regressed below the derated \
             floors in {}",
            path.display()
        );
        eprintln!("perf_guard: if intentional, regenerate with PERF_GUARD_WRITE_BASELINE=1");
    }
    ok
}

/// One scrape pass over a registry with 600 counters, 300 gauges and 100
/// histograms (the micro bench's `telemetry/scrape_1k_metrics` shape).
/// Returns the median ns of 64 timed scrapes after 8 warmups.
fn measure_scrape_ns() -> u64 {
    use dosgi_telemetry::{ScrapeConfig, SeriesScraper, Telemetry};
    let t = Telemetry::new();
    for i in 0..600u64 {
        t.add(&format!("bench.ctr.{i:03}"), i);
    }
    for i in 0..300u64 {
        t.gauge_set(&format!("bench.gauge.{i:03}"), i as i64);
    }
    for i in 0..100u64 {
        let name = format!("bench.hist.{i:02}");
        for v in [100, 2_000, 65_000, 1_000_000] {
            t.record(&name, v + i);
        }
    }
    let mut scraper = SeriesScraper::new(ScrapeConfig::default());
    let mut now_us = 0u64;
    let mut samples = Vec::with_capacity(64);
    for i in 0..72u32 {
        now_us += 250_000;
        t.add("bench.ctr.000", 1);
        t.record("bench.hist.00", u64::from(i) * 131);
        let start = std::time::Instant::now();
        assert!(scraper.scrape(&t, now_us), "every pass must be due");
        let ns = start.elapsed().as_nanos() as u64;
        if i >= 8 {
            samples.push(ns);
        }
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Guard the scrape cost: the measured median must stay under the
/// committed 3×-derated ceiling (±10% tolerance on top).
fn guard_scrape(write_baseline: bool) -> bool {
    let ns = measure_scrape_ns();
    println!("perf_guard[scrape]: e16 series scrape over 1k metrics: {ns} ns median");
    let path = dosgi_testkit::workspace_root()
        .join("results")
        .join("perf_baseline_e16_scrape.json");

    if write_baseline {
        let body = format!(
            "{{\n  \"scenario\": \"e16_scrape_1k_metrics\",\n  \
             \"median_ns_at_baseline\": {ns},\n  \"ceiling_ns\": {}\n}}\n",
            ns * 3
        );
        std::fs::create_dir_all(path.parent().expect("results dir has a parent"))
            .expect("create results dir");
        std::fs::write(&path, body).expect("write baseline");
        println!(
            "perf_guard[scrape]: baseline rewritten at {}",
            path.display()
        );
        return true;
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "perf_guard[scrape]: no baseline at {} ({e})",
                path.display()
            );
            eprintln!("perf_guard: generate one with PERF_GUARD_WRITE_BASELINE=1");
            return false;
        }
    };
    let json = Json::parse(&text).expect("baseline JSON parses");
    let ceiling = json
        .get("ceiling_ns")
        .and_then(Json::as_u64)
        .expect("baseline has ceiling_ns");
    let limit = (ceiling as f64 * (1.0 + TOLERANCE)).ceil() as u64;
    let ok = ns <= limit;
    println!(
        "perf_guard[scrape]: median_ns: {ns} vs ceiling {ceiling} (limit {limit}) {}",
        if ok { "ok" } else { "REGRESSION" }
    );
    if !ok {
        eprintln!(
            "perf_guard[scrape]: the series scrape blew through its derated \
             ceiling in {}",
            path.display()
        );
        eprintln!("perf_guard: if intentional, regenerate with PERF_GUARD_WRITE_BASELINE=1");
    }
    ok
}

fn main() {
    let write_baseline = std::env::var("PERF_GUARD_WRITE_BASELINE").is_ok();
    let mut failed = false;
    for kind in BackendKind::all() {
        if !guard(kind, write_baseline) {
            failed = true;
        }
    }
    if !guard_admission(write_baseline) {
        failed = true;
    }
    if !guard_hot_swap(write_baseline) {
        failed = true;
    }
    if !guard_e13(write_baseline) {
        failed = true;
    }
    if !guard_scrape(write_baseline) {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if !write_baseline {
        println!(
            "perf_guard: within tolerance on every backend, the admission hot \
             path, the hot-swap blackout, the e13 real-clock floors and the \
             e16 scrape ceiling"
        );
    }
}
