//! Seeded chaos sweep: generate nemesis schedules, apply each to a fresh
//! cluster, check the dependability invariants, and verify deterministic
//! replay (every schedule runs twice; the two reports must fingerprint
//! identically).
//!
//! Environment overrides (all optional):
//!
//! * `CHAOS_SEEDS`  — how many schedules to run (default 10)
//! * `CHAOS_SEED0`  — first seed (default 1; seeds are consecutive)
//! * `CHAOS_NODES`  — cluster size (default 5)
//! * `CHAOS_FAULTS` — fault injections per schedule (default 6)
//!
//! Exit status is non-zero if any run violates an invariant or fails to
//! replay; the offending seed is printed so
//! `CHAOS_SEED0=<seed> CHAOS_SEEDS=1 cargo run --bin chaos` reproduces it
//! exactly.
//!
//! Each schedule runs twice: once with telemetry enabled (all seeds share
//! one registry) and once with it disabled. The fingerprint comparison
//! therefore verifies deterministic replay **and** that instrumentation is
//! strictly passive. The sweep's aggregated metrics land in
//! `results/telemetry_chaos.json`.

use dosgi_core::chaos::{run_nemesis_with_telemetry, ChaosOptions};
use dosgi_telemetry::Telemetry;
use dosgi_testkit::nemesis::{NemesisConfig, NemesisPlan};
use dosgi_testkit::workspace_root;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seeds = env_u64("CHAOS_SEEDS", 10);
    let seed0 = env_u64("CHAOS_SEED0", 1);
    let nodes = env_u64("CHAOS_NODES", 5) as usize;
    let faults = env_u64("CHAOS_FAULTS", 6) as usize;
    let config = NemesisConfig {
        faults,
        ..NemesisConfig::default()
    };
    let opts = ChaosOptions::default();

    println!("chaos sweep: {seeds} schedules, {nodes} nodes, {faults} faults each");
    let sweep_telemetry = Telemetry::new();
    let mut failed = false;
    for seed in seed0..seed0 + seeds {
        let plan = NemesisPlan::generate(seed, nodes, &config);
        // Instrumented run vs uninstrumented replay: equal fingerprints
        // prove both determinism and telemetry passivity.
        let a = run_nemesis_with_telemetry(&plan, &opts, sweep_telemetry.clone());
        let b = run_nemesis_with_telemetry(&plan, &opts, Telemetry::disabled());
        let replayed = a.fingerprint == b.fingerprint;
        let status = if !a.ok() {
            failed = true;
            "VIOLATION"
        } else if !replayed {
            failed = true;
            "NON-DETERMINISTIC"
        } else {
            "ok"
        };
        println!(
            "  seed {seed:>4}  steps {:>2}  acked {:>5}  fingerprint {:016x}  {status}",
            a.steps_applied, a.acked, a.fingerprint
        );
        for v in &a.violations {
            println!("      {v}");
        }
        if !a.ok() || !replayed {
            println!(
                "      replay with: CHAOS_SEED0={seed} CHAOS_SEEDS=1 \
                 CHAOS_NODES={nodes} CHAOS_FAULTS={faults} \
                 cargo run --release -p dosgi-bench --bin chaos"
            );
        }
    }

    let dir = workspace_root().join("results");
    let snapshot_note = match std::fs::create_dir_all(&dir)
        .and_then(|()| sweep_telemetry.snapshot("chaos", seed0).write_to(&dir))
    {
        Ok(path) => format!("telemetry snapshot: {}", path.display()),
        Err(e) => format!("could not write telemetry snapshot: {e}"),
    };
    println!("{snapshot_note}");
    if failed {
        std::process::exit(1);
    }
    println!(
        "all schedules held every invariant and replayed identically \
         (with and without telemetry)"
    );
}
