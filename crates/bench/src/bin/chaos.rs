//! Seeded chaos sweep: generate nemesis schedules, apply each to a fresh
//! cluster, check the dependability invariants, and verify deterministic
//! replay (every schedule runs twice; the two reports must fingerprint
//! identically).
//!
//! Environment overrides (all optional):
//!
//! * `CHAOS_SEEDS`   — how many schedules to run (default 10)
//! * `CHAOS_SEED0`   — first seed (default 1; seeds are consecutive)
//! * `CHAOS_NODES`   — cluster size (default 5)
//! * `CHAOS_FAULTS`  — fault injections per schedule (default 6)
//! * `CHAOS_BACKEND` — primary SAN backend (`map` default, or `log`)
//!
//! Exit status is non-zero if any run violates an invariant or fails to
//! replay; the offending seed is printed so
//! `CHAOS_SEED0=<seed> CHAOS_SEEDS=1 cargo run --bin chaos` reproduces it
//! exactly.
//!
//! Every schedule also arms a **rolling upgrade wave** 10 s into the run
//! (`CHAOS_WAVE_AT_US` overrides; `CHAOS_WAVE_AT_US=0` disables): the
//! counter bundle is hot-swapped to 1.1.0 node by node while the nemesis
//! is firing, so crashes, partitions and SAN faults land mid-handoff. The
//! invariants must hold anyway, and the wave's outcome is part of the
//! fingerprint — so the passivity and backend-conformance cross-checks
//! below cover the upgrade path too.
//!
//! Each schedule runs **five** times: on the primary backend with
//! telemetry enabled (all seeds share one registry), on the primary
//! backend with telemetry disabled, on the *other* registered SAN
//! backend (telemetry disabled), and — with the time-series scraper and
//! SLO engine switched on — once more on each backend. All five
//! fingerprints must be equal, which verifies deterministic replay,
//! instrumentation passivity (metrics, causal tracing, *and* series
//! scraping — the scraper must never touch the fault-injector RNG
//! stream), **and** storage-backend conformance on every seed — the
//! log-structured store must be observably indistinguishable from the
//! map store under the full fault gauntlet.
//! The sweep's aggregated metrics land in `results/telemetry_chaos.json`;
//! each seed's merged causal trace lands in
//! `results/trace_chaos_s<seed>.json` (Chrome trace-event format —
//! analyze with the `trace_check` bin, or load into Perfetto). The first
//! seed's trace is additionally replayed and byte-compared, pinning the
//! whole export path as deterministic.

use dosgi_core::chaos::{run_nemesis_with_telemetry, ChaosOptions};
use dosgi_san::BackendKind;
use dosgi_telemetry::Telemetry;
use dosgi_testkit::nemesis::{NemesisConfig, NemesisPlan};
use dosgi_testkit::workspace_root;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seeds = env_u64("CHAOS_SEEDS", 10);
    let seed0 = env_u64("CHAOS_SEED0", 1);
    let nodes = env_u64("CHAOS_NODES", 5) as usize;
    let faults = env_u64("CHAOS_FAULTS", 6) as usize;
    let backend = match std::env::var("CHAOS_BACKEND") {
        Ok(name) => BackendKind::from_name(&name)
            .unwrap_or_else(|| panic!("CHAOS_BACKEND={name:?} is not a registered backend")),
        Err(_) => BackendKind::Map,
    };
    let config = NemesisConfig {
        faults,
        ..NemesisConfig::default()
    };
    let wave_at_us = env_u64("CHAOS_WAVE_AT_US", 10_000_000);
    let opts = ChaosOptions {
        backend,
        upgrade_wave_at_us: (wave_at_us > 0).then_some(wave_at_us),
        ..ChaosOptions::default()
    };
    // Every other registered backend cross-checks the primary on every
    // seed: conformant backends may not change a single fingerprint bit.
    let other_backends: Vec<BackendKind> = BackendKind::all()
        .into_iter()
        .filter(|k| *k != backend)
        .collect();

    println!(
        "chaos sweep: {seeds} schedules, {nodes} nodes, {faults} faults each, \
         backend {backend} (cross-checked against {})",
        other_backends
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(",")
    );
    let sweep_telemetry = Telemetry::new();
    let results_dir = workspace_root().join("results");
    let mut failed = false;
    for seed in seed0..seed0 + seeds {
        let plan = NemesisPlan::generate(seed, nodes, &config);
        // Instrumented run vs uninstrumented replay: equal fingerprints
        // prove both determinism and instrumentation passivity (the
        // uninstrumented run records no metrics *and* no trace).
        let a = run_nemesis_with_telemetry(&plan, &opts, sweep_telemetry.clone());
        let b = run_nemesis_with_telemetry(&plan, &opts, Telemetry::disabled());
        let replayed = a.fingerprint == b.fingerprint;
        // Cross-backend conformance on this seed.
        let mut backend_mismatch: Option<BackendKind> = None;
        for &other in &other_backends {
            let x = run_nemesis_with_telemetry(
                &plan,
                &ChaosOptions {
                    backend: other,
                    ..opts.clone()
                },
                Telemetry::disabled(),
            );
            if x.fingerprint != a.fingerprint {
                backend_mismatch = Some(other);
                break;
            }
        }
        // Series-scraping passivity: enabling the time-series scraper and
        // SLO engine must not change a single fingerprint bit, on the
        // primary backend *or* on any other registered backend.
        let mut series_mismatch: Option<BackendKind> = None;
        for &kind in std::iter::once(&backend).chain(other_backends.iter()) {
            let s = run_nemesis_with_telemetry(
                &plan,
                &ChaosOptions {
                    backend: kind,
                    series: true,
                    ..opts.clone()
                },
                Telemetry::new(),
            );
            if s.fingerprint != a.fingerprint {
                series_mismatch = Some(kind);
                break;
            }
        }
        let trace_label = format!("chaos_s{seed}");
        let trace_path = match a.trace.write_to(&results_dir, &trace_label, seed) {
            Ok(p) => p.display().to_string(),
            Err(e) => {
                failed = true;
                format!("<unwritable: {e}>")
            }
        };
        // The first seed pins the trace export itself: a third run must
        // serialize its causal record byte-for-byte identically.
        let trace_replayed = if seed == seed0 {
            let c = run_nemesis_with_telemetry(&plan, &opts, Telemetry::new());
            a.trace.to_chrome_json(&trace_label, seed) == c.trace.to_chrome_json(&trace_label, seed)
        } else {
            true
        };
        let status = if !a.ok() {
            failed = true;
            "VIOLATION"
        } else if !replayed {
            failed = true;
            "NON-DETERMINISTIC"
        } else if backend_mismatch.is_some() {
            failed = true;
            "BACKEND-DIVERGENCE"
        } else if series_mismatch.is_some() {
            failed = true;
            "SERIES-NOT-PASSIVE"
        } else if !trace_replayed {
            failed = true;
            "TRACE-NON-DETERMINISTIC"
        } else {
            "ok"
        };
        let (swapped, skipped) = a
            .wave
            .as_ref()
            .map(|w| (w.upgraded.len(), w.skipped_nodes.len()))
            .unwrap_or((0, 0));
        println!(
            "  seed {seed:>4}  steps {:>2}  acked {:>5}  spans {:>4}  \
             swapped {swapped}/{skipped} skip  fingerprint {:016x}  {status}",
            a.steps_applied,
            a.acked,
            a.trace.events.len(),
            a.fingerprint
        );
        for v in &a.violations {
            println!("      {v}");
        }
        if let Some(other) = backend_mismatch {
            println!(
                "      backend `{other}` fingerprints differently from `{backend}` on this seed"
            );
        }
        if let Some(kind) = series_mismatch {
            println!(
                "      enabling series scraping on backend `{kind}` changed this seed's fingerprint"
            );
        }
        if status != "ok" {
            println!(
                "      replay with: CHAOS_SEED0={seed} CHAOS_SEEDS=1 \
                 CHAOS_NODES={nodes} CHAOS_FAULTS={faults} CHAOS_BACKEND={} \
                 cargo run --release -p dosgi-bench --bin chaos",
                backend.name()
            );
            println!("      causal trace: {trace_path}");
        }
    }

    let dir = results_dir;
    let snapshot_note = match std::fs::create_dir_all(&dir)
        .and_then(|()| sweep_telemetry.snapshot("chaos", seed0).write_to(&dir))
    {
        Ok(path) => format!("telemetry snapshot: {}", path.display()),
        Err(e) => format!("could not write telemetry snapshot: {e}"),
    };
    println!("{snapshot_note}");
    if failed {
        std::process::exit(1);
    }
    println!(
        "all schedules held every invariant and replayed identically \
         (with and without telemetry, with and without series scraping, \
         across every storage backend); causal traces under {}",
        dir.join("trace_chaos_s<seed>.json").display()
    );
}
