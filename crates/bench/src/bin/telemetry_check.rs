//! Schema check for telemetry snapshots: every `results/telemetry_*.json`
//! must parse as strict JSON and carry the v3 snapshot schema — a
//! `schema_version`, the producing run's `seed`, a non-empty `counters`
//! object (a snapshot with no counters means the instrumentation went
//! dark, which is a wiring bug, not an empty workload), coherent
//! histogram entries (`p50`/`p95`/`p99` are integers when `count > 0`,
//! null otherwise, ordered `p50 <= p95 <= p99`, clamped inside
//! `[min, max]`, and the sparse bucket counts sum exactly to `count`),
//! and a well-formed alert timeline: for each SLO, events in
//! non-decreasing `at_us` order, strictly alternating
//! `firing`/`resolved` starting with `firing` (a trailing still-open
//! `firing` is legal), every `window` either `fast` or `slow`.
//!
//! The E15 overload snapshot (`telemetry_e15.json`) additionally must
//! carry live admission-control counters — `ipvs.queued`, `ipvs.shed` and
//! `ipvs.deadline_missed` all present and non-zero (the overload sweep
//! queues, sheds and busts deadlines by construction; a zero means the
//! admission instrumentation went dark). The E13 (real-clock throughput)
//! and E16 (burn-rate alerting) snapshots must exist at all — those bins
//! emit them by contract.
//!
//! Run after the bins that emit snapshots (the chaos sweep at minimum);
//! `scripts/check.sh` wires it in. Exits non-zero listing every violation.

use dosgi_telemetry::snapshot::SCHEMA_VERSION;
use dosgi_testkit::{workspace_root, Json};

fn check_file(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let version = json
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing integer `schema_version`")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    json.get("seed")
        .and_then(Json::as_u64)
        .ok_or("missing integer `seed`")?;
    let counters = json
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("missing object `counters`")?;
    if counters.is_empty() {
        return Err("`counters` is empty — instrumentation recorded nothing".into());
    }
    let histograms = json
        .get("histograms")
        .and_then(Json::as_obj)
        .ok_or("missing object `histograms`")?;
    for (name, h) in histograms {
        check_histogram(name, h)?;
    }
    let alerts = json
        .get("alerts")
        .and_then(Json::as_arr)
        .ok_or("missing array `alerts` (schema v3)")?;
    check_alert_timeline(alerts)?;
    if path
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n == "telemetry_e15.json")
    {
        check_admission_counters(&json)?;
    }
    Ok(())
}

/// The E15 overload snapshot must show the admission layer actually
/// working: queueing, shedding and deadline accounting all live.
fn check_admission_counters(json: &Json) -> Result<(), String> {
    for key in ["ipvs.queued", "ipvs.shed", "ipvs.deadline_missed"] {
        let v = json
            .get("counters")
            .and_then(|c| c.get(key))
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("e15 snapshot: missing integer counter `{key}`"))?;
        if v == 0 {
            return Err(format!(
                "e15 snapshot: counter `{key}` is zero — the overload sweep \
                 must exercise the admission path"
            ));
        }
    }
    Ok(())
}

/// v3 alert-timeline well-formedness: every event carries a `slo`
/// string, integer `at_us` and `burn_x100`, `state` in
/// {`firing`, `resolved`}, `window` in {`fast`, `slow`}; per SLO, the
/// events are in non-decreasing time order and strictly alternate
/// firing → resolved → firing…, starting with `firing`. A timeline may
/// end on `firing` (the alert was still open when the snapshot was
/// taken), but never on two of the same state in a row.
fn check_alert_timeline(alerts: &[Json]) -> Result<(), String> {
    let mut last: std::collections::BTreeMap<&str, (u64, bool)> = std::collections::BTreeMap::new();
    for (i, a) in alerts.iter().enumerate() {
        let slo = a
            .get("slo")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("alert[{i}]: missing string `slo`"))?;
        let at_us = a
            .get("at_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("alert[{i}]: missing integer `at_us`"))?;
        a.get("burn_x100")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("alert[{i}]: missing integer `burn_x100`"))?;
        let state = a
            .get("state")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("alert[{i}]: missing string `state`"))?;
        let firing = match state {
            "firing" => true,
            "resolved" => false,
            other => return Err(format!("alert[{i}]: bad state {other:?}")),
        };
        match a.get("window").and_then(Json::as_str) {
            Some("fast" | "slow") => {}
            other => return Err(format!("alert[{i}]: bad window {other:?}")),
        }
        match last.get(slo) {
            None => {
                if !firing {
                    return Err(format!(
                        "alert[{i}]: slo {slo:?} resolves before ever firing"
                    ));
                }
            }
            Some(&(prev_at, prev_firing)) => {
                if at_us < prev_at {
                    return Err(format!(
                        "alert[{i}]: slo {slo:?} goes back in time ({at_us} < {prev_at})"
                    ));
                }
                if firing == prev_firing {
                    return Err(format!(
                        "alert[{i}]: slo {slo:?} repeats state {state:?} without a transition"
                    ));
                }
            }
        }
        last.insert(slo, (at_us, firing));
    }
    Ok(())
}

/// A percentile field is either a u64 (count > 0) or null (empty).
fn percentile_field(h: &Json, name: &str, key: &str) -> Result<Option<u64>, String> {
    let field = h
        .get(key)
        .ok_or_else(|| format!("histogram {name:?}: missing `{key}`"))?;
    if field.is_null() {
        return Ok(None);
    }
    field
        .as_u64()
        .map(Some)
        .ok_or_else(|| format!("histogram {name:?}: `{key}` is neither integer nor null"))
}

/// v2 percentile coherence: present iff non-empty, ordered, within range.
fn check_histogram(name: &str, h: &Json) -> Result<(), String> {
    let count = h
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("histogram {name:?}: missing integer `count`"))?;
    let min = percentile_field(h, name, "min")?;
    let max = percentile_field(h, name, "max")?;
    let p50 = percentile_field(h, name, "p50")?;
    let p95 = percentile_field(h, name, "p95")?;
    let p99 = percentile_field(h, name, "p99")?;
    if count == 0 {
        if p50.is_some() || p95.is_some() || p99.is_some() {
            return Err(format!(
                "histogram {name:?}: empty but carries percentile values"
            ));
        }
        return Ok(());
    }
    let (p50, p95, p99) = match (p50, p95, p99) {
        (Some(a), Some(b), Some(c)) => (a, b, c),
        _ => {
            return Err(format!(
                "histogram {name:?}: count {count} but a percentile is null"
            ))
        }
    };
    if !(p50 <= p95 && p95 <= p99) {
        return Err(format!(
            "histogram {name:?}: percentiles unordered (p50 {p50}, p95 {p95}, p99 {p99})"
        ));
    }
    let (min, max) = match (min, max) {
        (Some(lo), Some(hi)) => (lo, hi),
        _ => {
            return Err(format!(
                "histogram {name:?}: count {count} but min/max null"
            ))
        }
    };
    if p50 < min || p99 > max {
        return Err(format!(
            "histogram {name:?}: percentiles escape [{min}, {max}] (p50 {p50}, p99 {p99})"
        ));
    }
    // The sparse bucket list must account for every recorded sample.
    let buckets = h
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("histogram {name:?}: missing array `buckets`"))?;
    let mut sum: u64 = 0;
    let mut prev_idx: Option<u64> = None;
    for (i, b) in buckets.iter().enumerate() {
        let idx = b
            .idx(0)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("histogram {name:?}: bucket[{i}] has no integer index"))?;
        let n = b
            .idx(1)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("histogram {name:?}: bucket[{i}] has no integer count"))?;
        if n == 0 {
            return Err(format!(
                "histogram {name:?}: bucket[{i}] is empty but serialized (sparse form)"
            ));
        }
        if prev_idx.is_some_and(|p| idx <= p) {
            return Err(format!(
                "histogram {name:?}: bucket indices not strictly increasing at [{i}]"
            ));
        }
        prev_idx = Some(idx);
        sum += n;
    }
    if sum != count {
        return Err(format!(
            "histogram {name:?}: bucket counts sum to {sum}, `count` says {count}"
        ));
    }
    Ok(())
}

fn main() {
    let dir = workspace_root().join("results");
    let mut snapshots: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("telemetry_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    snapshots.sort();
    if snapshots.is_empty() {
        eprintln!(
            "no telemetry snapshots under {} — run the chaos sweep (or an \
             instrumented bench bin) first",
            dir.display()
        );
        std::process::exit(1);
    }
    let mut failed = false;
    // These bins emit their snapshot by contract; absence means the
    // experiment ran without its instrumentation (or didn't run).
    for required in ["telemetry_e13.json", "telemetry_e16.json"] {
        if !snapshots.iter().any(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n == required)
        }) {
            failed = true;
            println!(
                "  BAD {}: required snapshot missing",
                dir.join(required).display()
            );
        }
    }
    for path in &snapshots {
        match check_file(path) {
            Ok(()) => println!("  ok  {}", path.display()),
            Err(e) => {
                failed = true;
                println!("  BAD {}: {e}", path.display());
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("{} telemetry snapshot(s) schema-valid", snapshots.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(json: &str) -> Json {
        Json::parse(json).expect("test histogram parses")
    }

    #[test]
    fn valid_histogram_passes() {
        let h = hist(
            r#"{"count":3,"sum":30,"min":8,"max":16,"p50":8,"p95":16,"p99":16,
                "buckets":[[4,2],[5,1]]}"#,
        );
        assert!(check_histogram("ok", &h).is_ok());
    }

    #[test]
    fn bucket_sum_mismatch_is_caught() {
        // count says 3, buckets account for 4: a recompute bug upstream.
        let h = hist(
            r#"{"count":3,"sum":30,"min":8,"max":16,"p50":8,"p95":16,"p99":16,
                "buckets":[[4,3],[5,1]]}"#,
        );
        let err = check_histogram("bad", &h).unwrap_err();
        assert!(err.contains("sum to 4"), "{err}");
    }

    #[test]
    fn unordered_percentiles_are_caught() {
        let h = hist(
            r#"{"count":2,"sum":30,"min":8,"max":16,"p50":16,"p95":8,"p99":16,
                "buckets":[[4,1],[5,1]]}"#,
        );
        let err = check_histogram("bad", &h).unwrap_err();
        assert!(err.contains("unordered"), "{err}");
    }

    #[test]
    fn unsorted_bucket_indices_are_caught() {
        let h = hist(
            r#"{"count":2,"sum":30,"min":8,"max":16,"p50":8,"p95":16,"p99":16,
                "buckets":[[5,1],[4,1]]}"#,
        );
        let err = check_histogram("bad", &h).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
    }

    fn alerts(json: &str) -> Vec<Json> {
        Json::parse(json)
            .expect("test alerts parse")
            .as_arr()
            .expect("array")
            .to_vec()
    }

    #[test]
    fn well_formed_timeline_passes() {
        // One closed incident, one still open on a second SLO: legal.
        let a = alerts(
            r#"[
              {"slo":"a","at_us":10,"state":"firing","window":"fast","burn_x100":1200},
              {"slo":"b","at_us":15,"state":"firing","window":"slow","burn_x100":300},
              {"slo":"a","at_us":20,"state":"resolved","window":"fast","burn_x100":90}
            ]"#,
        );
        assert!(check_alert_timeline(&a).is_ok());
    }

    #[test]
    fn resolve_before_fire_is_caught() {
        let a =
            alerts(r#"[{"slo":"a","at_us":10,"state":"resolved","window":"fast","burn_x100":1}]"#);
        let err = check_alert_timeline(&a).unwrap_err();
        assert!(err.contains("before ever firing"), "{err}");
    }

    #[test]
    fn double_fire_without_resolve_is_caught() {
        let a = alerts(
            r#"[
              {"slo":"a","at_us":10,"state":"firing","window":"fast","burn_x100":1200},
              {"slo":"a","at_us":20,"state":"firing","window":"slow","burn_x100":1300}
            ]"#,
        );
        let err = check_alert_timeline(&a).unwrap_err();
        assert!(err.contains("without a transition"), "{err}");
    }

    #[test]
    fn time_regression_and_bad_enums_are_caught() {
        let back = alerts(
            r#"[
              {"slo":"a","at_us":20,"state":"firing","window":"fast","burn_x100":1},
              {"slo":"a","at_us":10,"state":"resolved","window":"fast","burn_x100":1}
            ]"#,
        );
        assert!(check_alert_timeline(&back)
            .unwrap_err()
            .contains("back in time"));
        let state =
            alerts(r#"[{"slo":"a","at_us":1,"state":"open","window":"fast","burn_x100":1}]"#);
        assert!(check_alert_timeline(&state)
            .unwrap_err()
            .contains("bad state"));
        let window =
            alerts(r#"[{"slo":"a","at_us":1,"state":"firing","window":"wide","burn_x100":1}]"#);
        assert!(check_alert_timeline(&window)
            .unwrap_err()
            .contains("bad window"));
    }

    #[test]
    fn hand_built_bad_snapshot_fails_and_good_passes() {
        let dir = std::env::temp_dir().join(format!("telemetry_check_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("telemetry_good.json");
        std::fs::write(
            &good,
            r#"{"schema_version":3,"label":"t","seed":1,
                "counters":{"x":1},"gauges":{},
                "histograms":{"h":{"count":1,"sum":8,"min":8,"max":8,
                  "p50":8,"p95":8,"p99":8,"buckets":[[4,1]]}},
                "open_spans":[],"alerts":[],"dropped_spans":0}"#,
        )
        .unwrap();
        assert!(check_file(&good).is_ok());
        let bad = dir.join("telemetry_bad.json");
        std::fs::write(
            &bad,
            r#"{"schema_version":3,"label":"t","seed":1,
                "counters":{"x":1},"gauges":{},
                "histograms":{"h":{"count":5,"sum":8,"min":8,"max":8,
                  "p50":8,"p95":8,"p99":8,"buckets":[[4,1]]}},
                "open_spans":[],"alerts":[],"dropped_spans":0}"#,
        )
        .unwrap();
        assert!(check_file(&bad).unwrap_err().contains("bucket counts"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
