//! Schema check for telemetry snapshots: every `results/telemetry_*.json`
//! must parse as strict JSON and carry the v2 snapshot schema — a
//! `schema_version`, the producing run's `seed`, a non-empty `counters`
//! object (a snapshot with no counters means the instrumentation went
//! dark, which is a wiring bug, not an empty workload), and coherent
//! percentile summaries on every histogram entry: `p50`/`p95`/`p99` are
//! integers when `count > 0` (null otherwise), ordered
//! `p50 <= p95 <= p99`, and clamped inside `[min, max]`.
//!
//! The E15 overload snapshot (`telemetry_e15.json`) additionally must
//! carry live admission-control counters — `ipvs.queued`, `ipvs.shed` and
//! `ipvs.deadline_missed` all present and non-zero (the overload sweep
//! queues, sheds and busts deadlines by construction; a zero means the
//! admission instrumentation went dark).
//!
//! Run after the bins that emit snapshots (the chaos sweep at minimum);
//! `scripts/check.sh` wires it in. Exits non-zero listing every violation.

use dosgi_telemetry::snapshot::SCHEMA_VERSION;
use dosgi_testkit::{workspace_root, Json};

fn check_file(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let version = json
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing integer `schema_version`")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    json.get("seed")
        .and_then(Json::as_u64)
        .ok_or("missing integer `seed`")?;
    let counters = json
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("missing object `counters`")?;
    if counters.is_empty() {
        return Err("`counters` is empty — instrumentation recorded nothing".into());
    }
    let histograms = json
        .get("histograms")
        .and_then(Json::as_obj)
        .ok_or("missing object `histograms`")?;
    for (name, h) in histograms {
        check_histogram(name, h)?;
    }
    if path
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n == "telemetry_e15.json")
    {
        check_admission_counters(&json)?;
    }
    Ok(())
}

/// The E15 overload snapshot must show the admission layer actually
/// working: queueing, shedding and deadline accounting all live.
fn check_admission_counters(json: &Json) -> Result<(), String> {
    for key in ["ipvs.queued", "ipvs.shed", "ipvs.deadline_missed"] {
        let v = json
            .get("counters")
            .and_then(|c| c.get(key))
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("e15 snapshot: missing integer counter `{key}`"))?;
        if v == 0 {
            return Err(format!(
                "e15 snapshot: counter `{key}` is zero — the overload sweep \
                 must exercise the admission path"
            ));
        }
    }
    Ok(())
}

/// A percentile field is either a u64 (count > 0) or null (empty).
fn percentile_field(h: &Json, name: &str, key: &str) -> Result<Option<u64>, String> {
    let field = h
        .get(key)
        .ok_or_else(|| format!("histogram {name:?}: missing `{key}`"))?;
    if field.is_null() {
        return Ok(None);
    }
    field
        .as_u64()
        .map(Some)
        .ok_or_else(|| format!("histogram {name:?}: `{key}` is neither integer nor null"))
}

/// v2 percentile coherence: present iff non-empty, ordered, within range.
fn check_histogram(name: &str, h: &Json) -> Result<(), String> {
    let count = h
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("histogram {name:?}: missing integer `count`"))?;
    let min = percentile_field(h, name, "min")?;
    let max = percentile_field(h, name, "max")?;
    let p50 = percentile_field(h, name, "p50")?;
    let p95 = percentile_field(h, name, "p95")?;
    let p99 = percentile_field(h, name, "p99")?;
    if count == 0 {
        if p50.is_some() || p95.is_some() || p99.is_some() {
            return Err(format!(
                "histogram {name:?}: empty but carries percentile values"
            ));
        }
        return Ok(());
    }
    let (p50, p95, p99) = match (p50, p95, p99) {
        (Some(a), Some(b), Some(c)) => (a, b, c),
        _ => {
            return Err(format!(
                "histogram {name:?}: count {count} but a percentile is null"
            ))
        }
    };
    if !(p50 <= p95 && p95 <= p99) {
        return Err(format!(
            "histogram {name:?}: percentiles unordered (p50 {p50}, p95 {p95}, p99 {p99})"
        ));
    }
    let (min, max) = match (min, max) {
        (Some(lo), Some(hi)) => (lo, hi),
        _ => {
            return Err(format!(
                "histogram {name:?}: count {count} but min/max null"
            ))
        }
    };
    if p50 < min || p99 > max {
        return Err(format!(
            "histogram {name:?}: percentiles escape [{min}, {max}] (p50 {p50}, p99 {p99})"
        ));
    }
    Ok(())
}

fn main() {
    let dir = workspace_root().join("results");
    let mut snapshots: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("telemetry_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    snapshots.sort();
    if snapshots.is_empty() {
        eprintln!(
            "no telemetry snapshots under {} — run the chaos sweep (or an \
             instrumented bench bin) first",
            dir.display()
        );
        std::process::exit(1);
    }
    let mut failed = false;
    for path in &snapshots {
        match check_file(path) {
            Ok(()) => println!("  ok  {}", path.display()),
            Err(e) => {
                failed = true;
                println!("  BAD {}: {e}", path.display());
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("{} telemetry snapshot(s) schema-valid", snapshots.len());
}
