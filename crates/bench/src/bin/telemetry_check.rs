//! Schema check for telemetry snapshots: every `results/telemetry_*.json`
//! must parse as strict JSON and carry the v1 snapshot schema — a
//! `schema_version`, the producing run's `seed`, and a non-empty `counters`
//! object (a snapshot with no counters means the instrumentation went
//! dark, which is a wiring bug, not an empty workload).
//!
//! Run after the bins that emit snapshots (the chaos sweep at minimum);
//! `scripts/check.sh` wires it in. Exits non-zero listing every violation.

use dosgi_telemetry::snapshot::SCHEMA_VERSION;
use dosgi_testkit::{workspace_root, Json};

fn check_file(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let version = json
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing integer `schema_version`")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    json.get("seed")
        .and_then(Json::as_u64)
        .ok_or("missing integer `seed`")?;
    let counters = json
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("missing object `counters`")?;
    if counters.is_empty() {
        return Err("`counters` is empty — instrumentation recorded nothing".into());
    }
    Ok(())
}

fn main() {
    let dir = workspace_root().join("results");
    let mut snapshots: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("telemetry_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    snapshots.sort();
    if snapshots.is_empty() {
        eprintln!(
            "no telemetry snapshots under {} — run the chaos sweep (or an \
             instrumented bench bin) first",
            dir.display()
        );
        std::process::exit(1);
    }
    let mut failed = false;
    for path in &snapshots {
        match check_file(path) {
            Ok(()) => println!("  ok  {}", path.display()),
            Err(e) => {
                failed = true;
                println!("  BAD {}: {e}", path.display());
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("{} telemetry snapshot(s) schema-valid", snapshots.len());
}
