//! **CI conformance gate** for SAN storage backends.
//!
//! Renders every builtin conformance script (`dosgi-san::conformance`) on
//! every registered [`BackendKind`] and checks the result against the
//! committed golden fixture under `results/san_fixtures/`. Two distinct
//! failure modes, both fatal:
//!
//! * **fixture drift** — the map (reference) rendering no longer matches
//!   the committed fixture: the store contract changed. If intentional,
//!   regenerate with `SAN_FIXTURE_WRITE=1 cargo run --release -p
//!   dosgi-bench --bin san_conformance` and commit the updated files.
//! * **backend divergence** — some backend renders differently from the
//!   fixture: that backend violates the store contract. This is never
//!   fixed by regenerating; fix the backend.
//!
//! Mismatches print a unified diff (`-` fixture, `+` actual). The same
//! fixtures are also enforced by `cargo test -p dosgi-san --test
//! conformance`; this bin exists so the CI pipeline surfaces conformance
//! as its own named step with per-script, per-backend output.

use dosgi_san::conformance::{builtin_scripts, run_script, WRITE_ENV};
use dosgi_san::BackendKind;
use dosgi_testkit::golden;
use dosgi_testkit::{unified_diff, GoldenOutcome};

fn main() {
    let backends = BackendKind::all();
    let scripts = builtin_scripts();
    println!(
        "san_conformance: {} scripts x {} backends ({})",
        scripts.len(),
        backends.len(),
        backends
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut failed = false;
    for script in &scripts {
        let reference = run_script(script, BackendKind::Map);
        let rel = script.fixture_rel_path();
        match golden::compare(&rel, &reference, WRITE_ENV) {
            GoldenOutcome::Match => {}
            GoldenOutcome::Updated => {
                println!("  {:<24} fixture REWRITTEN ({WRITE_ENV} set)", script.name);
            }
            GoldenOutcome::Missing(path) => {
                failed = true;
                println!(
                    "  {:<24} fixture MISSING at {}",
                    script.name,
                    path.display()
                );
                println!("      create it with {WRITE_ENV}=1 and commit the file");
                continue;
            }
            GoldenOutcome::Mismatch(diff) => {
                failed = true;
                println!("  {:<24} fixture DRIFT:", script.name);
                print!("{diff}");
                println!("      if intentional: rerun with {WRITE_ENV}=1 and commit");
                continue;
            }
        }
        for &kind in &backends {
            let rendered = run_script(script, kind);
            if rendered == reference {
                println!("  {:<24} {:<4} ok", script.name, kind.name());
            } else {
                failed = true;
                println!(
                    "  {:<24} {:<4} DIVERGES from the fixture contract:",
                    script.name,
                    kind.name()
                );
                print!("{}", unified_diff(&reference, &rendered, &rel));
                println!("      this is a backend bug — do not regenerate fixtures over it");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("san_conformance: every backend matches every committed fixture");
}
