//! **E2 — Figure 3: the Instance Manager inside OSGi.**
//!
//! Measures the real (wall-clock) cost of the instance life-cycle against
//! the `dosgi-vosgi` implementation: create / start / call / stop /
//! destroy, and how per-operation cost scales with the number of resident
//! virtual instances on the host.

use dosgi_bench::print_table;
use dosgi_core::workloads;
use dosgi_osgi::Framework;
use dosgi_san::Value;
use dosgi_vosgi::InstanceManager;
use std::time::Instant;

fn manager() -> InstanceManager {
    InstanceManager::new(
        Framework::new("host"),
        workloads::standard_repository(),
        workloads::standard_factory(),
    )
}

fn main() {
    let mut rows = Vec::new();
    for population in [1usize, 10, 50, 100, 250] {
        let mut mgr = manager();
        // Pre-populate.
        for i in 0..population - 1 {
            let id = mgr
                .create_instance(workloads::web_instance("cust", &format!("pre-{i}")))
                .unwrap();
            mgr.start_instance(id).unwrap();
        }
        // Measure the marginal instance.
        let t0 = Instant::now();
        let id = mgr
            .create_instance(workloads::web_instance("cust", "probe"))
            .unwrap();
        let create = t0.elapsed();
        let t0 = Instant::now();
        mgr.start_instance(id).unwrap();
        let start = t0.elapsed();
        let t0 = Instant::now();
        for _ in 0..1000 {
            mgr.call_service(id, workloads::WEB_SERVICE, "handle", &Value::Null)
                .unwrap();
        }
        let call = t0.elapsed() / 1000;
        let t0 = Instant::now();
        mgr.stop_instance(id).unwrap();
        let stop = t0.elapsed();
        let t0 = Instant::now();
        mgr.destroy_instance(id, true).unwrap();
        let destroy = t0.elapsed();
        rows.push(vec![
            population.to_string(),
            format!("{create:?}"),
            format!("{start:?}"),
            format!("{call:?}"),
            format!("{stop:?}"),
            format!("{destroy:?}"),
        ]);
    }
    print_table(
        "E2: marginal instance life-cycle cost vs resident population (wall clock)",
        &[
            "resident",
            "create",
            "start",
            "call (avg)",
            "stop",
            "destroy",
        ],
        &rows,
    );

    // Bulk churn: how many full cycles per second does the manager sustain?
    let mut mgr = manager();
    let t0 = Instant::now();
    let cycles = 200;
    for i in 0..cycles {
        let id = mgr
            .create_instance(workloads::web_instance("cust", &format!("churn-{i}")))
            .unwrap();
        mgr.start_instance(id).unwrap();
        mgr.stop_instance(id).unwrap();
        mgr.destroy_instance(id, true).unwrap();
    }
    let per = t0.elapsed() / cycles;
    println!("\nfull create+start+stop+destroy cycle: {per:?} (over {cycles} cycles)");
    println!(
        "the management path is an in-process map lookup — no RMI/JMX hop (Fig. 2–3 vs Fig. 1)."
    );
}
