//! **E5 — §3.2: "The cost of this operation is therefore comparable to a
//! normal startup of the platform, probably less."**
//!
//! Measures (in simulated time) the hand-off latency of a graceful
//! migration as the instance's persisted state grows, and compares it with
//! the modeled cold platform start (JVM + framework + base services +
//! customer bundles) and warm deploy (platform already up). The paper's
//! claim holds if migration ≈ warm deploy ≪ cold platform start.

use dosgi_bench::{print_table, write_telemetry_snapshot};
use dosgi_core::{migration, workloads, ClusterConfig, DosgiCluster};
use dosgi_net::SimDuration;
use dosgi_san::Value;
use dosgi_telemetry::Telemetry;

/// Modeled cold platform start (2008 numbers): JVM boot + OSGi framework
/// boot + host bundles + the customer's bundles.
fn cold_start(config: &ClusterConfig, customer_bundles: u64) -> SimDuration {
    let jvm_boot = SimDuration::from_millis(2_000);
    let framework_boot = SimDuration::from_millis(400);
    let host_bundles = 3;
    jvm_boot
        + framework_boot
        + config.node.start_cost_per_bundle * (host_bundles + customer_bundles)
}

fn main() {
    let config = ClusterConfig::default();
    let cold = cold_start(&config, 1);
    let warm_deploy = config.node.start_cost_per_bundle; // 1 bundle, platform up

    let telemetry = Telemetry::new();
    let mut rows = Vec::new();
    let mut last_trace = None;
    for state_kib in [0u64, 64, 256, 1024, 4096] {
        let mut c =
            DosgiCluster::new_with_telemetry(3, config.clone(), 500 + state_kib, telemetry.clone());
        c.run_for(SimDuration::from_millis(500));
        c.deploy(workloads::counter_instance("bank", "ctr"), 0)
            .unwrap();
        c.run_for(SimDuration::from_millis(500));

        // Grow the instance's persisted state: write blobs into the
        // counter bundle's data area via the SAN (as the application
        // would).
        if state_kib > 0 {
            let ns = "instance/ctr/data/org.app.counter";
            let blob = vec![0u8; 1024];
            for i in 0..state_kib {
                c.store()
                    .put(ns, &format!("blob-{i}"), Value::Bytes(blob.clone()))
                    .expect("no faults armed in this benchmark");
            }
        }
        for _ in 0..5 {
            c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
                .unwrap();
        }

        // Measure the SAN traffic of the migration round itself: source
        // stop + final persist, destination restore. Change-detecting
        // writes and per-bundle snapshot rows mean only state that actually
        // changed since the last flush moves.
        c.store().reset_stats();
        c.migrate("ctr", 1).unwrap();
        c.run_for(SimDuration::from_secs(8));
        let san = c.store().stats();
        assert_eq!(c.home_of("ctr"), Some(1), "migrated");
        assert_eq!(
            c.call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null)
                .unwrap(),
            Value::Int(5),
            "state intact"
        );
        let events = c.take_events();
        let latency = migration::migration_latency(&events, "ctr").expect("measured");
        let downtime = c.sla().record("ctr").down;
        c.record_telemetry_gauges();
        // Keep only the last cluster's causal trace: each iteration builds a
        // fresh cluster whose per-node span sequences restart, so merging
        // across iterations would collide span ids.
        last_trace = Some(c.trace_log());
        rows.push(vec![
            format!("{state_kib} KiB"),
            format!("{latency}"),
            format!("{downtime}"),
            format!("{}", cold),
            format!("{:.1}%", 100.0 * latency.as_secs_f64() / cold.as_secs_f64()),
            format!("{}", san.bytes_written),
            format!("{}", san.bytes_read),
            format!(
                "{} ({:.0}%)",
                san.bytes_skipped,
                100.0 * san.bytes_skipped as f64
                    / (san.bytes_written + san.bytes_skipped).max(1) as f64
            ),
        ]);
    }
    print_table(
        "E5: graceful migration cost vs persisted state size (simulated time)",
        &[
            "state",
            "hand-off latency",
            "observed downtime",
            "cold platform start",
            "migration/cold",
            "SAN B written",
            "SAN B read",
            "SAN B skipped (saved)",
        ],
        &rows,
    );

    println!("\nwarm deploy on a running platform (1 bundle): {warm_deploy}");
    println!("cold platform start (JVM+framework+base+1 bundle): {cold}");
    println!(
        "\nShape check (paper §3.2): migration ≈ warm start ≪ cold start — the \
         destination already runs the platform and base services, so only the \
         instance's bundles start and its state is read from the SAN."
    );
    write_telemetry_snapshot(&telemetry, "e5_migration", 500);
    // Export the 4 MiB run's causal trace: the canonical migration timeline
    // (quiesce → persist → registry hand-off → adopt) for `trace_check`.
    if let Some(trace) = last_trace {
        let dir = dosgi_testkit::workspace_root().join("results");
        match std::fs::create_dir_all(&dir).and_then(|()| trace.write_to(&dir, "e5_migration", 500))
        {
            Ok(path) => println!("causal trace: {}", path.display()),
            Err(e) => eprintln!("could not write causal trace: {e}"),
        }
    }
}
