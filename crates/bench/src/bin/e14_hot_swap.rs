//! **E14 — live bundle hot-swap and rolling upgrades under traffic.**
//!
//! The paper's platform promises customers that maintenance is invisible:
//! a bundle revision is swapped *in place* — quiesce the old version,
//! persist its state through the SAN, adopt it in the new version — while
//! the node keeps serving every other bundle. Two measurements pin that
//! claim, both deterministic on the simulated clock:
//!
//! 1. **Per-upgrade blackout vs state size** — the service interruption of
//!    one in-place hot-swap (final state persist + activator swap) against
//!    the same instance's whole-instance migration hand-off. At
//!    counter-scale state the blackout is µs-scale and **≥100× below**
//!    the migration path; at megabyte state both converge towards the
//!    SAN transfer cost, which is the honest bound.
//! 2. **A rolling wave over a loaded 8-node cluster** — an open-loop
//!    Poisson workload (half of aggregate capacity) runs through an ipvs
//!    director with admission control while an [`UpgradeWave`] visits all
//!    eight nodes: drain (work-conserving — queued requests still
//!    complete), hot-swap every local instance, un-drain, move on. The
//!    wave must complete with **zero shed requests and zero missed
//!    SLO deadlines**, every counter's state intact, and every per-bundle
//!    blackout µs-scale.
//!
//! The run's merged causal trace (node recorders + the director's drain /
//! un-drain spans) is exported to `results/trace_e14_hot_swap.json` and
//! checked by the `trace_check` bin against the upgrade-ordering rules:
//! adopt only after quiesce+persist closed, no serving inside a quiesce
//! window, un-drain only after every adopt. Metrics land in
//! `results/telemetry_e14.json`.

use dosgi_bench::{print_table, write_telemetry_snapshot};
use dosgi_core::loadgen::{ClassMix, RateSchedule, ScheduledLoadGenerator};
use dosgi_core::upgrade::{UpgradeWave, WaveHooks};
use dosgi_core::{workloads, ClusterConfig, DosgiCluster, NodeEvent};
use dosgi_ipvs::{replicated_service, AdmissionConfig, IpvsDirector, Scheduler};
use dosgi_net::{IpAddr, NodeId, Port, SimDuration, SocketAddr};
use dosgi_osgi::Version;
use dosgi_san::Value;
use dosgi_telemetry::{FlightRecorder, Telemetry, TraceContext, TraceLog};

const SEED: u64 = 14;
const VIP: SocketAddr = SocketAddr::new(IpAddr::new(10, 0, 0, 140), Port(80));
/// One backend's deterministic service capacity (requests/second).
const CAPACITY: u64 = 2_000;
const NODES: usize = 8;

/// Steps the cluster until the next `BundleUpgraded` event and returns its
/// blackout, or `None` if `limit` passes first.
fn await_upgrade(c: &mut DosgiCluster, limit: SimDuration) -> Option<SimDuration> {
    let deadline = c.now() + limit;
    while c.now() < deadline {
        c.step();
        for (_, ev) in c.take_events() {
            match ev {
                NodeEvent::BundleUpgraded { blackout, .. } => return Some(blackout),
                NodeEvent::UpgradeFailed { error, .. } => {
                    panic!("upgrade failed on a fault-free SAN: {error}")
                }
                _ => {}
            }
        }
    }
    None
}

/// E14a: one instance, growing state. Hot-swap blackout vs the
/// whole-instance migration hand-off for the same state size.
fn blackout_vs_migration() {
    let mut rows = Vec::new();
    let mut small_ratio = 0f64;
    for &kib in &[0usize, 64, 256, 1024] {
        let mut c = DosgiCluster::new(2, ClusterConfig::default(), SEED);
        c.run_for(SimDuration::from_millis(500));
        c.deploy(
            workloads::counter_instance_with("bank", "ctr", workloads::COUNTER_WRITE_THROUGH),
            0,
        )
        .expect("deploy");
        c.run_for(SimDuration::from_secs(1));
        // Bulk state riding in the bundle's data area, 1 KiB per row.
        let ns = format!("instance/ctr/data/{}", workloads::COUNTER_WRITE_THROUGH);
        let blob = vec![0u8; 1024];
        for i in 0..kib {
            c.store()
                .put(&ns, &format!("blob-{i}"), Value::Bytes(blob.clone()))
                .expect("no faults armed");
        }
        for _ in 0..5 {
            c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
                .expect("incr");
        }
        // The hot swap: 1.0.0 -> 1.1.0 in place.
        c.upgrade_bundle(
            "ctr",
            workloads::counter_manifest_at(workloads::COUNTER_WRITE_THROUGH, Version::new(1, 1, 0)),
        )
        .expect("request upgrade");
        let blackout = await_upgrade(&mut c, SimDuration::from_secs(10)).expect("upgrade lands");
        assert_eq!(
            c.call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null)
                .expect("get"),
            Value::Int(5),
            "state survived the swap at {kib} KiB"
        );
        // The comparison path: migrate the same instance (same state) to
        // the other node and clock the hand-off.
        let t0 = c.now().as_micros();
        c.migrate("ctr", 1).expect("migrate");
        let deadline = c.now() + SimDuration::from_secs(30);
        while c.now() < deadline && !(c.home_of("ctr") == Some(1) && c.probe("ctr")) {
            c.step();
        }
        assert_eq!(c.home_of("ctr"), Some(1), "migration completed");
        let migration_us = c.now().as_micros() - t0;
        let blackout_us = blackout.as_micros();
        let ratio = migration_us as f64 / blackout_us.max(1) as f64;
        if kib == 0 {
            small_ratio = ratio;
        }
        rows.push(vec![
            format!("{kib} KiB"),
            format!("{blackout_us} µs"),
            format!("{:.1} ms", migration_us as f64 / 1000.0),
            format!("{ratio:.0}x"),
        ]);
    }
    print_table(
        "E14a: in-place hot-swap blackout vs whole-instance migration",
        &[
            "state",
            "swap blackout",
            "migration hand-off",
            "migration/blackout",
        ],
        &rows,
    );
    assert!(
        small_ratio >= 100.0,
        "at counter-scale state the hot-swap blackout must be >=100x below \
         the migration hand-off, got {small_ratio:.0}x"
    );
}

/// [`WaveHooks`] backed by the ipvs director: drain/un-drain the in-flight
/// node with causal spans, the un-drain joining the finished upgrade's
/// trace so `trace_check` can verify "un-drain after adopt".
struct DirectorHooks<'a> {
    d: &'a mut IpvsDirector,
}

impl WaveHooks for DirectorHooks<'_> {
    fn drain(&mut self, node: NodeId, now_us: u64) {
        self.d.drain_node_traced(node, None, now_us);
    }
    fn undrain(&mut self, node: NodeId, ctx: Option<TraceContext>, now_us: u64) {
        self.d.undrain_node_traced(node, ctx, now_us);
    }
}

/// E14b: the rolling wave over a loaded cluster.
fn rolling_wave_under_traffic(telemetry: &Telemetry) {
    let mut cluster =
        DosgiCluster::new_with_telemetry(NODES, ClusterConfig::default(), SEED, telemetry.clone());
    cluster.run_for(SimDuration::from_millis(500));
    for i in 0..NODES {
        cluster
            .deploy(
                workloads::counter_instance_with(
                    &format!("cust-{i}"),
                    &format!("ctr-{i}"),
                    workloads::COUNTER_WRITE_THROUGH,
                ),
                i,
            )
            .expect("deploy");
    }
    cluster.run_for(SimDuration::from_secs(1));

    let mut d = IpvsDirector::new();
    d.set_telemetry(telemetry.clone());
    d.set_recorder(FlightRecorder::new(NODES as u64));
    let backends: Vec<NodeId> = (0..NODES).map(|i| NodeId(i as u32)).collect();
    d.add_service(
        replicated_service(VIP, Scheduler::RoundRobin, &backends)
            .with_admission(AdmissionConfig::per_second(CAPACITY, 64)),
    );
    // Half of aggregate capacity: loaded, not overloaded — any shed or
    // missed deadline during the wave is the wave's fault.
    let rate = (NODES as u64 * CAPACITY) as f64 / 2.0;
    let mut gen = ScheduledLoadGenerator::new(RateSchedule::constant(rate), SEED, cluster.now());
    let mut mix = ClassMix::standard_web(SEED);
    let mut client = 0u64;
    let mut good = 0u64;
    let mut missed = 0u64;
    let mut acked = [0i64; NODES];

    let manifest =
        workloads::counter_manifest_at(workloads::COUNTER_WRITE_THROUGH, Version::new(1, 1, 0));
    let mut wave = UpgradeWave::new(manifest, (0..NODES).collect(), SimDuration::from_secs(10));
    let mut tick = 0usize;
    // 2s of pre-load, then the wave starts; keep serving 2s after it ends.
    let mut cooldown_until = None;
    loop {
        cluster.step();
        let now = cluster.now();
        let now_us = now.as_micros();
        for _ in 0..gen.arrivals_until(now) {
            client += 1;
            let _ = d.admit(client, VIP, mix.sample(), now_us);
        }
        for c in d.drain(VIP, now_us) {
            if c.missed_deadline() {
                missed += 1;
            } else {
                good += 1;
            }
        }
        // Real cluster traffic too: one increment per tick, round-robin
        // over the instances — including the one being hot-swapped.
        let i = tick % NODES;
        if cluster
            .call(
                &format!("ctr-{i}"),
                workloads::COUNTER_SERVICE,
                "incr",
                &Value::Null,
            )
            .is_ok()
        {
            acked[i] += 1;
        }
        tick += 1;
        let events = cluster.take_events();
        if tick >= 400 && cooldown_until.is_none() {
            let mut hooks = DirectorHooks { d: &mut d };
            if wave.step(&mut cluster, &events, &mut hooks) {
                cooldown_until = Some(now + SimDuration::from_secs(2));
            }
        }
        if let Some(until) = cooldown_until {
            if now >= until {
                break;
            }
        }
    }

    let report = wave.into_report();
    let stats = d.stats();
    let rows: Vec<Vec<String>> = report
        .upgraded
        .iter()
        .map(|u| {
            vec![
                u.instance.clone(),
                format!("n{}", u.node),
                format!("{} -> {}", u.from, u.to),
                format!("{} µs", u.blackout.as_micros()),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E14b: rolling wave over {NODES} loaded nodes ({rate:.0}/s offered, \
             {good} in-SLO completions, {} shed, {missed} SLO misses)",
            stats.shed
        ),
        &["instance", "node", "swap", "blackout"],
        &rows,
    );

    assert_eq!(
        report.upgraded.len(),
        NODES,
        "every instance hot-swapped: {:?}",
        report.failed
    );
    assert!(report.failed.is_empty(), "failures: {:?}", report.failed);
    assert!(
        report.skipped_nodes.is_empty(),
        "skipped: {:?}",
        report.skipped_nodes
    );
    assert_eq!(stats.shed, 0, "the wave must not shed a single request");
    assert_eq!(missed, 0, "the wave must not cost a single SLO deadline");
    assert!(good > 0, "traffic actually flowed");
    for u in &report.upgraded {
        assert!(
            u.blackout < SimDuration::from_millis(5),
            "{}: blackout {:?} is not µs-scale",
            u.instance,
            u.blackout
        );
    }
    // Every acknowledged increment survived its instance's hot swap.
    for (i, &acked) in acked.iter().enumerate() {
        let got = cluster
            .call(
                &format!("ctr-{i}"),
                workloads::COUNTER_SERVICE,
                "get",
                &Value::Null,
            )
            .expect("get after the wave");
        assert_eq!(
            got,
            Value::Int(acked),
            "ctr-{i} lost state across its hot swap"
        );
        assert!(cluster.probe(&format!("ctr-{i}")), "ctr-{i} serving");
    }

    // Export the merged causal trace: node recorders + the director's
    // drain/un-drain spans, for the trace_check upgrade-ordering rules.
    let mut recorders: Vec<&FlightRecorder> = Vec::new();
    for i in 0..NODES {
        if let Some(n) = cluster.node(i) {
            recorders.push(n.recorder());
        }
    }
    recorders.push(d.recorder());
    let log = TraceLog::merge(recorders);
    assert!(
        log.events.iter().any(|e| e.name.starts_with("u_adopt/")),
        "the wave's handoff spans are in the merged trace"
    );
    assert!(
        log.events.iter().any(|e| e.name.starts_with("undrain/")),
        "the director's un-drain spans are in the merged trace"
    );
    let dir = dosgi_testkit::workspace_root().join("results");
    match log.write_to(&dir, "e14_hot_swap", SEED) {
        Ok(p) => println!("causal trace: {}", p.display()),
        Err(e) => panic!("could not write the e14 trace: {e}"),
    }
}

fn main() {
    let telemetry = Telemetry::new();
    blackout_vs_migration();
    rolling_wave_under_traffic(&telemetry);
    write_telemetry_snapshot(&telemetry, "e14", SEED);
    println!(
        "\nShape check (paper §3.2, upgrades): an in-place hot-swap blacks out \
         one bundle for microseconds — two orders of magnitude under the \
         migration path — and a rolling wave over a loaded cluster upgrades \
         every node without shedding a request or missing an SLO deadline."
    );
}
