//! **E6 — §3.2: node failures and decentralized redeployment.**
//!
//! Measures service downtime after a crash as a function of (a) the
//! failure-detection aggressiveness (heartbeat interval sweep — the classic
//! detection-latency trade-off the paper inherits from its GCS), (b) the
//! number of instances stranded on the failed node, and compares crash
//! failover against the graceful-shutdown path, which the paper predicts
//! is cheaper because nothing must be *detected*.

use dosgi_bench::{print_table, write_telemetry_snapshot};
use dosgi_core::{workloads, ClusterConfig, DosgiCluster};
use dosgi_gcs::GcsConfig;
use dosgi_net::SimDuration;
use dosgi_telemetry::Telemetry;

fn main() {
    let telemetry = Telemetry::new();
    // ------------------------------------------------------------------
    // (a) Downtime vs heartbeat interval (suspect timeout = 4x heartbeat).
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for hb_ms in [10u64, 25, 50, 100, 200] {
        let mut config = ClusterConfig::default();
        config.node.gcs = GcsConfig::lan().with_heartbeat(SimDuration::from_millis(hb_ms));
        let mut c = DosgiCluster::new_with_telemetry(3, config, 600 + hb_ms, telemetry.clone());
        c.run_for(SimDuration::from_secs(1));
        c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
        c.run_for(SimDuration::from_millis(500));
        c.crash_node(0);
        c.run_for(SimDuration::from_secs(6));
        assert!(c.probe("web"));
        c.record_telemetry_gauges();
        let rec = c.sla().record("web");
        rows.push(vec![
            format!("{hb_ms} ms"),
            format!("{} ms", hb_ms * 4),
            format!("{}", rec.down),
            rec.outages.to_string(),
        ]);
    }
    print_table(
        "E6a: failover downtime vs heartbeat interval (3 nodes, 1 instance)",
        &["heartbeat", "suspect timeout", "downtime", "outages"],
        &rows,
    );

    // ------------------------------------------------------------------
    // (b) Downtime vs number of stranded instances.
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for n_inst in [1usize, 2, 4, 8, 16] {
        let mut c = DosgiCluster::new_with_telemetry(
            4,
            ClusterConfig::default(),
            700 + n_inst as u64,
            telemetry.clone(),
        );
        c.run_for(SimDuration::from_secs(1));
        for i in 0..n_inst {
            c.deploy(workloads::web_instance("acme", &format!("web-{i}")), 0)
                .unwrap();
        }
        c.run_for(SimDuration::from_millis(500));
        c.crash_node(0);
        c.run_for(SimDuration::from_secs(8));
        let mut worst = SimDuration::ZERO;
        let mut sum = SimDuration::ZERO;
        for i in 0..n_inst {
            let name = format!("web-{i}");
            assert!(c.probe(&name), "{name} recovered");
            let down = c.sla().record(&name).down;
            sum += down;
            if down > worst {
                worst = down;
            }
        }
        rows.push(vec![
            n_inst.to_string(),
            format!("{}", sum / n_inst as u64),
            format!("{worst}"),
        ]);
    }
    print_table(
        "E6b: failover downtime vs stranded instances (4 nodes)",
        &["instances", "mean downtime", "worst downtime"],
        &rows,
    );

    // ------------------------------------------------------------------
    // (b2) Control-plane message cost of one failover.
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for n_nodes in [3usize, 5, 7] {
        let mut c = DosgiCluster::new(n_nodes, ClusterConfig::default(), 750 + n_nodes as u64);
        c.run_for(SimDuration::from_secs(1));
        c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
        c.run_for(SimDuration::from_secs(1));
        let before = c.net_mut().stats();
        c.crash_node(0);
        c.run_for(SimDuration::from_secs(2));
        assert!(c.probe("web"));
        let after = c.net_mut().stats();
        let steady = {
            // Subtract the steady-state heartbeat rate measured over the
            // same span on an identical quiet cluster.
            let mut q = DosgiCluster::new(n_nodes, ClusterConfig::default(), 750 + n_nodes as u64);
            q.run_for(SimDuration::from_secs(2));
            let b = q.net_mut().stats();
            q.run_for(SimDuration::from_secs(2));
            q.net_mut().stats().sent - b.sent
        };
        rows.push(vec![
            n_nodes.to_string(),
            (after.sent - before.sent).to_string(),
            steady.to_string(),
            format!("{:+}", (after.sent - before.sent) as i64 - steady as i64),
        ]);
    }
    print_table(
        "E6b2: control-plane traffic around one failover (2s window)",
        &[
            "nodes",
            "messages (failover window)",
            "quiet cluster (same span)",
            "delta",
        ],
        &rows,
    );
    println!(
        "\n(The delta is negative: losing a node removes its heartbeats, which \
         outweigh the failover's own control messages — view agreement is \
         ~3 rounds x n and the claim is one ordered broadcast. The paper's \
         decentralized redeployment costs O(n) messages, not O(instances).)"
    );

    // ------------------------------------------------------------------
    // (c) Crash failover vs graceful shutdown (the paper's two paths).
    // ------------------------------------------------------------------
    let run = |graceful: bool| {
        let mut c = DosgiCluster::new(3, ClusterConfig::default(), 800 + graceful as u64);
        c.run_for(SimDuration::from_secs(1));
        c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
        c.run_for(SimDuration::from_millis(500));
        if graceful {
            c.graceful_shutdown(0);
        } else {
            c.crash_node(0);
        }
        c.run_for(SimDuration::from_secs(6));
        assert!(c.probe("web"));
        c.sla().record("web").down
    };
    let crash = run(false);
    let graceful = run(true);
    print_table(
        "E6c: crash vs graceful departure (same workload, same cluster)",
        &["departure", "service downtime"],
        &[
            vec![
                "crash (detect + agree + claim + restore)".to_string(),
                format!("{crash}"),
            ],
            vec![
                "graceful (migrate before leaving)".to_string(),
                format!("{graceful}"),
            ],
        ],
    );
    println!(
        "\nShape check: graceful < crash (no detection window), and downtime \
         scales with the failure-detection timeout (E6a) — both as the paper's \
         design predicts."
    );
    write_telemetry_snapshot(&telemetry, "e6_failover", 600);
}
