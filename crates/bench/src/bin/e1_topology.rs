//! **E1 — Figures 1–4: the deployment-design space.**
//!
//! The paper argues each successive design is lighter and easier to
//! manage: one JVM per customer (Fig. 1) → shared JVM (Fig. 2) → nested
//! virtual instances (Fig. 3) → shared host bundles (Fig. 4). This binary
//! quantifies the argument with the documented cost model
//! ([`dosgi_vosgi::FootprintModel`]) across a customer sweep, and reports
//! the management-operation latency gap (remote RMI/JMX channel vs
//! in-process call).

use dosgi_bench::{mib, print_table, ratio};
use dosgi_vosgi::{DeploymentTopology, FootprintModel};

fn main() {
    let model = FootprintModel::default();
    let bundles_per_customer = 8;
    let shareable = 4; // log, http, metrics, management — the Fig. 4 hoist

    for customers in [1u64, 5, 10, 20, 50] {
        let rows: Vec<Vec<String>> = DeploymentTopology::ALL
            .iter()
            .map(|t| {
                let f = t.footprint(&model, customers, bundles_per_customer, shareable);
                vec![
                    format!("{} ({:?})", t.figure(), t),
                    f.jvm_count.to_string(),
                    f.bundle_copies.to_string(),
                    mib(f.memory_bytes),
                    format!("{}", f.management_op),
                ]
            })
            .collect();
        print_table(
            &format!("E1: {customers} customers x {bundles_per_customer} bundles ({shareable} shareable)"),
            &["design", "JVMs", "bundle copies", "memory", "mgmt op"],
            &rows,
        );
    }

    // The headline series: memory vs customer count, per design.
    let sweep: Vec<u64> = vec![1, 2, 5, 10, 20, 30, 40, 50];
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&n| {
            let mut row = vec![n.to_string()];
            for t in DeploymentTopology::ALL {
                row.push(mib(t
                    .footprint(&model, n, bundles_per_customer, shareable)
                    .memory_bytes));
            }
            row
        })
        .collect();
    print_table(
        "E1 series: memory footprint vs customers",
        &[
            "customers",
            "Fig.1 jvm/cust",
            "Fig.2 shared jvm",
            "Fig.3 nested",
            "Fig.4 shared bundles",
        ],
        &rows,
    );

    let at50: Vec<u64> = DeploymentTopology::ALL
        .iter()
        .map(|t| {
            t.footprint(&model, 50, bundles_per_customer, shareable)
                .memory_bytes
        })
        .collect();
    println!(
        "\nAt 50 customers, Fig.4 uses {} of Fig.1's memory ({} -> {});",
        ratio(at50[3] as f64, at50[0] as f64),
        mib(at50[0]),
        mib(at50[3]),
    );
    println!(
        "management ops are {} faster in-process than over the remote channel.",
        ratio(
            FootprintModel::default().remote_op.as_micros() as f64,
            FootprintModel::default().local_op.as_micros() as f64
        )
    );
}
