//! **E10 — §3.3/§4: autonomic SLA enforcement and consolidation.**
//!
//! Part A: a CPU-hogging tenant shares a node with a tame one. With the
//! Autonomic Module off (the baseline), the violation persists for the
//! whole run; with the default policy on, the hog is detected and migrated
//! within a few evaluation periods. The metric is *violation duration*:
//! how long the hog ran over quota on the shared node.
//!
//! Part B: §4's consolidation claim — idle instances are concentrated and
//! freed nodes hibernate, *"reduc\[ing\] power usage by shutting down or
//! hibernating nodes"*. The metric is hibernated nodes and the power proxy
//! (node-seconds awake).

use dosgi_bench::print_table;
use dosgi_core::{autonomic, workloads, ClusterConfig, DosgiCluster, NodeEvent};
use dosgi_net::SimDuration;
use dosgi_san::Value;
use dosgi_vosgi::{InstanceDescriptor, ResourceQuota};

fn hog_descriptor() -> InstanceDescriptor {
    InstanceDescriptor::builder("hog-corp", "hog")
        .bundle(workloads::WEB_BUNDLE)
        .quota(ResourceQuota::small()) // 100 ms CPU / s
        .build()
}

fn run_sla(policy_on: bool, seed: u64) -> (SimDuration, usize) {
    let mut config = ClusterConfig::default();
    if !policy_on {
        config.node.policy = None;
    }
    let mut c = DosgiCluster::new(3, config, seed);
    c.run_for(SimDuration::from_secs(1));
    c.deploy(hog_descriptor(), 0).unwrap();
    c.deploy(workloads::web_instance("tame", "tame"), 0)
        .unwrap();
    c.run_for(SimDuration::from_millis(500));

    // Drive the hog at ~400 ms CPU/s (4x quota) for 10 simulated seconds
    // while it shares node 0; once migrated, keep driving it on its new
    // home (the violation there is its own node's problem — what we
    // measure is contention on the *shared* node 0).
    let mut violation = SimDuration::ZERO;
    let mut migrations = 0usize;
    for _ in 0..100 {
        for _ in 0..4 {
            let _ = c.call(
                "hog",
                workloads::WEB_SERVICE,
                "handle",
                &Value::map().with("work_us", 10_000i64),
            );
        }
        c.run_for(SimDuration::from_millis(100));
        if c.home_of("hog") == Some(0) {
            violation += SimDuration::from_millis(100);
        }
        migrations = c
            .take_events()
            .iter()
            .filter(|(_, e)| matches!(e, NodeEvent::Adopted { .. }))
            .count()
            .max(migrations);
    }
    (violation, migrations)
}

fn run_consolidation(seed: u64) -> (usize, f64) {
    let mut config = ClusterConfig::default();
    // Node-level consolidation policy everywhere (paper §4).
    config.node.policy = Some(format!(
        "{}{}",
        autonomic::DEFAULT_POLICY,
        autonomic::CONSOLIDATION_POLICY
    ));
    let mut c = DosgiCluster::new(4, config, seed);
    c.run_for(SimDuration::from_secs(1));
    // Four idle instances spread over four nodes.
    for i in 0..4 {
        c.deploy(workloads::web_instance("idle", &format!("idle-{i}")), i)
            .unwrap();
    }
    // Idle period: nobody sends requests; the consolidation rule fires.
    let total_nodes = 4.0;
    let mut awake_node_seconds = 0.0;
    for _ in 0..30 {
        c.run_for(SimDuration::from_secs(1));
        awake_node_seconds += total_nodes - c.hibernated_nodes() as f64;
    }
    // All instances must still be served somewhere.
    for i in 0..4 {
        assert!(
            c.probe(&format!("idle-{i}")),
            "idle-{i} must survive consolidation"
        );
    }
    (
        c.hibernated_nodes(),
        awake_node_seconds / (30.0 * total_nodes),
    )
}

fn main() {
    let (without, _) = run_sla(false, 2000);
    let (with, _) = run_sla(true, 2001);
    print_table(
        "E10a: SLA violation duration on the shared node (10s hog at 4x quota)",
        &["autonomic module", "time hog stayed on the shared node"],
        &[
            vec!["off (baseline)".to_string(), format!("{without}")],
            vec!["on (default policy)".to_string(), format!("{with}")],
        ],
    );

    let (hibernated, awake_fraction) = run_consolidation(2002);
    print_table(
        "E10b: consolidation of 4 idle instances over 4 nodes (30s idle)",
        &["metric", "value"],
        &[
            vec![
                "nodes hibernated at the end".to_string(),
                hibernated.to_string(),
            ],
            vec![
                "power proxy (awake node fraction)".to_string(),
                format!("{:.2}", awake_fraction),
            ],
        ],
    );
    println!(
        "\nShape check (§3.3/§4): the policy bounds the violation to a few \
         evaluation periods instead of the whole run, and consolidation parks \
         idle capacity — every instance still probing as available."
    );
}
