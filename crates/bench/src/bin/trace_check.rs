//! Causal analyzer for exported flight-recorder traces.
//!
//! Reads `results/trace_*.json` (Chrome trace-event files written by the
//! chaos sweep and the migration bench; explicit paths may be given as
//! arguments instead), reassembles each distributed trace from the causal
//! metadata in `args`, and fails on any happens-before violation:
//!
//! * **missing root** — a trace with no span whose id equals the trace id;
//! * **orphaned child** — a span naming a parent that appears nowhere in
//!   its trace;
//! * **blind remote child** — a span recorded on a different node than its
//!   parent without an imported context stamp (`ctx_lamport == 0`), i.e. a
//!   span closed on a node that never saw its parent;
//! * **Lamport inversion** — a child (or imported context) not strictly
//!   after its parent's open stamp;
//! * **adopt before release** — within one trace, an `adopt/<name>` span
//!   whose Lamport open does not follow the `release/<name>` close (the
//!   single-activation invariant, causally stated);
//! * **redirect before adopt** — a `redirect/*` span attached to an
//!   `adopt/*` parent but not causally after it;
//! * **upgrade-adopt before handoff** — in an `upgrade/`-rooted trace, a
//!   `u_adopt/<bundle>` span starting before the old revision's
//!   `u_quiesce/<bundle>` or `u_persist/<bundle>` finished: the new
//!   revision must only adopt state that is quiesced *and* durable;
//! * **serve during quiesce** — a `serve/<bundle>` span on the upgrading
//!   node overlapping its `u_quiesce/<bundle>` window: the whole point of
//!   the quiesce is that the old revision has stopped serving;
//! * **un-drain before adopt** — an `undrain/*` span not causally after
//!   every `u_adopt/*` close in its trace: traffic must not be steered
//!   back onto a node whose swap has not finished.
//!
//! Ring overflow (`dropped > 0` in the file metadata) makes missing
//! spans indistinguishable from causal bugs, so the structural checks are
//! skipped for such files (still reported).
//!
//! For every complete `migrate/<name>`-rooted trace the analyzer also
//! emits the end-to-end latency breakdown the paper's §3.2 claim is about:
//! quiesce, final persist, registry hand-off (release close → adopt open),
//! adopt, and total (root open → adopt close), aggregated min/mean/max.

use dosgi_bench::print_table;
use dosgi_telemetry::{TraceEvent, TRACE_SCHEMA_VERSION};
use dosgi_testkit::{workspace_root, Json};
use std::collections::BTreeMap;

/// One parsed trace file: the event list plus the metadata that decides
/// how strictly it can be checked.
struct ParsedTrace {
    events: Vec<TraceEvent>,
    dropped: u64,
}

fn arg_u64(args: &Json, key: &str) -> Result<u64, String> {
    args.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("event args missing integer `{key}`"))
}

fn parse_trace(text: &str) -> Result<ParsedTrace, String> {
    let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let meta = json.get("metadata").ok_or("missing `metadata` object")?;
    let schema = meta
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or("metadata missing integer `schema`")?;
    if schema != TRACE_SCHEMA_VERSION {
        return Err(format!(
            "trace schema {schema} != supported {TRACE_SCHEMA_VERSION}"
        ));
    }
    let dropped = meta
        .get("dropped")
        .and_then(Json::as_u64)
        .ok_or("metadata missing integer `dropped`")?;
    let raw = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing array `traceEvents`")?;
    let mut events = Vec::with_capacity(raw.len());
    for e in raw {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or("event missing string `name`")?
            .to_owned();
        let start_us = e
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or("event missing integer `ts`")?;
        let dur = e
            .get("dur")
            .and_then(Json::as_u64)
            .ok_or("event missing integer `dur`")?;
        let node = e
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or("event missing integer `pid`")?;
        let args = e.get("args").ok_or("event missing `args`")?;
        events.push(TraceEvent {
            trace_id: arg_u64(args, "trace_id")?,
            span_id: arg_u64(args, "span_id")?,
            parent_span: arg_u64(args, "parent_span")?,
            node,
            name,
            start_us,
            end_us: start_us + dur,
            lamport_start: arg_u64(args, "lamport_start")?,
            lamport_end: arg_u64(args, "lamport_end")?,
            ctx_lamport: arg_u64(args, "ctx_lamport")?,
            open: arg_u64(args, "open")? != 0,
        });
    }
    Ok(ParsedTrace { events, dropped })
}

/// All causal violations in one event log. `complete` is false when ring
/// overflow was reported, disabling the structural (missing-span) checks.
fn causal_violations(events: &[TraceEvent], complete: bool) -> Vec<String> {
    let mut violations = Vec::new();
    let mut traces: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        traces.entry(e.trace_id).or_default().push(e);
    }
    for (trace_id, evs) in &traces {
        let by_span: BTreeMap<u64, &TraceEvent> = evs.iter().map(|e| (e.span_id, *e)).collect();
        if complete && !by_span.contains_key(trace_id) {
            violations.push(format!("trace {trace_id}: missing root span"));
        }
        for e in evs {
            if e.parent_span == 0 {
                continue;
            }
            let Some(parent) = by_span.get(&e.parent_span) else {
                if complete {
                    violations.push(format!(
                        "trace {trace_id}: orphaned child `{}` (parent {} absent)",
                        e.name, e.parent_span
                    ));
                }
                continue;
            };
            if TraceEvent::node_of(e.parent_span) != e.node {
                // Cross-node edge: the child's node must have imported a
                // context minted after the parent opened.
                if e.ctx_lamport == 0 {
                    violations.push(format!(
                        "trace {trace_id}: `{}` closed on node {} which never \
                         saw its parent `{}` (no context stamp)",
                        e.name, e.node, parent.name
                    ));
                } else {
                    if e.ctx_lamport <= parent.lamport_start {
                        violations.push(format!(
                            "trace {trace_id}: context for `{}` stamped {} <= \
                             parent `{}` open {}",
                            e.name, e.ctx_lamport, parent.name, parent.lamport_start
                        ));
                    }
                    if e.lamport_start <= e.ctx_lamport {
                        violations.push(format!(
                            "trace {trace_id}: `{}` opened at {} despite \
                             importing context {}",
                            e.name, e.lamport_start, e.ctx_lamport
                        ));
                    }
                }
            } else if e.lamport_start <= parent.lamport_start {
                violations.push(format!(
                    "trace {trace_id}: child `{}` open {} <= parent `{}` open {}",
                    e.name, e.lamport_start, parent.name, parent.lamport_start
                ));
            }
            if e.name.starts_with("redirect/")
                && parent.name.starts_with("adopt/")
                && e.lamport_start <= parent.lamport_start
            {
                violations.push(format!(
                    "trace {trace_id}: `{}` before `{}` (lamport {} <= {})",
                    e.name, parent.name, e.lamport_start, parent.lamport_start
                ));
            }
        }
        // Single activation, causally stated: the destination's adoption
        // must follow the source's release of the same instance.
        for rel in evs.iter().filter(|e| !e.open) {
            let Some(instance) = rel.name.strip_prefix("release/") else {
                continue;
            };
            for adopt in evs
                .iter()
                .filter(|e| e.name.strip_prefix("adopt/") == Some(instance))
            {
                if adopt.lamport_start <= rel.lamport_end {
                    violations.push(format!(
                        "trace {trace_id}: `{}` before `{}` released \
                         (lamport {} <= {})",
                        adopt.name, rel.name, adopt.lamport_start, rel.lamport_end
                    ));
                }
                if !adopt.open && adopt.start_us < rel.end_us {
                    violations.push(format!(
                        "trace {trace_id}: `{}` adopted at {}us before release \
                         finished at {}us",
                        adopt.name, adopt.start_us, rel.end_us
                    ));
                }
            }
        }
        // Hot-swap ordering (E14). Rule 1: the new revision adopts only
        // after the old revision's quiesce AND final persist have closed —
        // an earlier adopt would read state still being written.
        for adopt in evs.iter().filter(|e| e.name.starts_with("u_adopt/")) {
            let instance = adopt.name.strip_prefix("u_adopt/").unwrap_or_default();
            for phase in ["u_quiesce/", "u_persist/"] {
                for prev in evs
                    .iter()
                    .filter(|e| !e.open && e.name.strip_prefix(phase) == Some(instance))
                {
                    if adopt.lamport_start <= prev.lamport_end {
                        violations.push(format!(
                            "trace {trace_id}: `{}` before `{}` finished \
                             (lamport {} <= {})",
                            adopt.name, prev.name, adopt.lamport_start, prev.lamport_end
                        ));
                    }
                    if adopt.start_us < prev.end_us {
                        violations.push(format!(
                            "trace {trace_id}: `{}` adopted at {}us before `{}` \
                             finished at {}us",
                            adopt.name, adopt.start_us, prev.name, prev.end_us
                        ));
                    }
                }
            }
        }
        // Rule 2: nothing is served by the old revision inside its own
        // quiesce window — a `serve/` span overlapping `u_quiesce/` on the
        // same node means the quiesce did not actually stop traffic.
        for q in evs
            .iter()
            .filter(|e| !e.open && e.name.starts_with("u_quiesce/"))
        {
            let instance = q.name.strip_prefix("u_quiesce/").unwrap_or_default();
            for s in evs
                .iter()
                .filter(|e| e.node == q.node && e.name.strip_prefix("serve/") == Some(instance))
            {
                if s.start_us < q.end_us && s.end_us > q.start_us {
                    violations.push(format!(
                        "trace {trace_id}: `{}` served during `{}` \
                         ({}..{}us inside {}..{}us)",
                        s.name, q.name, s.start_us, s.end_us, q.start_us, q.end_us
                    ));
                }
            }
        }
        // Rule 3: traffic is steered back (un-drained) only after every
        // swap in the trace has adopted — causally, not just by clock.
        for u in evs.iter().filter(|e| e.name.starts_with("undrain/")) {
            for adopt in evs
                .iter()
                .filter(|e| !e.open && e.name.starts_with("u_adopt/"))
            {
                if u.lamport_start <= adopt.lamport_end {
                    violations.push(format!(
                        "trace {trace_id}: `{}` before `{}` adopted \
                         (lamport {} <= {})",
                        u.name, adopt.name, u.lamport_start, adopt.lamport_end
                    ));
                }
            }
        }
    }
    violations
}

/// Phase latencies (simulated µs) of one complete graceful migration.
struct Breakdown {
    quiesce: u64,
    persist: u64,
    handoff: u64,
    adopt: u64,
    total: u64,
}

/// Extracts the latency breakdown of every `migrate/<name>`-rooted trace
/// whose five phase spans are all present and closed.
fn migration_breakdowns(events: &[TraceEvent]) -> Vec<Breakdown> {
    let mut traces: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        traces.entry(e.trace_id).or_default().push(e);
    }
    let mut out = Vec::new();
    for (trace_id, evs) in &traces {
        let Some(root) = evs.iter().find(|e| e.span_id == *trace_id) else {
            continue;
        };
        let Some(instance) = root.name.strip_prefix("migrate/") else {
            continue;
        };
        let find = |prefix: &str| {
            evs.iter()
                .find(|e| !e.open && e.name.strip_prefix(prefix) == Some(instance))
        };
        let (Some(release), Some(quiesce), Some(persist), Some(adopt)) = (
            find("release/"),
            find("quiesce/"),
            find("persist/"),
            find("adopt/"),
        ) else {
            continue;
        };
        out.push(Breakdown {
            quiesce: quiesce.duration_us(),
            persist: persist.duration_us(),
            handoff: adopt.start_us.saturating_sub(release.end_us),
            adopt: adopt.duration_us(),
            total: adopt.end_us.saturating_sub(root.start_us),
        });
    }
    out
}

fn stats_row(name: &str, samples: impl Iterator<Item = u64> + Clone) -> Vec<String> {
    let (mut min, mut max, mut sum, mut n) = (u64::MAX, 0u64, 0u64, 0u64);
    for v in samples {
        min = min.min(v);
        max = max.max(v);
        sum += v;
        n += 1;
    }
    vec![
        name.to_owned(),
        format!("{min}"),
        format!("{}", sum / n.max(1)),
        format!("{max}"),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<std::path::PathBuf> = if args.is_empty() {
        let dir = workspace_root().join("results");
        let mut found: Vec<_> = std::fs::read_dir(&dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("trace_") && n.ends_with(".json"))
                    })
                    .collect()
            })
            .unwrap_or_default();
        found.sort();
        if found.is_empty() {
            eprintln!(
                "no traces under {} — run the chaos sweep (or e5_migration_cost) \
                 first",
                dir.display()
            );
            std::process::exit(1);
        }
        found
    } else {
        args.iter().map(std::path::PathBuf::from).collect()
    };

    let mut failed = false;
    let mut total_violations = 0usize;
    let mut breakdowns = Vec::new();
    for path in &files {
        let parsed = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|text| parse_trace(&text));
        let trace = match parsed {
            Ok(t) => t,
            Err(e) => {
                failed = true;
                println!("  BAD {}: {e}", path.display());
                continue;
            }
        };
        let complete = trace.dropped == 0;
        let violations = causal_violations(&trace.events, complete);
        let migrations = migration_breakdowns(&trace.events);
        let traces: std::collections::BTreeSet<u64> =
            trace.events.iter().map(|e| e.trace_id).collect();
        let note = if complete {
            ""
        } else {
            "  [ring overflow: structural checks skipped]"
        };
        if violations.is_empty() {
            println!(
                "  ok  {}  (events {}, traces {}, migrations {}){note}",
                path.display(),
                trace.events.len(),
                traces.len(),
                migrations.len()
            );
        } else {
            failed = true;
            println!(
                "  BAD {}: {} causal violation(s)",
                path.display(),
                violations.len()
            );
            for v in &violations {
                println!("      {v}");
            }
        }
        total_violations += violations.len();
        breakdowns.extend(migrations);
    }

    if breakdowns.is_empty() {
        println!("\nno complete migrate/-rooted traces — no latency breakdown");
    } else {
        print_table(
            &format!(
                "Migration latency breakdown (simulated µs, {} migration(s))",
                breakdowns.len()
            ),
            &["phase", "min", "mean", "max"],
            &[
                stats_row("quiesce", breakdowns.iter().map(|b| b.quiesce)),
                stats_row("persist", breakdowns.iter().map(|b| b.persist)),
                stats_row("registry hand-off", breakdowns.iter().map(|b| b.handoff)),
                stats_row("adopt", breakdowns.iter().map(|b| b.adopt)),
                stats_row("total", breakdowns.iter().map(|b| b.total)),
            ],
        );
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "\n{} trace file(s), {total_violations} causal violations",
        files.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_telemetry::{FlightRecorder, TraceLog};

    /// Drives two recorders through a full graceful migration and returns
    /// the merged log: the reference "good" trace.
    fn migration_log() -> TraceLog {
        let src = FlightRecorder::new(0);
        let dst = FlightRecorder::new(1);
        let root = src.root("migrate/web", 1_000);
        let root_ctx = src.context(root).unwrap();
        let rel = src.child(root_ctx, "release/web", 2_000);
        let rel_ctx = src.context(rel).unwrap();
        let q = src.child(rel_ctx, "quiesce/web", 2_000);
        src.end(q, 2_500);
        let p = src.child(rel_ctx, "persist/web", 2_500);
        src.end(p, 4_000);
        src.end(rel, 4_000);
        let released = src.context(rel).unwrap();
        src.end(root, 4_100);
        let adopt = dst.child(released, "adopt/web", 5_000);
        dst.end(adopt, 7_000);
        TraceLog::merge([&src, &dst])
    }

    fn events() -> Vec<TraceEvent> {
        migration_log().events
    }

    #[test]
    fn clean_migration_has_no_violations() {
        assert_eq!(causal_violations(&events(), true), Vec::<String>::new());
    }

    #[test]
    fn export_parse_roundtrip_preserves_the_verdict() {
        let json = migration_log().to_chrome_json("t", 7);
        let parsed = parse_trace(&json).expect("parses");
        assert_eq!(parsed.events, events(), "roundtrip is lossless");
        assert!(causal_violations(&parsed.events, parsed.dropped == 0).is_empty());
    }

    #[test]
    fn breakdown_measures_every_phase() {
        let b = migration_breakdowns(&events());
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].quiesce, 500);
        assert_eq!(b[0].persist, 1_500);
        assert_eq!(b[0].handoff, 1_000, "release end 4000 -> adopt start 5000");
        assert_eq!(b[0].adopt, 2_000);
        assert_eq!(b[0].total, 6_000, "root open 1000 -> adopt end 7000");
    }

    #[test]
    fn missing_root_is_flagged() {
        let evs: Vec<_> = events()
            .into_iter()
            .map(|mut e| {
                // Re-home the whole trace onto a span id that no event has
                // (span sequence numbers here stay far below 1000).
                e.trace_id += 1_000;
                e
            })
            .collect();
        let v = causal_violations(&evs, true);
        assert!(v.iter().any(|v| v.contains("missing root")), "{v:?}");
        // Incomplete logs (ring overflow) skip the structural check.
        assert!(causal_violations(&evs, false).is_empty());
    }

    #[test]
    fn orphaned_child_is_flagged() {
        let evs: Vec<_> = events()
            .into_iter()
            .filter(|e| e.name != "release/web")
            .collect();
        let v = causal_violations(&evs, true);
        assert!(v.iter().any(|v| v.contains("orphaned child")), "{v:?}");
    }

    #[test]
    fn blind_remote_adopt_is_flagged() {
        let mut evs = events();
        let adopt = evs.iter_mut().find(|e| e.name == "adopt/web").unwrap();
        adopt.ctx_lamport = 0;
        let v = causal_violations(&evs, true);
        assert!(
            v.iter().any(|v| v.contains("never saw its parent")),
            "{v:?}"
        );
    }

    #[test]
    fn adopt_before_release_is_flagged() {
        let mut evs = events();
        let rel_end = evs
            .iter()
            .find(|e| e.name == "release/web")
            .unwrap()
            .lamport_end;
        let adopt = evs.iter_mut().find(|e| e.name == "adopt/web").unwrap();
        adopt.lamport_start = rel_end; // not strictly after the release
        adopt.start_us = 3_000; // and wall-clock inside the release window
        let v = causal_violations(&evs, true);
        assert!(
            v.iter()
                .any(|v| v.contains("before `release/web` released")),
            "{v:?}"
        );
        assert!(
            v.iter().any(|v| v.contains("before release finished")),
            "{v:?}"
        );
    }

    #[test]
    fn local_lamport_inversion_is_flagged() {
        let mut evs = events();
        let q = evs.iter_mut().find(|e| e.name == "quiesce/web").unwrap();
        q.lamport_start = 1; // claims to precede its parent's open
        let v = causal_violations(&evs, true);
        assert!(v.iter().any(|v| v.contains("child `quiesce/web`")), "{v:?}");
    }

    /// Drives a node recorder and a load-balancer recorder through one
    /// clean hot-swap (drain → quiesce → persist → adopt → un-drain): the
    /// reference "good" upgrade trace for the E14 rules.
    fn upgrade_log() -> TraceLog {
        let node = FlightRecorder::new(0);
        let lb = FlightRecorder::new(9);
        let root = node.root("upgrade/ctr-0", 1_000);
        let ctx = node.context(root).unwrap();
        let q = node.child(ctx, "u_quiesce/org.app.counter-wt", 1_000);
        node.end(q, 1_050);
        let p = node.child(ctx, "u_persist/org.app.counter-wt", 1_050);
        node.end(p, 1_400);
        let a = node.child(ctx, "u_adopt/org.app.counter-wt", 1_400);
        node.end(a, 1_550);
        node.end(root, 1_550);
        let done = node.context(root).unwrap();
        let u = lb.child(done, "undrain/n0", 2_000);
        lb.end(u, 2_010);
        TraceLog::merge([&node, &lb])
    }

    fn upgrade_events() -> Vec<TraceEvent> {
        upgrade_log().events
    }

    #[test]
    fn clean_upgrade_has_no_violations() {
        assert_eq!(
            causal_violations(&upgrade_events(), true),
            Vec::<String>::new()
        );
    }

    /// Rule 1: an adopt stamped before the final persist closed — the new
    /// revision would be reading state still in flight.
    #[test]
    fn upgrade_adopt_before_persist_end_is_flagged() {
        let mut evs = upgrade_events();
        let persist = evs
            .iter()
            .find(|e| e.name == "u_persist/org.app.counter-wt")
            .unwrap()
            .clone();
        let adopt = evs
            .iter_mut()
            .find(|e| e.name == "u_adopt/org.app.counter-wt")
            .unwrap();
        adopt.lamport_start = persist.lamport_end; // not strictly after
        adopt.start_us = 1_200; // and wall-clock inside the persist window
        let v = causal_violations(&evs, true);
        assert!(
            v.iter()
                .any(|v| v.contains("before `u_persist/org.app.counter-wt` finished")),
            "{v:?}"
        );
        assert!(
            v.iter().any(|v| v.contains("adopted at 1200us before")),
            "{v:?}"
        );
    }

    /// Rule 2: a serve span overlapping the quiesce window on the same
    /// node — the old revision kept serving while supposedly quiesced.
    #[test]
    fn serve_during_quiesce_is_flagged() {
        let mut evs = upgrade_events();
        let q = evs
            .iter()
            .find(|e| e.name == "u_quiesce/org.app.counter-wt")
            .unwrap()
            .clone();
        let mut serve = q.clone();
        serve.name = "serve/org.app.counter-wt".into();
        serve.span_id = q.span_id + 7; // unique, same node encoding irrelevant
        serve.parent_span = q.parent_span;
        serve.lamport_start = q.lamport_start + 1;
        serve.lamport_end = q.lamport_end + 1;
        serve.start_us = 1_010;
        serve.end_us = 1_040; // inside the 1_000..1_050 quiesce window
        evs.push(serve);
        let v = causal_violations(&evs, true);
        assert!(v.iter().any(|v| v.contains("served during")), "{v:?}");
    }

    /// Rule 3: traffic steered back onto the node before the swap adopted
    /// — the un-drain must be causally after every adopt in the trace.
    #[test]
    fn undrain_before_adopt_is_flagged() {
        let mut evs = upgrade_events();
        let adopt = evs
            .iter()
            .find(|e| e.name == "u_adopt/org.app.counter-wt")
            .unwrap()
            .clone();
        let undrain = evs.iter_mut().find(|e| e.name == "undrain/n0").unwrap();
        undrain.lamport_start = adopt.lamport_end; // tie: not strictly after
        let v = causal_violations(&evs, true);
        assert!(
            v.iter()
                .any(|v| v.contains("`undrain/n0` before `u_adopt/org.app.counter-wt` adopted")),
            "{v:?}"
        );
    }

    #[test]
    fn redirect_must_follow_its_adopt() {
        let mut evs = events();
        let adopt = evs.iter().find(|e| e.name == "adopt/web").unwrap().clone();
        let mut redirect = adopt.clone();
        redirect.name = "redirect/n0".into();
        redirect.span_id = adopt.span_id + 1;
        redirect.parent_span = adopt.span_id;
        redirect.ctx_lamport = adopt.lamport_end;
        redirect.lamport_start = adopt.lamport_start; // tie: not after
        evs.push(redirect);
        let v = causal_violations(&evs, true);
        assert!(
            v.iter()
                .any(|v| v.contains("`redirect/n0` before `adopt/web`")),
            "{v:?}"
        );
    }
}
