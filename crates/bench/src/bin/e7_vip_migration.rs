//! **E7 — Figure 5: unique IP per service.**
//!
//! In the unique-IP localization scheme, migrating a service means the old
//! node *releases* the IP and the new node *binds* it; requests arriving in
//! between are lost. This binary measures that request-loss window against
//! a client that retries a request every millisecond, for both the
//! graceful-migration and the crash-failover paths.

use dosgi_bench::print_table;
use dosgi_core::{workloads, ClusterConfig, DosgiCluster, NodeEvent};
use dosgi_net::{IpAddr, NodeId, SimDuration};

const VIP: IpAddr = IpAddr::new(10, 0, 0, 100);

/// Drives the cluster while keeping the VIP bound to the instance's
/// current home (what the Migration Module does in Fig. 5), and counts
/// client probes that found nobody answering the IP.
fn run(graceful: bool, seed: u64) -> (u64, u64, SimDuration) {
    let mut c = DosgiCluster::new(3, ClusterConfig::default(), seed);
    c.run_for(SimDuration::from_secs(1));
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(500));
    c.net_mut().ips_mut().bind(VIP, NodeId(0)).unwrap();

    if graceful {
        c.migrate("web", 1).unwrap();
    } else {
        c.crash_node(0); // SimNet releases the dead node's VIPs itself
    }

    let mut lost = 0u64;
    let mut total = 0u64;
    let mut first_lost_at = None;
    let mut last_lost_at = None;
    for _ in 0..4000 {
        c.run_for(SimDuration::from_millis(1));
        // Fig. 5 re-binding: when the instance lands on its new home and
        // the VIP is free, the new node binds it.
        let home = c.home_of("web").map(|h| NodeId(h as u32));
        let owner = c.net_mut().ips().owner_of(VIP);
        if let (Some(home), None) = (home, owner) {
            if c.probe("web") {
                c.net_mut().ips_mut().bind(VIP, home).unwrap();
            }
        }
        // On graceful migration the source releases the VIP the moment the
        // instance stops serving locally.
        if graceful {
            if let Some(owner) = c.net_mut().ips().owner_of(VIP) {
                let still_there = c.home_of("web") == Some(owner.index()) && c.probe("web");
                if !still_there {
                    let _ = c.net_mut().ips_mut().release(VIP, owner);
                }
            }
        }
        // The client: one request per millisecond against the VIP.
        total += 1;
        let answered = c
            .net_mut()
            .ips()
            .owner_of(VIP)
            .map(|owner| c.home_of("web") == Some(owner.index()) && c.probe("web"))
            .unwrap_or(false);
        if !answered {
            lost += 1;
            let now = c.now();
            first_lost_at.get_or_insert(now);
            last_lost_at = Some(now);
        }
    }
    // The events stream confirms the move actually happened.
    let events = c.take_events();
    assert!(events
        .iter()
        .any(|(_, e)| matches!(e, NodeEvent::Adopted { .. })));
    let window = match (first_lost_at, last_lost_at) {
        (Some(a), Some(b)) => b.since(a) + SimDuration::from_millis(1),
        _ => SimDuration::ZERO,
    };
    (lost, total, window)
}

fn main() {
    let (lost_g, total_g, window_g) = run(true, 900);
    let (lost_c, total_c, window_c) = run(false, 901);
    print_table(
        "E7: request loss through a unique-IP move (client retries at 1ms)",
        &["path", "lost requests", "of", "loss window"],
        &[
            vec![
                "graceful migration (release → bind)".to_string(),
                lost_g.to_string(),
                total_g.to_string(),
                format!("{window_g}"),
            ],
            vec![
                "crash failover (implicit release)".to_string(),
                lost_c.to_string(),
                total_c.to_string(),
                format!("{window_c}"),
            ],
        ],
    );
    println!(
        "\nShape check (Fig. 5): the unique-IP scheme works but leaves a loss \
         window equal to the hand-off; crash failover adds the detection time. \
         Fig. 6's ipvs scheme (E8) removes the window by decoupling the IP from \
         the service's node."
    );
}
