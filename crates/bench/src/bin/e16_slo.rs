//! **E16 — SLO burn-rate alerting: lead time, alert-driven reaction,
//! bounded series memory.**
//!
//! The observability tentpole's acceptance experiment, deterministic on
//! the simulated clock:
//!
//! 1. **Alert lead-time race (E16a)** — replay the E15b flash crowd
//!    (3× burst at 8 s against one bounded-queue backend, no reaction so
//!    the overload persists) and race two detectors over the same
//!    telemetry: the [`SloEngine`]'s multi-window burn rates over the
//!    standard-class bad/total counters, against a naive threshold poll
//!    (client-perceived rolling p95 sampled every second, breach
//!    sustained three polls before paging — the anti-flap damping every
//!    real threshold alert needs). Burn rates integrate every request
//!    outcome continuously and need no damping — the multi-window pair
//!    *is* the flap resistance — so the alert must fire ≥ 2 s earlier.
//!    The quiet 8 s before the burst must page neither detector.
//! 2. **Alert-driven policy (E16b)** — the same flash crowd, reacted to:
//!    once with `POLLED_OVERLOAD_POLICY` (p95 polling, E15b's loop) and
//!    once with `OVERLOAD_POLICY` driven by `alert_firing("std-latency")`
//!    from the SLO engine. The alert path must scale out no later than
//!    the polled path and finish with equal-or-better goodput.
//! 3. **Bounded series memory (E16c)** — a 10-sim-minute cluster run
//!    with the series scraper on: every ring stays within capacity, and
//!    `telemetry.series.dropped_points` accounts for every compacted
//!    point exactly (`appended == retained + dropped`).
//!
//! Emits `results/telemetry_e16.json` (schema v3: includes the alert
//! timeline; validated by `telemetry_check`).

use dosgi_bench::{print_table, write_telemetry_snapshot};
use dosgi_core::autonomic::{OVERLOAD_POLICY, POLLED_OVERLOAD_POLICY};
use dosgi_core::loadgen::{Burst, ClassMix, RateSchedule, ScheduledLoadGenerator};
use dosgi_core::{ClusterConfig, DosgiCluster};
use dosgi_ipvs::{
    replicated_service, AdmissionConfig, IpvsDirector, RealServer, RequestClass, RouteError,
    Scheduler,
};
use dosgi_net::{IpAddr, NodeId, Port, SimDuration, SimTime, SocketAddr};
use dosgi_policy::{Blackboard, PolicyAction, PolicyEngine};
use dosgi_telemetry::{ScrapeConfig, SloEngine, SloSpec, Telemetry, DROPPED_POINTS};

const VIP: SocketAddr = SocketAddr::new(IpAddr::new(10, 0, 0, 150), Port(80));
/// One backend's deterministic service capacity (requests/second) — E15's.
const CAPACITY: u64 = 2_000;
const QUEUE_CAPACITY: usize = 64;
const SEED: u64 = 15;
const TICK_US: u64 = 5_000;
/// Both detectors' evaluation cadence (the scrape cadence).
const CADENCE_US: u64 = 250_000;
/// The naive threshold poll's cadence and anti-flap damping: page only
/// after three consecutive breaching 1 s polls. Generous to the naive
/// side — production threshold alerts poll slower and damp longer.
const NAIVE_POLL_US: u64 = 1_000_000;
const NAIVE_SUSTAIN: usize = 3;
/// 1% of standard-class requests may go bad (shed, or completed over
/// the class SLO) — the error budget behind `std-latency`.
const BUDGET_PPM: u64 = 10_000;
/// A shed standard request counts as a 10 s experience in the naive
/// detector's client-perceived latency window (E15b's penalty).
const SHED_PENALTY_US: u64 = 10_000_000;
const BURST_AT_S: u64 = 8;
const BURST_SECS: u64 = 10;
const HORIZON_SECS: u64 = 60;

fn std_latency_slo(name: &str) -> SloSpec {
    SloSpec::new(
        name,
        vec!["e16.req.std.bad".to_owned()],
        vec!["e16.req.std.total".to_owned()],
        BUDGET_PPM,
    )
}

fn flash_crowd() -> RateSchedule {
    RateSchedule::constant(CAPACITY as f64).with_burst(Burst {
        start: SimTime::from_secs(BURST_AT_S),
        duration: SimDuration::from_secs(BURST_SECS),
        multiplier: 3.0,
    })
}

fn one_backend_director(telemetry: &Telemetry) -> IpvsDirector {
    let mut d = IpvsDirector::new();
    d.set_telemetry(telemetry.clone());
    d.add_service(
        replicated_service(VIP, Scheduler::RoundRobin, &[NodeId(0)]).with_admission(
            AdmissionConfig {
                queue_capacity: QUEUE_CAPACITY,
                service_us_per_request: 1_000_000 / CAPACITY,
            },
        ),
    );
    d
}

/// E16a: detection only — no reaction, one backend, overload persists
/// through the whole burst. Returns (alert_fired_at, naive_fired_at).
fn alert_lead_race(telemetry: &Telemetry) {
    let mut d = one_backend_director(telemetry);
    let mut slo = SloEngine::new(CADENCE_US);
    slo.add(std_latency_slo("std-latency-race"));
    let mut gen = ScheduledLoadGenerator::new(flash_crowd(), SEED + 1, SimTime::ZERO);
    let mut mix = ClassMix::standard_web(SEED + 1);
    let mut client = 0u64;
    // The naive detector's rolling 1 s window of client-perceived
    // standard-class experiences (completions + shed penalties).
    let mut window: Vec<(u64, u64)> = Vec::new();
    let mut alert_at: Option<u64> = None;
    let mut naive_at: Option<u64> = None;
    let mut naive_streak = 0usize;
    let mut next_eval_us = CADENCE_US;
    let mut next_poll_us = NAIVE_POLL_US;
    let horizon_us = HORIZON_SECS * 1_000_000;
    let mut now_us = 0u64;
    while now_us < horizon_us {
        now_us += TICK_US;
        for _ in 0..gen.arrivals_until(SimTime::from_micros(now_us)) {
            client += 1;
            let class = mix.sample();
            if let Err(RouteError::Shed(_, shed_class)) = d.admit(client, VIP, class, now_us) {
                if shed_class == RequestClass::Standard {
                    // Outcome known immediately: a shed request is bad.
                    telemetry.add("e16.req.std.total", 1);
                    telemetry.add("e16.req.std.bad", 1);
                    window.push((now_us, SHED_PENALTY_US));
                }
            }
        }
        for c in d.drain(VIP, now_us) {
            if c.class == RequestClass::Standard {
                telemetry.add("e16.req.std.total", 1);
                if c.missed_deadline() {
                    telemetry.add("e16.req.std.bad", 1);
                }
                window.push((c.completed_us, c.latency_us()));
            }
        }
        if now_us >= next_eval_us {
            next_eval_us += CADENCE_US;
            for e in slo.observe(telemetry, now_us) {
                if e.firing && alert_at.is_none() {
                    alert_at = Some(e.at_us);
                }
            }
        }
        if now_us >= next_poll_us {
            next_poll_us += NAIVE_POLL_US;
            window.retain(|(at, _)| *at + 1_000_000 > now_us);
            let mut lat: Vec<u64> = window.iter().map(|(_, l)| *l).collect();
            lat.sort_unstable();
            let p95 = if lat.is_empty() {
                0
            } else {
                lat[(lat.len() - 1) * 95 / 100]
            };
            if p95 > RequestClass::Standard.slo_us() {
                naive_streak += 1;
                if naive_streak >= NAIVE_SUSTAIN && naive_at.is_none() {
                    naive_at = Some(now_us);
                }
            } else {
                naive_streak = 0;
            }
        }
    }
    let burst_us = BURST_AT_S * 1_000_000;
    let fmt = |at: Option<u64>| match at {
        Some(us) => format!(
            "{:.2}s (+{:.2}s after burst)",
            us as f64 / 1e6,
            (us - burst_us) as f64 / 1e6
        ),
        None => format!("never (horizon {HORIZON_SECS}s)"),
    };
    print_table(
        "E16a: detection race on the E15 flash crowd (3x burst at 8s, no reaction)",
        &["detector", "first page"],
        &[
            vec!["burn-rate alert (multi-window)".to_string(), fmt(alert_at)],
            vec![
                format!("naive p95 poll (1s, sustain {NAIVE_SUSTAIN})"),
                fmt(naive_at),
            ],
        ],
    );
    let alert_at = alert_at.expect("the burst must fire the burn-rate alert");
    assert!(
        alert_at >= burst_us,
        "no false page in the quiet 8s before the burst (alert at {alert_at}us)"
    );
    let naive_at = naive_at.expect("the persistent overload must breach the naive poll too");
    assert!(
        alert_at + 2_000_000 <= naive_at,
        "burn-rate alert must lead the naive threshold poll by >=2s \
         (alert {alert_at}us, naive {naive_at}us)"
    );
    println!(
        "lead time: {:.2}s (alert {:.2}s, naive poll {:.2}s)",
        (naive_at - alert_at) as f64 / 1e6,
        alert_at as f64 / 1e6,
        naive_at as f64 / 1e6
    );
    // The race also demonstrates resolution: once the burst's badness
    // ages out of the slow pair's windows the alert clears on its own.
    let resolved = telemetry
        .alerts()
        .iter()
        .any(|e| e.slo == "std-latency-race" && !e.firing);
    assert!(resolved, "the alert must resolve before the 60s horizon");
}

/// One reacted flash-crowd run for E16b: `alerts=false` replays E15b's
/// polled loop, `alerts=true` drives `OVERLOAD_POLICY` from the SLO
/// engine. Returns (total goodput, scale-out time).
fn reacted_run(telemetry: &Telemetry, alerts: bool) -> (u64, Option<u64>) {
    let mut d = one_backend_director(telemetry);
    let script = if alerts {
        OVERLOAD_POLICY
    } else {
        POLLED_OVERLOAD_POLICY
    };
    let mut engine = PolicyEngine::compile(script).expect("overload policy compiles");
    let mut bb = Blackboard::new();
    let mut slo = SloEngine::new(CADENCE_US);
    if alerts {
        slo.add(std_latency_slo("std-latency"));
    }
    let mut gen = ScheduledLoadGenerator::new(flash_crowd(), SEED + 1, SimTime::ZERO);
    let mut mix = ClassMix::standard_web(SEED + 1);
    let mut client = 0u64;
    let mut window: Vec<(u64, u64)> = Vec::new();
    let mut replicas = 1usize;
    let mut good = 0u64;
    let mut scaled_at: Option<u64> = None;
    let mut next_policy_us = CADENCE_US;
    let horizon_us = HORIZON_SECS * 1_000_000;
    let mut now_us = 0u64;
    while now_us < horizon_us {
        now_us += TICK_US;
        for _ in 0..gen.arrivals_until(SimTime::from_micros(now_us)) {
            client += 1;
            let class = mix.sample();
            if let Err(RouteError::Shed(_, RequestClass::Standard)) =
                d.admit(client, VIP, class, now_us)
            {
                if alerts {
                    telemetry.add("e16.req.std.total", 1);
                    telemetry.add("e16.req.std.bad", 1);
                }
                window.push((now_us, SHED_PENALTY_US));
            }
        }
        for c in d.drain(VIP, now_us) {
            if !c.missed_deadline() {
                good += 1;
            }
            if c.class == RequestClass::Standard {
                if alerts {
                    telemetry.add("e16.req.std.total", 1);
                    if c.missed_deadline() {
                        telemetry.add("e16.req.std.bad", 1);
                    }
                }
                window.push((c.completed_us, c.latency_us()));
            }
        }
        if now_us >= next_policy_us {
            next_policy_us += CADENCE_US;
            window.retain(|(at, _)| *at + 1_000_000 > now_us);
            if alerts {
                slo.observe(telemetry, now_us);
                bb.set_subject_metric(
                    "std-latency",
                    "alert_firing",
                    if slo.firing("std-latency") { 1.0 } else { 0.0 },
                );
            } else {
                let mut lat: Vec<u64> = window.iter().map(|(_, l)| *l).collect();
                lat.sort_unstable();
                let p95 = if lat.is_empty() {
                    0
                } else {
                    lat[(lat.len() - 1) * 95 / 100]
                };
                bb.set_global_metric("p95_latency_us", p95 as f64);
                bb.set_global_metric("slo_us", RequestClass::Standard.slo_us() as f64);
            }
            let depth: usize = d.queue_depths(VIP).iter().map(|(_, q)| q).sum();
            bb.set_global_metric("queue_depth", depth as f64);
            bb.set_global_metric("queue_capacity", (QUEUE_CAPACITY * replicas) as f64);
            for decision in engine.evaluate(&bb, &["std-latency".to_owned()]) {
                match &decision.action {
                    PolicyAction::ScaleOut if replicas < 2 => {
                        replicas += 1;
                        scaled_at = Some(now_us);
                        let vs = d.service_mut(VIP).expect("vip registered");
                        vs.add_server(RealServer::new(NodeId(1)));
                    }
                    PolicyAction::ShedClass { class } => {
                        if let Some(c) = RequestClass::from_name(class) {
                            if !d.is_shedding(VIP, c) {
                                d.set_shed_class(VIP, c, true);
                            }
                        }
                    }
                    PolicyAction::Custom { name, args, .. } if name == "stop_shed" => {
                        if let Some(c) = args.first().and_then(|a| RequestClass::from_name(a)) {
                            if d.is_shedding(VIP, c) {
                                d.set_shed_class(VIP, c, false);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    (good, scaled_at)
}

/// E16b: the alert-driven policy must react no later than the polled
/// baseline and finish with equal-or-better goodput on the same workload.
fn alert_driven_policy(telemetry: &Telemetry) {
    let (polled_good, polled_scaled) = reacted_run(telemetry, false);
    let (alert_good, alert_scaled) = reacted_run(telemetry, true);
    let fmt = |at: Option<u64>| {
        at.map(|us| format!("{:.2}s", us as f64 / 1e6))
            .unwrap_or_else(|| "never".to_string())
    };
    print_table(
        "E16b: reacted flash crowd — alert-driven OVERLOAD_POLICY vs p95 polling",
        &["driver", "scale-out at", "goodput (60s)"],
        &[
            vec![
                "p95 poll (POLLED_OVERLOAD_POLICY)".to_string(),
                fmt(polled_scaled),
                polled_good.to_string(),
            ],
            vec![
                "burn-rate alert (OVERLOAD_POLICY)".to_string(),
                fmt(alert_scaled),
                alert_good.to_string(),
            ],
        ],
    );
    let polled_scaled = polled_scaled.expect("polled baseline must scale out");
    let alert_scaled = alert_scaled.expect("alert-driven run must scale out");
    assert!(
        alert_scaled <= polled_scaled,
        "the alert must not react later than the poll \
         (alert {alert_scaled}us, polled {polled_scaled}us)"
    );
    assert!(
        alert_good >= polled_good,
        "alert-driven goodput must be equal or better: {alert_good} vs {polled_good}"
    );
}

/// E16c: ten sim-minutes of a live cluster with the scraper on — series
/// memory stays bounded and every compacted point is accounted for.
fn bounded_series_memory(telemetry: &Telemetry) {
    let dropped_before = telemetry.counter(DROPPED_POINTS);
    let mut c =
        DosgiCluster::new_with_telemetry(5, ClusterConfig::default(), SEED, telemetry.clone());
    c.enable_observability(ScrapeConfig::default(), DosgiCluster::default_slos());
    for i in 0..3 {
        c.deploy(
            dosgi_core::workloads::web_instance("acme", &format!("web{i}")),
            i,
        )
        .unwrap();
    }
    // Ten minutes of protocol traffic with a migration every minute so
    // the counters keep moving.
    for minute in 0..10 {
        c.migrate("web0", ((minute + 1) % 5) as usize).unwrap();
        c.run_for(SimDuration::from_secs(60));
    }
    let scraper = c.scraper().expect("observability on");
    let cadence = scraper.cadence_us();
    assert!(
        scraper.scrapes() >= 600_000_000 / cadence - 5,
        "ten minutes at {cadence}us cadence must keep scraping: {}",
        scraper.scrapes()
    );
    let mut retained = 0usize;
    for name in scraper.series_names() {
        let s = scraper.series(name).unwrap();
        assert!(s.len() <= s.capacity(), "{name} exceeded its ring");
        assert_eq!(
            s.appended(),
            s.len() as u64 + s.dropped(),
            "{name}: inexact drop accounting"
        );
        retained += s.len();
    }
    let dropped = scraper.total_dropped();
    assert!(dropped > 0, "2400 scrapes through 240-rings must compact");
    assert_eq!(
        telemetry.counter(DROPPED_POINTS) - dropped_before,
        dropped,
        "the registry counter must mirror the scraper's drops exactly"
    );
    // 16 bytes/point (u64 timestamp + i64 value) — the bound the rings buy.
    print_table(
        "E16c: series memory after 10 sim-minutes, 5 nodes, scraper on",
        &["metric", "value"],
        &[
            vec!["scrapes".to_string(), scraper.scrapes().to_string()],
            vec!["series".to_string(), scraper.series_count().to_string()],
            vec!["points retained".to_string(), retained.to_string()],
            vec![
                "points appended".to_string(),
                scraper.total_appended().to_string(),
            ],
            vec!["points compacted away".to_string(), dropped.to_string()],
            vec![
                "retained bytes (16B/point)".to_string(),
                (retained * 16).to_string(),
            ],
        ],
    );
}

fn main() {
    let telemetry = Telemetry::new();
    alert_lead_race(&telemetry);
    alert_driven_policy(&telemetry);
    bounded_series_memory(&telemetry);
    write_telemetry_snapshot(&telemetry, "e16", SEED);
    println!(
        "\nShape check (observability tentpole): multi-window burn rates page \
         >=2s before a damped threshold poll on the same flash crowd, drive \
         the overload policy at least as well as p95 polling, and the series \
         layer holds a 10-minute run in bounded memory with exact drop \
         accounting."
    );
}
