//! **E13 measurement harness** — real-clock throughput, shared between the
//! `e13_throughput` experiment binary and the CI `perf_guard`.
//!
//! Everything here is **wall-clock**: the point of E13 is that the
//! real-clock runtime hosts genuinely concurrent nodes, so the numbers are
//! honest thread-overlap measurements, not simulated-time projections. On
//! the single-core CI container the scaling comes from *latency overlap*
//! (protocol rounds and paced clients spend most of their time waiting, so
//! T concurrent streams finish ~T× the work per wall second), which is
//! exactly the claim a multi-tenant runtime needs.
//!
//! Three instruments:
//!
//! * [`migration_ops_per_sec`] — T independent 2-node [`RealCluster`]s,
//!   each ping-ponging a stateful counter instance between its nodes.
//!   One "op" is a full migrate → re-materialize → probe-converged round.
//! * [`admission_ops_per_sec`] — T paced open-loop clients, each driving
//!   its own admission-controlled VIP off the shared monotonic clock.
//! * [`admission_tight_ops_per_sec`] — the sim-vs-real control: one
//!   thread, no pacing, identical op mix; the only difference is where
//!   `now` comes from (a virtual counter vs the real clock). The real
//!   variant must not regress: the runtime abstraction adds no hot-path
//!   cost.
//!
//! Plus [`optimization_wins`]: before/after micro-measurements of the
//! three PR-9 hot-path optimizations (zero-copy wire decode, scratch-reuse
//! wire encode, pre-sized SAN codec, sharded registry reads).

use dosgi_core::{workloads, NodeConfig, RealCluster};
use dosgi_gcs::{decode_frame, decode_frame_borrowed, encode_frame_at, encode_frame_into_at};
use dosgi_ipvs::{replicated_service, AdmissionConfig, IpvsDirector, RequestClass, Scheduler};
use dosgi_net::{Clock, IpAddr, NodeId, Port, RealClock, SocketAddr};
use dosgi_osgi::{BundleId, CallContext, PropValue, ServiceRegistry};
use dosgi_san::Value;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Aggregate ops/sec over per-thread (ops, elapsed) samples: each thread
/// contributes its own rate, so one straggler does not skew the rest.
fn aggregate(samples: &[(u64, Duration)]) -> f64 {
    samples
        .iter()
        .map(|(ops, el)| *ops as f64 / el.as_secs_f64().max(1e-9))
        .sum()
}

/// T independent 2-node real-clock clusters, each migrating one counter
/// instance back and forth for `window`. Returns aggregate completed
/// migration rounds per second.
pub fn migration_ops_per_sec(threads: usize, window: Duration) -> f64 {
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let cluster = RealCluster::new(2, NodeConfig::default());
                let (a, b) = (cluster.ids()[0], cluster.ids()[1]);
                let name = format!("mig-{t}");
                cluster
                    .deploy(a, workloads::counter_instance("bench", &name))
                    .expect("deploy accepted");
                assert!(
                    cluster.await_running(a, &name, Duration::from_secs(20)),
                    "instance must settle before the timed window"
                );
                barrier.wait();
                let start = Instant::now();
                let mut here = a;
                let mut rounds = 0u64;
                while start.elapsed() < window {
                    let to = if here == a { b } else { a };
                    cluster.migrate(here, &name, to).expect("migrate accepted");
                    assert!(
                        cluster.await_running(to, &name, Duration::from_secs(20)),
                        "migration must converge"
                    );
                    here = to;
                    rounds += 1;
                }
                let elapsed = start.elapsed();
                cluster.shutdown();
                (rounds, elapsed)
            })
        })
        .collect();
    let samples: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("migration thread survives"))
        .collect();
    aggregate(&samples)
}

fn class_for(c: u64) -> RequestClass {
    match c % 10 {
        0 => RequestClass::Critical,
        1..=6 => RequestClass::Standard,
        _ => RequestClass::Background,
    }
}

/// T paced open-loop admission clients (one VIP + director each), stamping
/// request times from the shared real clock. One "op" is an
/// admit-or-shed decision; completed work drains as real time passes.
/// Returns aggregate decisions per second.
pub fn admission_ops_per_sec(threads: usize, window: Duration) -> f64 {
    /// Inter-arrival pace per client: 50µs → ~20k decisions/s/thread of
    /// mostly-waiting work, so threads overlap instead of contending.
    const PACE: Duration = Duration::from_micros(50);
    let clock = RealClock::default();
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let barrier = barrier.clone();
            let clock = clock.clone();
            std::thread::spawn(move || {
                let vip = SocketAddr::new(IpAddr::new(10, 0, 13, t as u8 + 1), Port(80));
                let mut d = IpvsDirector::new();
                d.add_service(
                    replicated_service(vip, Scheduler::RoundRobin, &[NodeId(0)])
                        .with_admission(AdmissionConfig::per_second(2_000, 64)),
                );
                barrier.wait();
                let start = Instant::now();
                let mut ops = 0u64;
                let mut client = 0u64;
                while start.elapsed() < window {
                    client += 1;
                    let now_us = clock.now().as_micros();
                    let _ = d.admit(client, vip, class_for(client), now_us);
                    ops += 1;
                    if client.is_multiple_of(8) {
                        black_box(d.drain(vip, now_us).len());
                    }
                    std::thread::sleep(PACE);
                }
                (ops, start.elapsed())
            })
        })
        .collect();
    let samples: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("admission thread survives"))
        .collect();
    aggregate(&samples)
}

/// Single-thread, unpaced admission loop: identical op mix, with `now`
/// taken from a virtual 500µs-per-op counter (`real_clock = false`, the
/// simulator's view of time) or from the monotonic [`RealClock`]
/// (`real_clock = true`). Comparing the two isolates the cost of the
/// real-clock abstraction itself on the hot path.
pub fn admission_tight_ops_per_sec(real_clock: bool, window: Duration) -> f64 {
    let vip = SocketAddr::new(IpAddr::new(10, 0, 14, 1), Port(80));
    let mut d = IpvsDirector::new();
    d.add_service(
        replicated_service(vip, Scheduler::RoundRobin, &[NodeId(0)])
            .with_admission(AdmissionConfig::per_second(2_000, 64)),
    );
    let clock = RealClock::default();
    let mut virtual_us = 0u64;
    let start = Instant::now();
    let mut ops = 0u64;
    let mut client = 0u64;
    while start.elapsed() < window {
        // Check the wall clock once per batch, not per op.
        for _ in 0..256 {
            client += 1;
            let now_us = if real_clock {
                clock.now().as_micros()
            } else {
                virtual_us += 500;
                virtual_us
            };
            let _ = d.admit(client, vip, class_for(client), now_us);
            ops += 1;
            if client.is_multiple_of(8) {
                black_box(d.drain(vip, now_us).len());
            }
        }
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// One before/after micro-measurement: the old allocating path vs the new
/// zero-copy/pre-sized path, in ns per op.
pub struct OptWin {
    /// Which optimization (stable key, used in tables and JSON).
    pub name: &'static str,
    /// ns/op on the pre-PR-9 shape of the code.
    pub old_ns: f64,
    /// ns/op on the optimized path.
    pub new_ns: f64,
}

impl OptWin {
    /// old/new speedup factor.
    pub fn speedup(&self) -> f64 {
        self.old_ns / self.new_ns.max(1e-9)
    }
}

/// Times `f` over enough iterations to be stable, returns ns/op.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Warm up, then scale iterations to ~20ms of work.
    for _ in 0..100 {
        f();
    }
    let probe = Instant::now();
    for _ in 0..100 {
        f();
    }
    let per = probe.elapsed().as_nanos().max(1) as f64 / 100.0;
    let iters = ((20_000_000.0 / per) as u64).clamp(100, 2_000_000);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// A 4 KiB state-sync-shaped payload inside an `Ordered` frame — the shape
/// the migration hot path pushes through the wire layer.
fn sample_frame() -> (dosgi_gcs::GcsWire<Value>, Vec<u8>) {
    let payload = Value::map()
        .with("instance", "bench/ctr")
        .with("state", Value::Bytes(vec![0xA5u8; 4096]));
    let msg = dosgi_gcs::GcsWire::Ordered {
        gseq: 917,
        origin: NodeId(2),
        origin_inc: 3,
        origin_seq: 88,
        payload,
        trace: None,
    };
    let bytes = encode_frame_at(dosgi_gcs::WIRE_VERSION, &msg, |v: &Value| v.encode());
    (msg, bytes)
}

/// Measures the three PR-9 hot-path optimizations, old shape vs new shape.
pub fn optimization_wins() -> Vec<OptWin> {
    let (msg, bytes) = sample_frame();

    // 1. Wire encode: fresh output Vec + fresh payload Vec per frame (the
    //    old `encode_frame_at` shape) vs scratch reuse + in-place payload.
    let old_encode = time_ns(|| {
        black_box(encode_frame_at(
            dosgi_gcs::WIRE_VERSION,
            black_box(&msg),
            |v: &Value| v.encode(),
        ));
    });
    let mut scratch = Vec::with_capacity(8192);
    let new_encode = time_ns(|| {
        scratch.clear();
        encode_frame_into_at(
            dosgi_gcs::WIRE_VERSION,
            &mut scratch,
            black_box(&msg),
            |v: &Value, out: &mut Vec<u8>| v.encode_into(out),
        );
        black_box(scratch.len());
    });

    // 2. Wire decode: payload copied out of the frame vs borrowed from it.
    let old_decode = time_ns(|| {
        black_box(decode_frame(black_box(&bytes), |b| Some(b.to_vec())));
    });
    let new_decode = time_ns(|| {
        black_box(decode_frame_borrowed(black_box(&bytes)));
    });

    // 3. SAN codec: fresh Vec per encode vs pre-sized reuse.
    let snapshot = Value::map().with("next_bundle", 12u64).with(
        "bundles",
        Value::List(
            (0..10)
                .map(|i| {
                    Value::map()
                        .with("id", i as u64)
                        .with("data", Value::Bytes(vec![7u8; 256]))
                })
                .collect(),
        ),
    );
    let old_san = time_ns(|| {
        black_box(black_box(&snapshot).encode());
    });
    let mut buf = Vec::with_capacity(8192);
    let new_san = time_ns(|| {
        buf.clear();
        black_box(&snapshot).encode_into(&mut buf);
        black_box(buf.len());
    });

    // 4. Registry reads: the exclusive path (every reader takes the one
    //    lock the writers use) vs the sharded copy-on-write reader.
    let registry = Mutex::new(populated_registry());
    let old_registry = time_ns(|| {
        let reg = registry.lock().unwrap();
        black_box(reg.references(black_box(Some("svc.Iface7")), None));
    });
    let reader = registry.lock().unwrap().reader();
    let new_registry = time_ns(|| {
        black_box(reader.lookup(black_box("svc.Iface7")));
    });

    vec![
        OptWin {
            name: "wire_encode_reuse",
            old_ns: old_encode,
            new_ns: new_encode,
        },
        OptWin {
            name: "wire_decode_borrowed",
            old_ns: old_decode,
            new_ns: new_decode,
        },
        OptWin {
            name: "san_encode_into",
            old_ns: old_san,
            new_ns: new_san,
        },
        OptWin {
            name: "registry_reader_lookup",
            old_ns: old_registry,
            new_ns: new_registry,
        },
    ]
}

/// 200 services over 40 interfaces — the standard registry lookup corpus.
pub fn populated_registry() -> ServiceRegistry {
    let mut registry = ServiceRegistry::new();
    for i in 0..200u64 {
        let iface = format!("svc.Iface{}", i % 40);
        let mut props: BTreeMap<String, PropValue> = BTreeMap::new();
        props.insert("service.ranking".into(), PropValue::Int((i % 7) as i64));
        registry.register(
            BundleId(i % 10),
            &[iface.as_str()],
            props,
            Box::new(|_ctx: &mut CallContext<'_>, _m: &str, arg: &Value| Ok(arg.clone())),
        );
    }
    registry
}
