//! # dosgi-bench — the experiment harness
//!
//! The paper (MW4SOC 2008) has **no quantitative evaluation section**: its
//! six figures are architecture/scenario diagrams and its claims are
//! qualitative. This crate turns every figure and every quantifiable claim
//! into a reproducible experiment (see `DESIGN.md` §6 and
//! `EXPERIMENTS.md` for the index):
//!
//! | binary | paper anchor |
//! |---|---|
//! | `e1_topology` | Fig. 1–4 deployment-design footprints |
//! | `e2_instance_mgmt` | Fig. 3 instance life-cycle management |
//! | `e3_sharing` | Fig. 4 shared host bundles + explicit exports |
//! | `e4_isolation` | §2 isolation claims |
//! | `e5_migration_cost` | §3.2 "comparable to a normal startup" |
//! | `e6_failover` | §3.2 node-failure redeployment |
//! | `e7_vip_migration` | Fig. 5 unique-IP service localization |
//! | `e8_ipvs` | Fig. 6 shared-IP ipvs scaling + failover |
//! | `e9_replication` | §3.2 future work: context replication ablation |
//! | `e10_autonomic` | §3.3/§4 SLA enforcement + consolidation |
//!
//! Run any of them with `cargo run -p dosgi-bench --release --bin <name>`;
//! the Criterion benches (`cargo bench -p dosgi-bench`) measure the
//! corresponding wall-clock costs of the implementation itself.

/// E13 wall-clock measurement harness (real-clock runtime throughput).
pub mod e13;

use dosgi_telemetry::Telemetry;
use std::fmt::Display;

/// Snapshots `telemetry` as `results/telemetry_<label>.json` (under the
/// workspace root, like the bench reports) and prints the path. Benches
/// treat snapshot I/O as best-effort: a read-only checkout still runs the
/// experiment.
pub fn write_telemetry_snapshot(telemetry: &Telemetry, label: &str, seed: u64) {
    let dir = dosgi_testkit::workspace_root().join("results");
    match std::fs::create_dir_all(&dir)
        .and_then(|()| telemetry.snapshot(label, seed).write_to(&dir))
    {
        Ok(path) => println!("\ntelemetry snapshot: {}", path.display()),
        Err(e) => eprintln!("could not write telemetry snapshot for {label}: {e}"),
    }
}

/// Prints a Markdown-style table: header row then aligned data rows.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n## {title}\n");
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(" {:>width$} |", c, width = widths[i]));
        }
        out
    };
    println!("{}", line(&headers));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", line(&sep));
    for row in &rows {
        println!("{}", line(row));
    }
}

/// Formats bytes human-readably (MiB with two decimals).
pub fn mib(bytes: u64) -> String {
    format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio as `x.yz×`.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "∞".to_owned()
    } else {
        format!("{:.2}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_format() {
        assert_eq!(mib(1 << 20), "1.00 MiB");
        assert_eq!(ratio(3.0, 2.0), "1.50x");
        assert_eq!(ratio(1.0, 0.0), "∞");
        // Table printing must not panic on ragged input.
        print_table("t", &["a", "b"], &[vec!["1".to_string(), "2".to_string()]]);
    }
}
