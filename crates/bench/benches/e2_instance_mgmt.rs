//! Bench companion to experiment **E2**: wall-clock cost of the
//! virtual-instance life-cycle against the real `dosgi-vosgi`
//! implementation. Runs on the in-tree `dosgi-testkit` bench harness.

use dosgi_core::workloads;
use dosgi_osgi::Framework;
use dosgi_san::Value;
use dosgi_testkit::{Plan, Suite};
use dosgi_vosgi::InstanceManager;
use std::hint::black_box;

fn manager() -> InstanceManager {
    InstanceManager::new(
        Framework::new("host"),
        workloads::standard_repository(),
        workloads::standard_factory(),
    )
}

const PLAN: Plan = Plan {
    warmup: 3,
    iters: 20,
};

fn bench_lifecycle(suite: &mut Suite) {
    suite.bench_batched_with(PLAN, "e2/create_instance", manager, |mut mgr| {
        let id = mgr
            .create_instance(workloads::web_instance("cust", "probe"))
            .unwrap();
        black_box(id);
    });

    suite.bench_batched_with(
        PLAN,
        "e2/start_instance",
        || {
            let mut mgr = manager();
            let id = mgr
                .create_instance(workloads::web_instance("cust", "probe"))
                .unwrap();
            (mgr, id)
        },
        |(mut mgr, id)| {
            mgr.start_instance(id).unwrap();
        },
    );

    suite.bench_batched_with(PLAN, "e2/full_cycle", manager, |mut mgr| {
        let id = mgr
            .create_instance(workloads::web_instance("cust", "probe"))
            .unwrap();
        mgr.start_instance(id).unwrap();
        mgr.stop_instance(id).unwrap();
        mgr.destroy_instance(id, true).unwrap();
    });
}

fn bench_service_call(suite: &mut Suite) {
    let mut mgr = manager();
    let id = mgr
        .create_instance(workloads::web_instance("cust", "probe"))
        .unwrap();
    mgr.start_instance(id).unwrap();
    suite.bench("e2/service_call", || {
        black_box(
            mgr.call_service(
                id,
                workloads::WEB_SERVICE,
                "handle",
                black_box(&Value::Null),
            )
            .unwrap(),
        );
    });
}

fn main() {
    if Suite::invoked_as_test() {
        return;
    }
    let mut suite = Suite::new("e2_instance_mgmt");
    bench_lifecycle(&mut suite);
    bench_service_call(&mut suite);
    suite.finish();
}
