//! Criterion companion to experiment **E2**: wall-clock cost of the
//! virtual-instance life-cycle against the real `dosgi-vosgi`
//! implementation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dosgi_core::workloads;
use dosgi_osgi::Framework;
use dosgi_san::Value;
use dosgi_vosgi::InstanceManager;
use std::hint::black_box;

fn manager() -> InstanceManager {
    InstanceManager::new(
        Framework::new("host"),
        workloads::standard_repository(),
        workloads::standard_factory(),
    )
}

fn bench_lifecycle(c: &mut Criterion) {
    c.bench_function("e2/create_instance", |b| {
        b.iter_batched(
            manager,
            |mut mgr| {
                let id = mgr
                    .create_instance(workloads::web_instance("cust", "probe"))
                    .unwrap();
                black_box(id);
                mgr
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("e2/start_instance", |b| {
        b.iter_batched(
            || {
                let mut mgr = manager();
                let id = mgr
                    .create_instance(workloads::web_instance("cust", "probe"))
                    .unwrap();
                (mgr, id)
            },
            |(mut mgr, id)| {
                mgr.start_instance(id).unwrap();
                mgr
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("e2/full_cycle", |b| {
        b.iter_batched(
            manager,
            |mut mgr| {
                let id = mgr
                    .create_instance(workloads::web_instance("cust", "probe"))
                    .unwrap();
                mgr.start_instance(id).unwrap();
                mgr.stop_instance(id).unwrap();
                mgr.destroy_instance(id, true).unwrap();
                mgr
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_service_call(c: &mut Criterion) {
    let mut mgr = manager();
    let id = mgr
        .create_instance(workloads::web_instance("cust", "probe"))
        .unwrap();
    mgr.start_instance(id).unwrap();
    c.bench_function("e2/service_call", |b| {
        b.iter(|| {
            mgr.call_service(id, workloads::WEB_SERVICE, "handle", black_box(&Value::Null))
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lifecycle, bench_service_call
}
criterion_main!(benches);
