//! Criterion companion to experiment **E8**: raw routing throughput of the
//! ipvs director per scheduler, and the cost of a failover.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dosgi_ipvs::{replicated_service, FaultTolerantIpvs, IpvsDirector, Scheduler};
use dosgi_net::{IpAddr, IpBindings, NodeId, Port, SocketAddr};
use std::hint::black_box;

const VIP: SocketAddr = SocketAddr::new(IpAddr::new(10, 0, 0, 100), Port(80));

fn director(scheduler: Scheduler, backends: u32) -> IpvsDirector {
    let nodes: Vec<NodeId> = (0..backends).map(NodeId).collect();
    let mut d = IpvsDirector::new();
    d.add_service(replicated_service(VIP, scheduler, &nodes));
    d
}

fn bench_routing(c: &mut Criterion) {
    for scheduler in [
        Scheduler::RoundRobin,
        Scheduler::WeightedRoundRobin,
        Scheduler::LeastConnections,
        Scheduler::SourceHash,
    ] {
        c.bench_function(&format!("e8/route_{scheduler:?}"), |b| {
            let mut d = director(scheduler, 8);
            let mut client = 0u64;
            b.iter(|| {
                client = client.wrapping_add(1);
                let node = d.connect(black_box(client), VIP).unwrap();
                d.release(client, VIP);
                node
            })
        });
    }
}

fn bench_failover(c: &mut Criterion) {
    c.bench_function("e8/director_failover_300_conns", |b| {
        b.iter_batched(
            || {
                let mut ft =
                    FaultTolerantIpvs::new(NodeId(0), NodeId(1), director(Scheduler::RoundRobin, 8), true);
                let mut bindings = IpBindings::new();
                ft.bind_vips(&mut bindings);
                for client in 0..300u64 {
                    ft.connect(client, VIP).unwrap();
                }
                (ft, bindings)
            },
            |(mut ft, mut bindings)| {
                ft.fail_active(&mut bindings);
                (ft, bindings)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_routing, bench_failover);
criterion_main!(benches);
