//! Bench companion to experiment **E8**: raw routing throughput of the
//! ipvs director per scheduler, and the cost of a failover. Runs on the
//! in-tree `dosgi-testkit` bench harness.

use dosgi_ipvs::{replicated_service, FaultTolerantIpvs, IpvsDirector, Scheduler};
use dosgi_net::{IpAddr, IpBindings, NodeId, Port, SocketAddr};
use dosgi_testkit::Suite;
use std::hint::black_box;

const VIP: SocketAddr = SocketAddr::new(IpAddr::new(10, 0, 0, 100), Port(80));

fn director(scheduler: Scheduler, backends: u32) -> IpvsDirector {
    let nodes: Vec<NodeId> = (0..backends).map(NodeId).collect();
    let mut d = IpvsDirector::new();
    d.add_service(replicated_service(VIP, scheduler, &nodes));
    d
}

fn bench_routing(suite: &mut Suite) {
    for scheduler in [
        Scheduler::RoundRobin,
        Scheduler::WeightedRoundRobin,
        Scheduler::LeastConnections,
        Scheduler::SourceHash,
    ] {
        let mut d = director(scheduler, 8);
        let mut client = 0u64;
        suite.bench(&format!("e8/route_{scheduler:?}"), || {
            client = client.wrapping_add(1);
            let node = d.connect(black_box(client), VIP).unwrap();
            d.release(client, VIP);
            black_box(node);
        });
    }
}

fn bench_failover(suite: &mut Suite) {
    suite.bench_batched(
        "e8/director_failover_300_conns",
        || {
            let mut ft = FaultTolerantIpvs::new(
                NodeId(0),
                NodeId(1),
                director(Scheduler::RoundRobin, 8),
                true,
            );
            let mut bindings = IpBindings::new();
            ft.bind_vips(&mut bindings);
            for client in 0..300u64 {
                ft.connect(client, VIP).unwrap();
            }
            (ft, bindings)
        },
        |(mut ft, mut bindings)| {
            ft.fail_active(&mut bindings);
        },
    );
}

fn main() {
    if Suite::invoked_as_test() {
        return;
    }
    let mut suite = Suite::new("e8_ipvs");
    bench_routing(&mut suite);
    bench_failover(&mut suite);
    suite.finish();
}
