//! Micro-benchmarks of the hot substrate paths: LDAP filter parse/eval,
//! SAN value codec, resolver, policy engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dosgi_osgi::{Filter, ManifestBuilder, PropValue, Version};
use dosgi_san::Value;
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_filter(c: &mut Criterion) {
    let source = "(&(objectClass=org.dosgi.log.Logger)(ranking>=5)(!(vendor=acme))(region=eu-*))";
    c.bench_function("filter/parse", |b| {
        b.iter(|| Filter::parse(black_box(source)).unwrap())
    });
    let filter = Filter::parse(source).unwrap();
    let mut props: BTreeMap<String, PropValue> = BTreeMap::new();
    props.insert("objectClass".into(), PropValue::from("org.dosgi.log.Logger"));
    props.insert("ranking".into(), PropValue::from(9i64));
    props.insert("vendor".into(), PropValue::from("globex"));
    props.insert("region".into(), PropValue::from("eu-west"));
    c.bench_function("filter/eval", |b| {
        b.iter(|| filter.matches(black_box(&props)))
    });
}

fn bench_codec(c: &mut Criterion) {
    // A realistic framework snapshot-shaped value.
    let snapshot = Value::map()
        .with("next_bundle", 12u64)
        .with("start_level", 3i64)
        .with(
            "bundles",
            Value::List(
                (0..10)
                    .map(|i| {
                        Value::map()
                            .with("id", i as u64)
                            .with("name", format!("org.example.bundle{i}").as_str())
                            .with("state", "ACTIVE")
                            .with("data", Value::Bytes(vec![7u8; 256]))
                    })
                    .collect(),
            ),
        );
    let encoded = snapshot.encode();
    c.bench_function("codec/encode_snapshot", |b| {
        b.iter(|| black_box(&snapshot).encode())
    });
    c.bench_function("codec/decode_snapshot", |b| {
        b.iter(|| Value::decode(black_box(&encoded)).unwrap())
    });
}

fn bench_resolver(c: &mut Criterion) {
    // 40 bundles in a dependency chain + fan-in on a base package.
    let base = ManifestBuilder::new("base", Version::new(1, 0, 0))
        .export_package("base.api", Version::new(1, 0, 0), ["Base"])
        .build()
        .unwrap();
    let mut manifests = vec![base];
    for i in 0..40 {
        let mut b = ManifestBuilder::new(&format!("b{i}"), Version::new(1, 0, 0))
            .export_package(&format!("pkg{i}.api"), Version::new(1, 0, 0), ["X"])
            .import_package("base.api", "[1.0,2.0)".parse().unwrap());
        if i > 0 {
            b = b.import_package(&format!("pkg{}.api", i - 1), "1.0".parse().unwrap());
        }
        manifests.push(b.build().unwrap());
    }
    c.bench_function("resolver/40_bundle_chain", |b| {
        b.iter_batched(
            || {
                let mut fw = dosgi_osgi::Framework::new("bench");
                for m in &manifests {
                    fw.install(m.clone(), None).unwrap();
                }
                fw
            },
            |mut fw| {
                let resolved = fw.resolve_all();
                assert_eq!(resolved.len(), manifests.len());
                fw
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_policy(c: &mut Criterion) {
    let script = dosgi_core::autonomic::DEFAULT_POLICY;
    c.bench_function("policy/compile_default", |b| {
        b.iter(|| dosgi_policy::PolicyEngine::compile(black_box(script)).unwrap())
    });
    let mut engine = dosgi_policy::PolicyEngine::compile(script).unwrap();
    let mut bb = dosgi_policy::Blackboard::new();
    let subjects: Vec<String> = (0..20).map(|i| format!("inst-{i}")).collect();
    for s in &subjects {
        bb.set_subject_metric(s, "cpu_share", 0.05);
        bb.set_subject_metric(s, "memory", 1_000_000.0);
        bb.set_subject_metric(s, "quota_cpu", 0.5);
        bb.set_subject_metric(s, "quota_mem", 100_000_000.0);
    }
    c.bench_function("policy/evaluate_20_subjects", |b| {
        b.iter(|| engine.evaluate(black_box(&bb), black_box(&subjects)))
    });
}

criterion_group!(benches, bench_filter, bench_codec, bench_resolver, bench_policy);
criterion_main!(benches);
