//! Micro-benchmarks of the hot substrate paths: LDAP filter parse/eval,
//! SAN value codec, resolver, SAN storage backends (e5/e9 write patterns
//! on every registered backend), policy engine. Runs on the in-tree
//! `dosgi-testkit` bench harness; JSON report in `results/bench_micro.json`.

use dosgi_osgi::{Filter, ManifestBuilder, PropValue, Version};
use dosgi_san::Value;
use dosgi_testkit::Suite;
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_filter(suite: &mut Suite) {
    let source = "(&(objectClass=org.dosgi.log.Logger)(ranking>=5)(!(vendor=acme))(region=eu-*))";
    suite.bench("filter/parse", || {
        black_box(Filter::parse(black_box(source)).unwrap());
    });
    let filter = Filter::parse(source).unwrap();
    let mut props: BTreeMap<String, PropValue> = BTreeMap::new();
    props.insert(
        "objectClass".into(),
        PropValue::from("org.dosgi.log.Logger"),
    );
    props.insert("ranking".into(), PropValue::from(9i64));
    props.insert("vendor".into(), PropValue::from("globex"));
    props.insert("region".into(), PropValue::from("eu-west"));
    suite.bench("filter/eval", || {
        black_box(filter.matches(black_box(&props)));
    });
}

fn bench_codec(suite: &mut Suite) {
    // A realistic framework snapshot-shaped value.
    let snapshot = Value::map()
        .with("next_bundle", 12u64)
        .with("start_level", 3i64)
        .with(
            "bundles",
            Value::List(
                (0..10)
                    .map(|i| {
                        Value::map()
                            .with("id", i as u64)
                            .with("name", format!("org.example.bundle{i}").as_str())
                            .with("state", "ACTIVE")
                            .with("data", Value::Bytes(vec![7u8; 256]))
                    })
                    .collect(),
            ),
        );
    let encoded = snapshot.encode();
    suite.bench("codec/encode_snapshot", || {
        black_box(black_box(&snapshot).encode());
    });
    suite.bench("codec/decode_snapshot", || {
        black_box(Value::decode(black_box(&encoded)).unwrap());
    });
}

fn bench_resolver(suite: &mut Suite) {
    // 40 bundles in a dependency chain + fan-in on a base package.
    let base = ManifestBuilder::new("base", Version::new(1, 0, 0))
        .export_package("base.api", Version::new(1, 0, 0), ["Base"])
        .build()
        .unwrap();
    let mut manifests = vec![base];
    for i in 0..40 {
        let mut b = ManifestBuilder::new(&format!("b{i}"), Version::new(1, 0, 0))
            .export_package(&format!("pkg{i}.api"), Version::new(1, 0, 0), ["X"])
            .import_package("base.api", "[1.0,2.0)".parse().unwrap());
        if i > 0 {
            b = b.import_package(&format!("pkg{}.api", i - 1), "1.0".parse().unwrap());
        }
        manifests.push(b.build().unwrap());
    }
    suite.bench_batched(
        "resolver/40_bundle_chain",
        || {
            let mut fw = dosgi_osgi::Framework::new("bench");
            for m in &manifests {
                fw.install(m.clone(), None).unwrap();
            }
            fw
        },
        |mut fw| {
            let resolved = fw.resolve_all();
            assert_eq!(resolved.len(), manifests.len());
        },
    );
}

fn bench_registry_lookup(suite: &mut Suite) {
    // 200 services spread over 40 interfaces, 5 per interface: the
    // interface index should make a lookup scan candidates only.
    let mut registry = dosgi_osgi::ServiceRegistry::new();
    for i in 0..200u64 {
        let iface = format!("svc.Iface{}", i % 40);
        let mut props: BTreeMap<String, PropValue> = BTreeMap::new();
        props.insert("service.ranking".into(), PropValue::Int((i % 7) as i64));
        registry.register(
            dosgi_osgi::BundleId(i % 10),
            &[iface.as_str()],
            props,
            Box::new(
                |_ctx: &mut dosgi_osgi::CallContext<'_>, _m: &str, arg: &Value| Ok(arg.clone()),
            ),
        );
    }
    suite.bench("registry/lookup", || {
        black_box(registry.references(black_box(Some("svc.Iface7")), None));
    });
    suite.bench("registry/best", || {
        black_box(registry.best(black_box("svc.Iface23")));
    });
    let filter = Filter::parse("(service.ranking>=3)").unwrap();
    suite.bench("registry/lookup_filtered", || {
        black_box(registry.references(black_box(Some("svc.Iface7")), Some(black_box(&filter))));
    });

    // PR 9: the sharded copy-on-write reader, measured while a writer
    // thread churns rankings on the same registry. A lookup never takes
    // the writers' lock — it clones one shard's `Arc` snapshot — so the
    // cost under churn stays within timeslicing noise of the idle cost.
    let reader = registry.reader();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churn_stop = stop.clone();
    let writer = std::thread::spawn(move || {
        let ids: Vec<dosgi_osgi::ServiceId> = (0..200).map(dosgi_osgi::ServiceId).collect();
        let mut flip = 0i64;
        while !churn_stop.load(std::sync::atomic::Ordering::Relaxed) {
            flip += 1;
            for id in &ids {
                let mut props: BTreeMap<String, PropValue> = BTreeMap::new();
                props.insert("service.ranking".into(), PropValue::Int(flip % 7));
                let _ = registry.set_properties(*id, props);
            }
            std::thread::yield_now();
        }
        registry
    });
    suite.bench("registry/lookup_concurrent", || {
        black_box(reader.lookup(black_box("svc.Iface7")));
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    drop(writer.join().expect("churn writer survives"));
}

fn bench_wire(suite: &mut Suite) {
    use dosgi_gcs::{decode_frame_borrowed, encode_frame_into_at, GcsWire, WIRE_VERSION};
    use dosgi_net::NodeId;
    use std::cell::RefCell;

    // A state-sync-shaped ordered frame: the migration hot path's wire
    // shape (4 KiB payload inside a total-order announcement).
    let msg = GcsWire::Ordered {
        gseq: 917,
        origin: NodeId(2),
        origin_inc: 3,
        origin_seq: 88,
        payload: Value::map()
            .with("instance", "bench/ctr")
            .with("state", Value::Bytes(vec![0xA5u8; 4096])),
        trace: None,
    };
    // PR 9: encode straight into a reused scratch buffer — zero
    // allocations in steady state (no output Vec, no payload Vec).
    let scratch = RefCell::new(Vec::with_capacity(8192));
    suite.bench("gcs/wire_encode_reuse", || {
        let mut out = scratch.borrow_mut();
        out.clear();
        encode_frame_into_at(
            WIRE_VERSION,
            &mut out,
            black_box(&msg),
            |v: &Value, o: &mut Vec<u8>| v.encode_into(o),
        );
        black_box(out.len());
    });
    let bytes = {
        let mut out = Vec::new();
        encode_frame_into_at(
            WIRE_VERSION,
            &mut out,
            &msg,
            |v: &Value, o: &mut Vec<u8>| v.encode_into(o),
        );
        out
    };
    // PR 9: zero-copy decode — the payload stays borrowed from the frame.
    suite.bench("gcs/wire_decode_borrowed", || {
        black_box(decode_frame_borrowed(black_box(&bytes)));
    });
}

fn bench_san_backends(suite: &mut Suite) {
    use dosgi_san::{BackendKind, SharedStore};
    use std::cell::Cell;
    for kind in BackendKind::all() {
        // E5 write pattern: one group-committed batch of 24 per-bundle
        // snapshot rows per persistence generation, 3 of them dirty — the
        // delta fast path's steady state (change detection skips the rest).
        let store = SharedStore::with_kind(kind);
        let rows: Vec<(String, Value)> = (0..24u64)
            .map(|i| {
                let v = Value::map()
                    .with("bundle", i)
                    .with("blob", Value::Bytes(vec![i as u8; 320]));
                (format!("row-{i:02}"), v)
            })
            .collect();
        store.put_many("bench/rows", &rows).unwrap();
        let generation = Cell::new(0i64);
        suite.bench(&format!("san/{kind}/e5_put_many_3_of_24_dirty"), || {
            let g = generation.get() + 1;
            generation.set(g);
            let mut batch = rows.clone();
            for slot in [3usize, 11, 19] {
                batch[slot].1 = Value::map().with("bundle", slot as u64).with("gen", g);
            }
            black_box(store.put_many("bench/rows", black_box(&batch)).unwrap());
        });

        // E9 write pattern: hot-key context replication — every update
        // overwrites the same row with a fresh value (no skips), the way
        // eager replication journals the running context.
        let hot = SharedStore::with_kind(kind);
        let tick = Cell::new(0i64);
        suite.bench(&format!("san/{kind}/e9_hot_key_overwrite"), || {
            let t = tick.get() + 1;
            tick.set(t);
            let v = Value::map()
                .with("count", t)
                .with("ctx", Value::Bytes(vec![(t % 251) as u8; 256]));
            black_box(hot.put("bench/ctx", "ctr", v).unwrap());
        });

        // Read side of both patterns: namespace scan over the row set.
        suite.bench(&format!("san/{kind}/read_namespace_24_rows"), || {
            black_box(store.read_namespace(black_box("bench/rows")).unwrap());
        });
    }
}

fn bench_policy(suite: &mut Suite) {
    let script = dosgi_core::autonomic::DEFAULT_POLICY;
    suite.bench("policy/compile_default", || {
        black_box(dosgi_policy::PolicyEngine::compile(black_box(script)).unwrap());
    });
    let mut engine = dosgi_policy::PolicyEngine::compile(script).unwrap();
    let mut bb = dosgi_policy::Blackboard::new();
    let subjects: Vec<String> = (0..20).map(|i| format!("inst-{i}")).collect();
    for s in &subjects {
        bb.set_subject_metric(s, "cpu_share", 0.05);
        bb.set_subject_metric(s, "memory", 1_000_000.0);
        bb.set_subject_metric(s, "quota_cpu", 0.5);
        bb.set_subject_metric(s, "quota_mem", 100_000_000.0);
    }
    suite.bench("policy/evaluate_20_subjects", || {
        black_box(engine.evaluate(black_box(&bb), black_box(&subjects)));
    });
}

fn bench_admission(suite: &mut Suite) {
    use dosgi_ipvs::{replicated_service, AdmissionConfig, IpvsDirector, RequestClass, Scheduler};
    use dosgi_net::{IpAddr, NodeId, Port, SocketAddr};
    use std::cell::{Cell, RefCell};
    // E15 hot path: admit (JSQ pick + bounded-queue offer) and drain on a
    // 3-backend service held just above capacity, so queues stay busy and
    // the shed path is exercised alongside the happy path.
    let vip = SocketAddr::new(IpAddr::new(10, 0, 0, 90), Port(80));
    let director = RefCell::new(IpvsDirector::new());
    director.borrow_mut().add_service(
        replicated_service(
            vip,
            Scheduler::RoundRobin,
            &[NodeId(0), NodeId(1), NodeId(2)],
        )
        .with_admission(AdmissionConfig::per_second(2_000, 64)),
    );
    let clock = Cell::new(0u64);
    let client = Cell::new(0u64);
    suite.bench("ipvs/connect_under_queue", || {
        // 4 arrivals per 500µs step = 8000/s offered vs 6000/s served.
        let now = clock.get() + 500;
        clock.set(now);
        let mut d = director.borrow_mut();
        for _ in 0..4 {
            let c = client.get() + 1;
            client.set(c);
            let class = match c % 10 {
                0 => RequestClass::Critical,
                1..=6 => RequestClass::Standard,
                _ => RequestClass::Background,
            };
            black_box(d.admit(c, vip, class, now).ok());
        }
        black_box(d.drain(vip, now).len());
    });
}

fn bench_telemetry_series(suite: &mut Suite) {
    use dosgi_telemetry::{ScrapeConfig, SeriesScraper, SloEngine, SloSpec, Telemetry};
    use std::cell::{Cell, RefCell};
    // E16 scrape path: one scrape over a registry of 1k metrics — 600
    // counters, 300 gauges, 100 histograms (each with live samples). The
    // perf_guard ceiling on this cell keeps the observability layer off
    // the hot path's back.
    let t = Telemetry::new();
    for i in 0..600u64 {
        t.add(&format!("bench.ctr.{i:03}"), i);
    }
    for i in 0..300u64 {
        t.gauge_set(&format!("bench.gauge.{i:03}"), i as i64);
    }
    for i in 0..100u64 {
        let name = format!("bench.hist.{i:02}");
        for v in [100, 2_000, 65_000, 1_000_000] {
            t.record(&name, v + i);
        }
    }
    let scraper = RefCell::new(SeriesScraper::new(ScrapeConfig::default()));
    let now = Cell::new(0u64);
    suite.bench("telemetry/scrape_1k_metrics", || {
        // Advance past the cadence so every iteration really scrapes;
        // touch a counter and a histogram so deltas stay non-trivial.
        let at = now.get() + 250_000;
        now.set(at);
        t.add("bench.ctr.000", 1);
        t.record("bench.hist.00", at % 1_000_000);
        black_box(scraper.borrow_mut().scrape(black_box(&t), at));
    });

    // E16 alert path: one evaluation of 8 SLOs over their counter pairs.
    let engine = RefCell::new(SloEngine::new(250_000));
    for i in 0..8 {
        engine.borrow_mut().add(SloSpec::new(
            format!("slo-{i}"),
            vec![format!("bench.ctr.{i:03}")],
            vec![format!("bench.ctr.{:03}", i + 100)],
            10_000,
        ));
    }
    let slo_now = Cell::new(0u64);
    suite.bench("telemetry/slo_eval", || {
        let at = slo_now.get() + 250_000;
        slo_now.set(at);
        t.add("bench.ctr.107", 3);
        black_box(engine.borrow_mut().observe(black_box(&t), at).len());
    });
}

fn bench_loadgen(suite: &mut Suite) {
    use dosgi_core::loadgen::ZipfSampler;
    use std::cell::RefCell;
    // E15 tenant-popularity path: inverse-CDF binary search over a
    // 10k-tenant Zipf distribution.
    let sampler = RefCell::new(ZipfSampler::new(10_000, 1.0, 42));
    suite.bench("loadgen/zipf_sample", || {
        black_box(sampler.borrow_mut().sample());
    });
}

fn main() {
    if Suite::invoked_as_test() {
        return;
    }
    let mut suite = Suite::new("micro");
    bench_filter(&mut suite);
    bench_codec(&mut suite);
    bench_resolver(&mut suite);
    bench_registry_lookup(&mut suite);
    bench_wire(&mut suite);
    bench_san_backends(&mut suite);
    bench_policy(&mut suite);
    bench_admission(&mut suite);
    bench_telemetry_series(&mut suite);
    bench_loadgen(&mut suite);
    suite.finish();
}
