//! Bench companion to experiment **E3**: the cost of the explicit-export
//! delegating classloader relative to instance-local lookup. Runs on the
//! in-tree `dosgi-testkit` bench harness.

use dosgi_core::workloads;
use dosgi_osgi::{Framework, SymbolName};
use dosgi_san::Value;
use dosgi_testkit::Suite;
use dosgi_vosgi::{InstanceDescriptor, InstanceManager};
use std::hint::black_box;

fn setup() -> (
    InstanceManager,
    dosgi_vosgi::InstanceId,
    dosgi_osgi::BundleId,
) {
    let mut fw = Framework::new("host");
    let repo = workloads::standard_repository();
    let factory = workloads::standard_factory();
    let m = repo.manifest(workloads::LOG_BUNDLE).unwrap().clone();
    let a = factory.create(&m);
    let id = fw.install(m, a).unwrap();
    fw.start(id).unwrap();
    let mut mgr = InstanceManager::new(fw, repo, factory);
    let d = InstanceDescriptor::builder("acme", "a")
        .bundle(workloads::WEB_BUNDLE)
        .share_package("org.dosgi.log.api")
        .share_service(workloads::LOG_SERVICE)
        .build();
    let iid = mgr.create_instance(d).unwrap();
    mgr.start_instance(iid).unwrap();
    let bundle = mgr
        .instance(iid)
        .unwrap()
        .framework()
        .find_bundle(workloads::WEB_BUNDLE)
        .unwrap();
    (mgr, iid, bundle)
}

fn bench_lookup_paths(suite: &mut Suite) {
    let (mut mgr, iid, bundle) = setup();
    let own = SymbolName::parse("org.app.web.impl.Handler").unwrap();
    let delegated = SymbolName::parse("org.dosgi.log.api.Logger").unwrap();
    suite.bench("e3/load_class_own", || {
        black_box(mgr.load_class(iid, bundle, black_box(&own)).unwrap());
    });
    suite.bench("e3/load_class_host_delegated", || {
        black_box(mgr.load_class(iid, bundle, black_box(&delegated)).unwrap());
    });
    // The denial path matters too: it is on the attack surface.
    let forbidden = SymbolName::parse("org.dosgi.http.api.Server").unwrap();
    suite.bench("e3/load_class_denied", || {
        black_box(
            mgr.load_class(iid, bundle, black_box(&forbidden))
                .unwrap_err(),
        );
    });
}

fn bench_service_paths(suite: &mut Suite) {
    let (mut mgr, iid, _) = setup();
    suite.bench("e3/call_instance_local_service", || {
        black_box(
            mgr.call_service(
                iid,
                workloads::WEB_SERVICE,
                "handle",
                black_box(&Value::Null),
            )
            .unwrap(),
        );
    });
    suite.bench("e3/call_shared_host_service", || {
        black_box(
            mgr.call_service(iid, workloads::LOG_SERVICE, "log", black_box(&Value::Null))
                .unwrap(),
        );
    });
}

fn main() {
    if Suite::invoked_as_test() {
        return;
    }
    let mut suite = Suite::new("e3_sharing");
    bench_lookup_paths(&mut suite);
    bench_service_paths(&mut suite);
    suite.finish();
}
