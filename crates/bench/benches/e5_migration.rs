//! Bench companion to experiment **E5**: wall-clock cost of driving a
//! complete simulated migration and a complete simulated failover (the
//! implementation's own overhead, as opposed to the simulated-time results
//! the E5/E6 binaries report). Runs on the in-tree `dosgi-testkit` harness.

use dosgi_core::{workloads, ClusterConfig, DosgiCluster};
use dosgi_net::SimDuration;
use dosgi_testkit::{Plan, Suite};

fn warmed_cluster(seed: u64) -> DosgiCluster {
    let mut c = DosgiCluster::new(3, ClusterConfig::default(), seed);
    c.run_for(SimDuration::from_millis(500));
    c.deploy(workloads::counter_instance("bank", "ctr"), 0)
        .unwrap();
    c.run_for(SimDuration::from_millis(500));
    c
}

fn bench_migration(suite: &mut Suite) {
    // Whole-cluster simulations: a handful of iterations is plenty.
    let plan = Plan::heavy();

    suite.bench_batched_with(
        plan,
        "e5/graceful_migration_end_to_end",
        || warmed_cluster(1),
        |mut cluster| {
            cluster.migrate("ctr", 1).unwrap();
            cluster.run_for(SimDuration::from_secs(2));
            assert_eq!(cluster.home_of("ctr"), Some(1));
        },
    );

    suite.bench_batched_with(
        plan,
        "e5/crash_failover_end_to_end",
        || warmed_cluster(2),
        |mut cluster| {
            cluster.crash_node(0);
            cluster.run_for(SimDuration::from_secs(2));
            assert!(cluster.probe("ctr"));
        },
    );

    // How expensive is simulated time itself? One quiet second of a
    // 3-node cluster (heartbeats, sampling, policy evaluations).
    suite.bench_batched_with(
        plan,
        "e5/quiet_cluster_second",
        || warmed_cluster(3),
        |mut cluster| {
            cluster.run_for(SimDuration::from_secs(1));
        },
    );
}

fn main() {
    if Suite::invoked_as_test() {
        return;
    }
    let mut suite = Suite::new("e5_migration");
    bench_migration(&mut suite);
    suite.finish();
}
