//! Criterion companion to experiment **E5**: wall-clock cost of driving a
//! complete simulated migration and a complete simulated failover (the
//! implementation's own overhead, as opposed to the simulated-time results
//! the E5/E6 binaries report).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dosgi_core::{workloads, ClusterConfig, DosgiCluster};
use dosgi_net::SimDuration;

fn warmed_cluster(seed: u64) -> DosgiCluster {
    let mut c = DosgiCluster::new(3, ClusterConfig::default(), seed);
    c.run_for(SimDuration::from_millis(500));
    c.deploy(workloads::counter_instance("bank", "ctr"), 0).unwrap();
    c.run_for(SimDuration::from_millis(500));
    c
}

fn bench_migration(c: &mut Criterion) {
    c.bench_function("e5/graceful_migration_end_to_end", |b| {
        b.iter_batched(
            || warmed_cluster(1),
            |mut cluster| {
                cluster.migrate("ctr", 1).unwrap();
                cluster.run_for(SimDuration::from_secs(2));
                assert_eq!(cluster.home_of("ctr"), Some(1));
                cluster
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("e5/crash_failover_end_to_end", |b| {
        b.iter_batched(
            || warmed_cluster(2),
            |mut cluster| {
                cluster.crash_node(0);
                cluster.run_for(SimDuration::from_secs(2));
                assert!(cluster.probe("ctr"));
                cluster
            },
            BatchSize::SmallInput,
        )
    });

    // How expensive is simulated time itself? One quiet second of a
    // 3-node cluster (heartbeats, sampling, policy evaluations).
    c.bench_function("e5/quiet_cluster_second", |b| {
        b.iter_batched(
            || warmed_cluster(3),
            |mut cluster| {
                cluster.run_for(SimDuration::from_secs(1));
                cluster
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_migration
}
criterion_main!(benches);
