//! Admission control: request classes, bounded per-backend queues, and
//! deterministic service draining.
//!
//! Under open-loop overload an unbounded director melts down: every
//! request is accepted, queueing delay grows without bound, and goodput
//! (requests finished *within their SLO*) collapses. This module gives
//! each backend a bounded FIFO per [`RequestClass`] drained at a fixed
//! deterministic service rate; when a queue is full the lowest-priority
//! work is shed first, so SLO-critical traffic keeps its latency budget
//! while best-effort traffic absorbs the overload.
//!
//! Everything here is exact integer arithmetic on simulated microseconds:
//! the same admit/drain call sequence always produces the same
//! completions, sheds, and deadline verdicts, which is what lets the
//! chaos harness fingerprint overload runs byte-identically.

use dosgi_net::NodeId;
use std::collections::VecDeque;

/// Request priority classes with per-class latency SLOs.
///
/// Classes are ordered by priority: [`Critical`](RequestClass::Critical)
/// is admitted first and shed last; [`Background`](RequestClass::Background)
/// is the first to go when a queue fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RequestClass {
    /// Interactive, SLO-critical traffic (tight latency budget).
    Critical,
    /// Ordinary interactive traffic.
    Standard,
    /// Batch / best-effort traffic — shed first under overload.
    Background,
}

impl RequestClass {
    /// All classes, highest priority first.
    pub const ALL: [RequestClass; 3] = [
        RequestClass::Critical,
        RequestClass::Standard,
        RequestClass::Background,
    ];

    /// Stable lowercase name (telemetry keys, policy scripts).
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Critical => "critical",
            RequestClass::Standard => "standard",
            RequestClass::Background => "background",
        }
    }

    /// Parses a class name as produced by [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Self> {
        RequestClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Priority lane index: 0 is served first, shed last.
    pub fn priority(self) -> usize {
        match self {
            RequestClass::Critical => 0,
            RequestClass::Standard => 1,
            RequestClass::Background => 2,
        }
    }

    /// The per-class latency SLO (admission-to-completion budget).
    pub fn slo_us(self) -> u64 {
        match self {
            RequestClass::Critical => 50_000,
            RequestClass::Standard => 250_000,
            RequestClass::Background => 2_000_000,
        }
    }
}

impl std::fmt::Display for RequestClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Admission-control parameters for one virtual service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum requests queued per backend (across all classes). Beyond
    /// this the shed policy applies.
    pub queue_capacity: usize,
    /// Deterministic service time per request: a backend completes one
    /// queued request every this many simulated microseconds.
    pub service_us_per_request: u64,
}

impl AdmissionConfig {
    /// A config for a backend serving `rate_per_sec` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is zero or above 1,000,000 (sub-µs service
    /// times cannot be represented).
    pub fn per_second(rate_per_sec: u64, queue_capacity: usize) -> Self {
        assert!(
            rate_per_sec > 0 && rate_per_sec <= 1_000_000,
            "rate must be in 1..=1e6"
        );
        AdmissionConfig {
            queue_capacity,
            service_us_per_request: 1_000_000 / rate_per_sec,
        }
    }
}

/// One queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    /// The requesting client.
    pub client: u64,
    /// The request's priority class.
    pub class: RequestClass,
    /// Admission timestamp (simulated µs).
    pub enqueued_us: u64,
}

/// The verdict of one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admitted {
    /// Queued; the backend had room.
    Queued,
    /// Queued after evicting a lower-priority request (returned).
    Displaced(QueuedRequest),
    /// Shed: the queue is full of equal-or-higher-priority work.
    Shed,
}

/// A completed (fully served) request with its measured latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The backend that served it.
    pub node: NodeId,
    /// The requesting client.
    pub client: u64,
    /// The request's priority class.
    pub class: RequestClass,
    /// Admission timestamp (simulated µs).
    pub enqueued_us: u64,
    /// Service completion timestamp (simulated µs).
    pub completed_us: u64,
}

impl Completion {
    /// Admission-to-completion latency.
    pub fn latency_us(&self) -> u64 {
        self.completed_us - self.enqueued_us
    }

    /// Whether the request blew its class SLO.
    pub fn missed_deadline(&self) -> bool {
        self.latency_us() > self.class.slo_us()
    }
}

/// A bounded per-backend queue: one FIFO lane per class, served in
/// priority order, drained at the configured deterministic rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendQueue {
    config: AdmissionConfig,
    lanes: [VecDeque<QueuedRequest>; 3],
    /// When the backend's (single) server next becomes free.
    free_at_us: u64,
}

impl BackendQueue {
    /// An empty queue under `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        BackendQueue {
            config,
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            free_at_us: 0,
        }
    }

    /// Total queued requests across all classes.
    pub fn depth(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Queued requests of one class.
    pub fn depth_of(&self, class: RequestClass) -> usize {
        self.lanes[class.priority()].len()
    }

    /// Offers a request. When the queue is full, a strictly
    /// lower-priority request (the youngest of the lowest occupied lane)
    /// is displaced to make room; if none exists the offer itself is shed.
    pub fn offer(&mut self, request: QueuedRequest) -> Admitted {
        if self.depth() < self.config.queue_capacity {
            self.lanes[request.class.priority()].push_back(request);
            return Admitted::Queued;
        }
        // Full: look for a victim strictly below the incoming priority,
        // lowest lane first, youngest first (it has waited least).
        for lane in (request.class.priority() + 1..3).rev() {
            if let Some(victim) = self.lanes[lane].pop_back() {
                self.lanes[request.class.priority()].push_back(request);
                return Admitted::Displaced(victim);
            }
        }
        Admitted::Shed
    }

    /// Drains every request whose deterministic completion time is
    /// `<= now_us`, priority lanes first, appending [`Completion`]s for
    /// `node` to `out`. A request admitted at `t` into an idle backend
    /// completes at `t + service_us_per_request`; a busy backend serves
    /// strictly one request per service interval.
    pub fn drain_until(&mut self, node: NodeId, now_us: u64, out: &mut Vec<Completion>) {
        loop {
            // The server picks its next request the moment it is both free
            // and work has arrived; among requests available at that
            // instant, the highest-priority lane wins (non-preemptive
            // priority, work-conserving: a critical request that has not
            // arrived yet must not stall older lower-priority work).
            let Some(earliest) = (0..3)
                .filter_map(|l| self.lanes[l].front().map(|r| r.enqueued_us))
                .min()
            else {
                return;
            };
            let start = self.free_at_us.max(earliest);
            let done = start + self.config.service_us_per_request;
            if done > now_us {
                return;
            }
            let lane = (0..3)
                .find(|&l| {
                    self.lanes[l]
                        .front()
                        .is_some_and(|r| r.enqueued_us <= start)
                })
                .expect("the earliest arrival is a candidate");
            let head = self.lanes[lane].pop_front().expect("lane is non-empty");
            self.free_at_us = done;
            out.push(Completion {
                node,
                client: head.client,
                class: head.class,
                enqueued_us: head.enqueued_us,
                completed_us: done,
            });
        }
    }

    /// Empties every lane (backend died), returning the abandoned
    /// requests in priority order.
    pub fn flush(&mut self) -> Vec<QueuedRequest> {
        let mut out = Vec::with_capacity(self.depth());
        for lane in &mut self.lanes {
            out.extend(lane.drain(..));
        }
        out
    }

    /// The admission parameters.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(client: u64, class: RequestClass, at: u64) -> QueuedRequest {
        QueuedRequest {
            client,
            class,
            enqueued_us: at,
        }
    }

    #[test]
    fn class_ordering_and_names_round_trip() {
        for c in RequestClass::ALL {
            assert_eq!(RequestClass::from_name(c.name()), Some(c));
        }
        assert_eq!(RequestClass::from_name("nope"), None);
        assert!(RequestClass::Critical.slo_us() < RequestClass::Standard.slo_us());
        assert!(RequestClass::Standard.slo_us() < RequestClass::Background.slo_us());
        assert_eq!(RequestClass::Critical.priority(), 0);
    }

    #[test]
    fn offer_sheds_lowest_priority_first() {
        let mut q = BackendQueue::new(AdmissionConfig {
            queue_capacity: 2,
            service_us_per_request: 1000,
        });
        assert_eq!(
            q.offer(req(1, RequestClass::Background, 0)),
            Admitted::Queued
        );
        assert_eq!(q.offer(req(2, RequestClass::Standard, 0)), Admitted::Queued);
        // Full. A critical arrival displaces the background request.
        match q.offer(req(3, RequestClass::Critical, 5)) {
            Admitted::Displaced(victim) => assert_eq!(victim.client, 1),
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        // Another background arrival finds only equal/higher work: shed.
        assert_eq!(q.offer(req(4, RequestClass::Background, 6)), Admitted::Shed);
        // And a critical arrival with no lower-priority victim is shed too.
        match q.offer(req(5, RequestClass::Critical, 7)) {
            Admitted::Displaced(victim) => assert_eq!(victim.class, RequestClass::Standard),
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(q.offer(req(6, RequestClass::Critical, 8)), Admitted::Shed);
    }

    #[test]
    fn drain_is_deterministic_fifo_within_class_priority_across() {
        let mut q = BackendQueue::new(AdmissionConfig {
            queue_capacity: 10,
            service_us_per_request: 100,
        });
        q.offer(req(1, RequestClass::Background, 0));
        q.offer(req(2, RequestClass::Critical, 0));
        q.offer(req(3, RequestClass::Critical, 0));
        let mut out = Vec::new();
        q.drain_until(NodeId(7), 1_000, &mut out);
        let order: Vec<u64> = out.iter().map(|c| c.client).collect();
        assert_eq!(order, vec![2, 3, 1], "critical lane drains first");
        assert_eq!(out[0].completed_us, 100);
        assert_eq!(out[1].completed_us, 200);
        assert_eq!(out[2].completed_us, 300);
        assert!(out.iter().all(|c| c.node == NodeId(7)));
    }

    #[test]
    fn drain_respects_service_rate_and_idle_gaps() {
        let mut q = BackendQueue::new(AdmissionConfig {
            queue_capacity: 10,
            service_us_per_request: 100,
        });
        q.offer(req(1, RequestClass::Standard, 0));
        let mut out = Vec::new();
        q.drain_until(NodeId(0), 99, &mut out);
        assert!(out.is_empty(), "service not finished yet");
        q.drain_until(NodeId(0), 100, &mut out);
        assert_eq!(out.len(), 1);
        // After a long idle gap, service restarts from the enqueue time,
        // not from the stale free_at cursor.
        q.offer(req(2, RequestClass::Standard, 5_000));
        q.drain_until(NodeId(0), 5_100, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].completed_us, 5_100);
        assert_eq!(out[1].latency_us(), 100);
    }

    #[test]
    fn drain_is_work_conserving_across_lanes() {
        let mut q = BackendQueue::new(AdmissionConfig {
            queue_capacity: 10,
            service_us_per_request: 100,
        });
        // Old background work waits; a critical request arrives "now"
        // (too late to finish by now). The server must not idle: the
        // background requests drain, then the critical one next tick.
        q.offer(req(1, RequestClass::Background, 0));
        q.offer(req(2, RequestClass::Background, 0));
        q.offer(req(3, RequestClass::Critical, 1_000));
        let mut out = Vec::new();
        q.drain_until(NodeId(0), 1_000, &mut out);
        let order: Vec<u64> = out.iter().map(|c| c.client).collect();
        assert_eq!(order, vec![1, 2], "older available work is served");
        q.drain_until(NodeId(0), 1_100, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].client, 3);
        // But priority still wins among requests available at pick time:
        // the server frees at 1_100; both heads below arrived by then.
        q.offer(req(4, RequestClass::Background, 1_050));
        q.offer(req(5, RequestClass::Critical, 1_080));
        q.drain_until(NodeId(0), 2_000, &mut out);
        let tail: Vec<u64> = out[3..].iter().map(|c| c.client).collect();
        assert_eq!(tail, vec![5, 4], "critical first when both have arrived");
    }

    #[test]
    fn deadline_detection_per_class() {
        let c = Completion {
            node: NodeId(0),
            client: 1,
            class: RequestClass::Critical,
            enqueued_us: 0,
            completed_us: RequestClass::Critical.slo_us() + 1,
        };
        assert!(c.missed_deadline());
        let ok = Completion {
            class: RequestClass::Background,
            ..c
        };
        assert!(!ok.missed_deadline(), "background budget is looser");
    }

    #[test]
    fn flush_empties_all_lanes() {
        let mut q = BackendQueue::new(AdmissionConfig {
            queue_capacity: 5,
            service_us_per_request: 10,
        });
        q.offer(req(1, RequestClass::Background, 0));
        q.offer(req(2, RequestClass::Critical, 0));
        let flushed = q.flush();
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].class, RequestClass::Critical);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn per_second_config() {
        let cfg = AdmissionConfig::per_second(2_000, 64);
        assert_eq!(cfg.service_us_per_request, 500);
        assert_eq!(cfg.queue_capacity, 64);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn zero_rate_rejected() {
        let _ = AdmissionConfig::per_second(0, 1);
    }
}
