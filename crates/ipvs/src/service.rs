//! Virtual services and real servers.

use crate::admission::{AdmissionConfig, BackendQueue};
use crate::Scheduler;
use dosgi_net::{NodeId, SocketAddr};

/// A backend node serving a virtual service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealServer {
    /// The node hosting the service replica.
    pub node: NodeId,
    /// Scheduling weight (used by weighted round-robin).
    pub weight: u32,
    /// Health: down servers are skipped.
    pub alive: bool,
    /// Administratively drained (rolling upgrade): the server takes no new
    /// work but — unlike a dead server — its queued requests still
    /// complete. Orthogonal to `alive`.
    pub draining: bool,
    /// Currently tracked connections (used by least-connections).
    pub active_connections: u32,
}

impl RealServer {
    /// A healthy server with weight 1.
    pub fn new(node: NodeId) -> Self {
        RealServer {
            node,
            weight: 1,
            alive: true,
            draining: false,
            active_connections: 0,
        }
    }

    /// Whether the scheduler may send *new* work here.
    pub fn eligible(&self) -> bool {
        self.alive && !self.draining
    }

    /// Sets the weight (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero — a zero-weight server can never be
    /// scheduled, which is expressed by marking it down instead.
    pub fn with_weight(mut self, weight: u32) -> Self {
        assert!(weight > 0, "weight must be positive");
        self.weight = weight;
        self
    }
}

/// One `VIP:port` virtual service: scheduler plus backend set.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualService {
    /// The service's public endpoint.
    pub address: SocketAddr,
    /// The scheduling discipline.
    pub scheduler: Scheduler,
    /// Backend replicas.
    pub servers: Vec<RealServer>,
    /// Round-robin cursor (scheduler state).
    pub(crate) rr_cursor: usize,
    /// Weighted round-robin remaining credit per server.
    pub(crate) wrr_credit: Vec<u32>,
    /// Admission-control parameters, when enabled.
    pub(crate) admission: Option<AdmissionConfig>,
    /// Per-backend bounded queues, parallel to `servers` (empty when
    /// admission control is off).
    pub(crate) queues: Vec<BackendQueue>,
}

impl VirtualService {
    /// Creates an empty service at `address` with `scheduler`.
    pub fn new(address: SocketAddr, scheduler: Scheduler) -> Self {
        VirtualService {
            address,
            scheduler,
            servers: Vec::new(),
            rr_cursor: 0,
            wrr_credit: Vec::new(),
            admission: None,
            queues: Vec::new(),
        }
    }

    /// Enables admission control (builder style): every backend gets a
    /// bounded queue under `config`, drained deterministically by
    /// [`IpvsDirector::drain`](crate::IpvsDirector::drain).
    pub fn with_admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self.queues = self
            .servers
            .iter()
            .map(|_| BackendQueue::new(config))
            .collect();
        self
    }

    /// The admission parameters, when admission control is enabled.
    pub fn admission(&self) -> Option<AdmissionConfig> {
        self.admission
    }

    /// Adds a backend replica.
    pub fn add_server(&mut self, server: RealServer) {
        self.servers.push(server);
        self.wrr_credit.push(server.weight);
        if let Some(cfg) = self.admission {
            self.queues.push(BackendQueue::new(cfg));
        }
    }

    /// Removes the replica on `node`, returning whether one was found.
    pub fn remove_server(&mut self, node: NodeId) -> bool {
        match self.servers.iter().position(|s| s.node == node) {
            Some(i) => {
                self.servers.remove(i);
                self.wrr_credit.remove(i);
                if self.admission.is_some() {
                    self.queues.remove(i);
                }
                if self.rr_cursor >= self.servers.len() {
                    self.rr_cursor = 0;
                }
                true
            }
            None => false,
        }
    }

    /// Marks the replica on `node` up or down (health checks / failover).
    pub fn set_alive(&mut self, node: NodeId, alive: bool) -> bool {
        match self.servers.iter_mut().find(|s| s.node == node) {
            Some(s) => {
                s.alive = alive;
                true
            }
            None => false,
        }
    }

    /// Marks the replica on `node` as (not) draining. A draining replica
    /// receives no new requests but keeps its queue — the work-conserving
    /// half of a rolling upgrade (contrast [`set_alive`](Self::set_alive)
    /// plus queue flush, the crash reaction).
    pub fn set_draining(&mut self, node: NodeId, draining: bool) -> bool {
        match self.servers.iter_mut().find(|s| s.node == node) {
            Some(s) => {
                s.draining = draining;
                true
            }
            None => false,
        }
    }

    /// Live replica count.
    pub fn alive_count(&self) -> usize {
        self.servers.iter().filter(|s| s.alive).count()
    }

    /// Replicas eligible for new work (alive and not draining).
    pub fn eligible_count(&self) -> usize {
        self.servers.iter().filter(|s| s.eligible()).count()
    }

    /// Queue depth of the replica on `node` (0 when admission is off or
    /// the node hosts no replica).
    pub fn queue_depth(&self, node: NodeId) -> usize {
        self.servers
            .iter()
            .position(|s| s.node == node)
            .and_then(|i| self.queues.get(i))
            .map_or(0, BackendQueue::depth)
    }

    /// Total queued requests across every backend of this service.
    pub fn total_queued(&self) -> usize {
        self.queues.iter().map(BackendQueue::depth).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_net::{IpAddr, Port};

    fn addr() -> SocketAddr {
        SocketAddr::new(IpAddr::new(10, 0, 0, 100), Port(80))
    }

    #[test]
    fn add_remove_servers() {
        let mut vs = VirtualService::new(addr(), Scheduler::RoundRobin);
        vs.add_server(RealServer::new(NodeId(1)));
        vs.add_server(RealServer::new(NodeId(2)).with_weight(3));
        assert_eq!(vs.servers.len(), 2);
        assert_eq!(vs.alive_count(), 2);
        assert!(vs.remove_server(NodeId(1)));
        assert!(!vs.remove_server(NodeId(1)));
        assert_eq!(vs.servers.len(), 1);
        assert_eq!(vs.servers[0].weight, 3);
    }

    #[test]
    fn health_marking() {
        let mut vs = VirtualService::new(addr(), Scheduler::RoundRobin);
        vs.add_server(RealServer::new(NodeId(1)));
        assert!(vs.set_alive(NodeId(1), false));
        assert_eq!(vs.alive_count(), 0);
        assert!(!vs.set_alive(NodeId(9), false));
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let _ = RealServer::new(NodeId(1)).with_weight(0);
    }

    #[test]
    fn admission_queues_track_server_set() {
        use crate::admission::AdmissionConfig;
        let mut vs = VirtualService::new(addr(), Scheduler::RoundRobin)
            .with_admission(AdmissionConfig::per_second(1000, 8));
        vs.add_server(RealServer::new(NodeId(1)));
        vs.add_server(RealServer::new(NodeId(2)));
        assert_eq!(vs.queues.len(), 2);
        assert_eq!(vs.queue_depth(NodeId(1)), 0);
        assert!(vs.remove_server(NodeId(1)));
        assert_eq!(vs.queues.len(), 1);
        assert_eq!(vs.total_queued(), 0);
        // Without admission, no queues are kept.
        let mut plain = VirtualService::new(addr(), Scheduler::RoundRobin);
        plain.add_server(RealServer::new(NodeId(3)));
        assert!(plain.queues.is_empty());
        assert_eq!(plain.queue_depth(NodeId(3)), 0);
    }
}
