//! The ipvs director: request routing, connection tracking, and
//! admission control (bounded per-backend queues with priority shedding).

use crate::admission::{Admitted, Completion, QueuedRequest, RequestClass};
use crate::{RealServer, Scheduler, VirtualService};
use dosgi_net::{NodeId, SocketAddr};
use dosgi_telemetry::{FlightRecorder, Telemetry, TraceContext};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Routing failures. Shed-vs-dead is deliberately distinguishable: a
/// caller (and the stats/telemetry) can tell load shedding
/// ([`Shed`](RouteError::Shed)) apart from a service whose every backend
/// is down ([`NoLiveServers`](RouteError::NoLiveServers)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No virtual service is configured at the address.
    NoSuchService(SocketAddr),
    /// The service exists but every replica is down.
    NoLiveServers(SocketAddr),
    /// Admission control shed the request: backends are alive but the
    /// chosen queue is full of equal-or-higher-priority work (or the
    /// class is currently shed by policy).
    Shed(SocketAddr, RequestClass),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NoSuchService(a) => write!(f, "no virtual service at {a}"),
            RouteError::NoLiveServers(a) => write!(f, "no live servers for {a}"),
            RouteError::Shed(a, c) => write!(f, "shed {c} request for {a} (overload)"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Director counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IpvsStats {
    /// Requests routed to a backend.
    pub routed: u64,
    /// Requests rejected (no service / no live backend).
    pub rejected: u64,
    /// Rejections specifically because every backend was down (subset of
    /// `rejected` — the "dead" half of shed-vs-dead).
    pub no_backend: u64,
    /// Connections currently tracked.
    pub tracked: u64,
    /// Requests accepted into a backend queue by admission control.
    pub queued: u64,
    /// Requests shed by admission control (full queue, policy shed, or
    /// abandoned when their backend died).
    pub shed: u64,
    /// Sheds that displaced an already-queued lower-priority request
    /// (subset of `shed`; such victims were also counted in `queued`, so
    /// `queued + shed - displaced` equals the number of admit calls).
    pub displaced: u64,
    /// Queued requests fully served.
    pub completed: u64,
    /// Completions that blew their class latency SLO.
    pub deadline_missed: u64,
}

/// The load-balancer core: virtual services, connection tracking, stats.
#[derive(Debug, Clone, Default)]
pub struct IpvsDirector {
    services: HashMap<SocketAddr, VirtualService>,
    // (client, service) → backend node, for connection affinity.
    connections: HashMap<(u64, SocketAddr), NodeId>,
    per_server: HashMap<(SocketAddr, NodeId), u64>,
    // Classes currently shed outright by policy (see `set_shed_class`).
    shed_classes: BTreeSet<(SocketAddr, RequestClass)>,
    stats: IpvsStats,
    telemetry: Telemetry,
    recorder: FlightRecorder,
}

// Telemetry handles and flight recorders carry no comparable state; two
// directors are equal when their routing state is.
impl PartialEq for IpvsDirector {
    fn eq(&self, other: &Self) -> bool {
        self.services == other.services
            && self.connections == other.connections
            && self.per_server == other.per_server
            && self.shed_classes == other.shed_classes
            && self.stats == other.stats
    }
}

impl IpvsDirector {
    /// Creates an empty director.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry handle; routed requests are counted per
    /// backend as `ipvs.routed.n<node>`, rejections as `ipvs.rejected`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Attaches a flight recorder: redirect reactions
    /// ([`node_down_traced`](Self::node_down_traced)) record causal spans
    /// into it. Passive — routing decisions never depend on it.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.recorder = recorder;
    }

    /// The attached flight recorder (disabled by default).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Registers a virtual service.
    pub fn add_service(&mut self, service: VirtualService) {
        self.services.insert(service.address, service);
    }

    /// Removes a virtual service and its tracked connections.
    pub fn remove_service(&mut self, address: SocketAddr) -> bool {
        let existed = self.services.remove(&address).is_some();
        if existed {
            self.connections.retain(|(_, a), _| *a != address);
            self.stats.tracked = self.connections.len() as u64;
        }
        existed
    }

    /// Access to a service (e.g. to add replicas at run-time).
    pub fn service_mut(&mut self, address: SocketAddr) -> Option<&mut VirtualService> {
        self.services.get_mut(&address)
    }

    /// Read access to a service.
    pub fn service(&self, address: SocketAddr) -> Option<&VirtualService> {
        self.services.get(&address)
    }

    /// Routes a request from `client` to `address`, opening a tracked
    /// connection. Existing connections stick to their backend while it is
    /// alive (connection affinity, as in real ipvs).
    ///
    /// # Errors
    ///
    /// See [`RouteError`].
    pub fn connect(&mut self, client: u64, address: SocketAddr) -> Result<NodeId, RouteError> {
        if !self.services.contains_key(&address) {
            self.stats.rejected += 1;
            self.telemetry.incr("ipvs.rejected");
            self.telemetry.incr("ipvs.rejected.no_service");
            return Err(RouteError::NoSuchService(address));
        }
        // Affinity: reuse the existing backend if still eligible (a
        // draining backend loses its affinity — the next request reroutes
        // cleanly instead of landing on the replica mid-upgrade).
        if let Some(&node) = self.connections.get(&(client, address)) {
            let still_eligible = self.services[&address]
                .servers
                .iter()
                .any(|s| s.node == node && s.eligible());
            if still_eligible {
                self.stats.routed += 1;
                *self.per_server.entry((address, node)).or_insert(0) += 1;
                self.telemetry.incr(&format!("ipvs.routed.n{}", node.0));
                return Ok(node);
            }
            self.release(client, address);
        }
        let vs = self.services.get_mut(&address).expect("checked above");
        let scheduler = vs.scheduler;
        let Some(idx) = scheduler.pick(vs, client) else {
            self.stats.rejected += 1;
            self.stats.no_backend += 1;
            self.telemetry.incr("ipvs.rejected");
            self.telemetry.incr("ipvs.rejected.no_backend");
            return Err(RouteError::NoLiveServers(address));
        };
        vs.servers[idx].active_connections += 1;
        let node = vs.servers[idx].node;
        self.connections.insert((client, address), node);
        self.stats.routed += 1;
        self.stats.tracked = self.connections.len() as u64;
        *self.per_server.entry((address, node)).or_insert(0) += 1;
        self.telemetry.incr(&format!("ipvs.routed.n{}", node.0));
        Ok(node)
    }

    /// Closes a tracked connection.
    pub fn release(&mut self, client: u64, address: SocketAddr) {
        if let Some(node) = self.connections.remove(&(client, address)) {
            if let Some(vs) = self.services.get_mut(&address) {
                if let Some(s) = vs.servers.iter_mut().find(|s| s.node == node) {
                    s.active_connections = s.active_connections.saturating_sub(1);
                }
            }
            self.stats.tracked = self.connections.len() as u64;
        }
    }

    // ------------------------------------------------------------------
    // Admission control: bounded queues, priority shedding, deterministic
    // draining. Orthogonal to `connect` (which models connection-oriented
    // affinity routing); `admit`/`drain` model per-request open-loop
    // service under overload.
    // ------------------------------------------------------------------

    /// Offers a request of `class` to the service at `address`, queueing
    /// it at the live backend with the shortest queue (join-shortest-queue
    /// — the right admission discipline, and deterministic: ties break to
    /// the lowest server index). When the chosen queue is full, a strictly
    /// lower-priority request is displaced (counted shed) to admit this
    /// one; if none exists — or the class is policy-shed via
    /// [`set_shed_class`](Self::set_shed_class) — the request itself is
    /// shed.
    ///
    /// # Errors
    ///
    /// See [`RouteError`].
    ///
    /// # Panics
    ///
    /// Panics if the service was not built
    /// [`with_admission`](VirtualService::with_admission).
    pub fn admit(
        &mut self,
        client: u64,
        address: SocketAddr,
        class: RequestClass,
        now_us: u64,
    ) -> Result<NodeId, RouteError> {
        if !self.services.contains_key(&address) {
            self.stats.rejected += 1;
            self.telemetry.incr("ipvs.rejected");
            self.telemetry.incr("ipvs.rejected.no_service");
            return Err(RouteError::NoSuchService(address));
        }
        if self.shed_classes.contains(&(address, class)) {
            self.count_shed(class, "policy");
            return Err(RouteError::Shed(address, class));
        }
        let vs = self.services.get_mut(&address).expect("checked above");
        assert!(
            vs.admission.is_some(),
            "admit() requires a service built with_admission"
        );
        // Join-shortest-queue over the eligible backends.
        let Some(idx) = vs
            .servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.eligible())
            .min_by_key(|(i, _)| (vs.queues[*i].depth(), *i))
            .map(|(i, _)| i)
        else {
            self.stats.rejected += 1;
            self.stats.no_backend += 1;
            self.telemetry.incr("ipvs.rejected");
            self.telemetry.incr("ipvs.rejected.no_backend");
            return Err(RouteError::NoLiveServers(address));
        };
        let node = vs.servers[idx].node;
        let outcome = vs.queues[idx].offer(QueuedRequest {
            client,
            class,
            enqueued_us: now_us,
        });
        match outcome {
            Admitted::Queued => {}
            Admitted::Displaced(victim) => {
                self.stats.displaced += 1;
                self.count_shed(victim.class, "displaced");
            }
            Admitted::Shed => {
                self.count_shed(class, "full");
                self.record_queue_gauge(address, node);
                return Err(RouteError::Shed(address, class));
            }
        }
        self.stats.queued += 1;
        self.telemetry.incr("ipvs.queued");
        self.telemetry.incr(&format!("ipvs.queued.{class}"));
        self.record_queue_gauge(address, node);
        Ok(node)
    }

    /// Drains every backend queue of the service at `address` up to
    /// `now_us`: each backend completes one queued request per configured
    /// service interval, priority lanes first. Returns the completions in
    /// deterministic order (backends in server order, each FIFO within
    /// class, classes by priority). Deadline misses are counted against
    /// each completion's class SLO.
    pub fn drain(&mut self, address: SocketAddr, now_us: u64) -> Vec<Completion> {
        let Some(vs) = self.services.get_mut(&address) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for i in 0..vs.queues.len() {
            let node = vs.servers[i].node;
            vs.queues[i].drain_until(node, now_us, &mut out);
        }
        let nodes: Vec<NodeId> = vs.servers.iter().map(|s| s.node).collect();
        for node in nodes {
            self.record_queue_gauge(address, node);
        }
        for c in &out {
            self.stats.completed += 1;
            self.telemetry.incr("ipvs.completed");
            self.telemetry
                .record(&format!("ipvs.latency_us.{}", c.class), c.latency_us());
            if c.missed_deadline() {
                self.stats.deadline_missed += 1;
                self.telemetry.incr("ipvs.deadline_missed");
                self.telemetry
                    .incr(&format!("ipvs.deadline_missed.{}", c.class));
            }
        }
        out
    }

    /// Turns outright shedding of `class` at `address` on or off (the
    /// `shed_class` policy action). While on, every arrival of that class
    /// is shed before touching a queue.
    pub fn set_shed_class(&mut self, address: SocketAddr, class: RequestClass, shed: bool) {
        if shed {
            self.shed_classes.insert((address, class));
        } else {
            self.shed_classes.remove(&(address, class));
        }
    }

    /// Whether `class` is currently policy-shed at `address`.
    pub fn is_shedding(&self, address: SocketAddr, class: RequestClass) -> bool {
        self.shed_classes.contains(&(address, class))
    }

    /// Per-backend queue depths for the service at `address`, in server
    /// order.
    pub fn queue_depths(&self, address: SocketAddr) -> Vec<(NodeId, usize)> {
        self.services.get(&address).map_or_else(Vec::new, |vs| {
            vs.servers
                .iter()
                .map(|s| (s.node, vs.queue_depth(s.node)))
                .collect()
        })
    }

    fn count_shed(&mut self, class: RequestClass, why: &str) {
        self.stats.shed += 1;
        self.telemetry.incr("ipvs.shed");
        self.telemetry.incr(&format!("ipvs.shed.{class}"));
        self.telemetry.incr(&format!("ipvs.shed.reason.{why}"));
    }

    fn record_queue_gauge(&mut self, address: SocketAddr, node: NodeId) {
        let depth = self
            .services
            .get(&address)
            .map_or(0, |vs| vs.queue_depth(node));
        self.telemetry
            .gauge_set(&format!("ipvs.queue_depth.n{}", node.0), depth as i64);
    }

    /// Marks every replica on `node` down across all services and drops its
    /// tracked connections (the health-check reaction to a node crash).
    /// Queued requests at the dead backend are abandoned and counted shed.
    /// Returns how many connections were broken.
    pub fn node_down(&mut self, node: NodeId) -> usize {
        let mut abandoned = 0u64;
        for vs in self.services.values_mut() {
            vs.set_alive(node, false);
            if let Some(i) = vs.servers.iter().position(|s| s.node == node) {
                if let Some(q) = vs.queues.get_mut(i) {
                    abandoned += q.flush().len() as u64;
                }
            }
        }
        if abandoned > 0 {
            self.stats.shed += abandoned;
            self.telemetry.add("ipvs.shed", abandoned);
            self.telemetry.add("ipvs.shed.reason.node_down", abandoned);
            self.telemetry
                .gauge_set(&format!("ipvs.queue_depth.n{}", node.0), 0);
        }
        let before = self.connections.len();
        self.connections.retain(|_, n| *n != node);
        self.stats.tracked = self.connections.len() as u64;
        before - self.connections.len()
    }

    /// [`node_down`](Self::node_down) with a causal trace: the redirect
    /// span joins `ctx`'s trace when given (the failover adoption that
    /// triggered the health-check reaction — making "redirect happens
    /// after adopt" checkable), or starts a fresh `redirect/n<node>` trace
    /// for an unprompted health-check trip.
    pub fn node_down_traced(
        &mut self,
        node: NodeId,
        ctx: Option<TraceContext>,
        now_us: u64,
    ) -> usize {
        let name = format!("redirect/n{}", node.0);
        let span = match ctx {
            Some(c) => self.recorder.child(c, &name, now_us),
            None => self.recorder.root(&name, now_us),
        };
        let broken = self.node_down(node);
        self.recorder.end(span, now_us);
        broken
    }

    /// Marks every replica on `node` back up.
    pub fn node_up(&mut self, node: NodeId) {
        for vs in self.services.values_mut() {
            vs.set_alive(node, true);
        }
    }

    /// Administratively drains `node` across all services ahead of an
    /// in-place upgrade: new work steers around it but — unlike
    /// [`node_down`](Self::node_down) — nothing queued is shed; the
    /// backend's queue keeps draining to completion. Work-conserving and
    /// loss-free by construction.
    pub fn drain_node(&mut self, node: NodeId) {
        for vs in self.services.values_mut() {
            vs.set_draining(node, true);
        }
        self.telemetry.incr(&format!("ipvs.drained.n{}", node.0));
    }

    /// Lifts the administrative drain on `node`: the replica resumes
    /// taking new work.
    pub fn undrain_node(&mut self, node: NodeId) {
        for vs in self.services.values_mut() {
            vs.set_draining(node, false);
        }
        self.telemetry.incr(&format!("ipvs.undrained.n{}", node.0));
    }

    /// Whether any service currently holds `node` in the draining state.
    pub fn is_draining(&self, node: NodeId) -> bool {
        self.services
            .values()
            .any(|vs| vs.servers.iter().any(|s| s.node == node && s.draining))
    }

    /// [`drain_node`](Self::drain_node) with a causal trace: records a
    /// `drain/n<node>` span, joined to `ctx` when given (the wave
    /// orchestrator's per-node step) or as a fresh root.
    pub fn drain_node_traced(&mut self, node: NodeId, ctx: Option<TraceContext>, now_us: u64) {
        let name = format!("drain/n{}", node.0);
        let span = match ctx {
            Some(c) => self.recorder.child(c, &name, now_us),
            None => self.recorder.root(&name, now_us),
        };
        self.drain_node(node);
        self.recorder.end(span, now_us);
    }

    /// [`undrain_node`](Self::undrain_node) with a causal trace: the
    /// `undrain/n<node>` span joins `ctx` when given — the wave passes the
    /// completed upgrade's context here, which is exactly what makes
    /// "un-drain happens after the new revision adopted" checkable by
    /// `trace_check`.
    pub fn undrain_node_traced(&mut self, node: NodeId, ctx: Option<TraceContext>, now_us: u64) {
        let name = format!("undrain/n{}", node.0);
        let span = match ctx {
            Some(c) => self.recorder.child(c, &name, now_us),
            None => self.recorder.root(&name, now_us),
        };
        self.undrain_node(node);
        self.recorder.end(span, now_us);
    }

    /// Requests routed to `node` for `address` (the balance data for E8).
    pub fn routed_to(&self, address: SocketAddr, node: NodeId) -> u64 {
        self.per_server.get(&(address, node)).copied().unwrap_or(0)
    }

    /// Counters.
    pub fn stats(&self) -> IpvsStats {
        self.stats
    }

    /// Drops all connection-tracking state (what a failover *without*
    /// connection synchronization loses).
    pub fn clear_connections(&mut self) {
        self.connections.clear();
        for vs in self.services.values_mut() {
            for s in &mut vs.servers {
                s.active_connections = 0;
            }
        }
        self.stats.tracked = 0;
    }

    /// Registered service addresses, sorted.
    pub fn addresses(&self) -> Vec<SocketAddr> {
        let mut v: Vec<SocketAddr> = self.services.keys().copied().collect();
        v.sort();
        v
    }
}

/// Convenience: builds a service with `n` equal replicas on nodes `0..n`.
pub fn replicated_service(
    address: SocketAddr,
    scheduler: Scheduler,
    nodes: &[NodeId],
) -> VirtualService {
    let mut vs = VirtualService::new(address, scheduler);
    for &n in nodes {
        vs.add_server(RealServer::new(n));
    }
    vs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_net::{IpAddr, Port};

    fn addr() -> SocketAddr {
        SocketAddr::new(IpAddr::new(10, 0, 0, 100), Port(80))
    }

    fn director(nodes: usize) -> IpvsDirector {
        let mut d = IpvsDirector::new();
        let nodes: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
        d.add_service(replicated_service(addr(), Scheduler::RoundRobin, &nodes));
        d
    }

    #[test]
    fn connect_balances_round_robin() {
        let mut d = director(3);
        let picks: Vec<NodeId> = (0..6).map(|c| d.connect(c, addr()).unwrap()).collect();
        assert_eq!(
            picks,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(0),
                NodeId(1),
                NodeId(2)
            ]
        );
        assert_eq!(d.stats().routed, 6);
        assert_eq!(d.stats().tracked, 6);
        assert_eq!(d.routed_to(addr(), NodeId(0)), 2);
    }

    #[test]
    fn affinity_sticks_until_release() {
        let mut d = director(3);
        let first = d.connect(42, addr()).unwrap();
        for _ in 0..5 {
            assert_eq!(d.connect(42, addr()).unwrap(), first);
        }
        d.release(42, addr());
        assert_eq!(d.stats().tracked, 0);
        // After release the scheduler moves on.
        let second = d.connect(42, addr()).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn node_down_breaks_connections_and_reroutes() {
        let mut d = director(2);
        let n0 = d.connect(1, addr()).unwrap();
        assert_eq!(n0, NodeId(0));
        let broken = d.node_down(NodeId(0));
        assert_eq!(broken, 1);
        // The same client is rerouted to the survivor.
        assert_eq!(d.connect(1, addr()).unwrap(), NodeId(1));
        d.node_up(NodeId(0));
        assert_eq!(d.service(addr()).unwrap().alive_count(), 2);
    }

    #[test]
    fn errors_and_rejection_counting() {
        let mut d = IpvsDirector::new();
        assert_eq!(d.connect(1, addr()), Err(RouteError::NoSuchService(addr())));
        d.add_service(replicated_service(
            addr(),
            Scheduler::RoundRobin,
            &[NodeId(0)],
        ));
        d.node_down(NodeId(0));
        assert_eq!(d.connect(1, addr()), Err(RouteError::NoLiveServers(addr())));
        // Both the missing-service and the no-backend requests count.
        assert_eq!(d.stats().rejected, 2);
    }

    #[test]
    fn remove_service_drops_connections() {
        let mut d = director(2);
        d.connect(1, addr()).unwrap();
        assert!(d.remove_service(addr()));
        assert!(!d.remove_service(addr()));
        assert_eq!(d.stats().tracked, 0);
        assert!(d.addresses().is_empty());
    }

    #[test]
    fn node_down_traced_records_redirect_span() {
        let rec = FlightRecorder::new(5);
        let mut d = director(2);
        d.set_recorder(rec.clone());
        d.connect(1, addr()).unwrap();
        // An adoption context from some other node parents the redirect.
        let adopt = rec.root("adopt/web", 100);
        let ctx = rec.context(adopt).unwrap();
        rec.end(adopt, 100);
        let broken = d.node_down_traced(NodeId(0), Some(ctx), 250);
        assert_eq!(broken, 1);
        let events = rec.events();
        let redirect = events
            .iter()
            .find(|e| e.name == "redirect/n0")
            .expect("redirect span recorded");
        assert_eq!(redirect.trace_id, ctx.trace_id, "joins the adopt trace");
        assert!(
            redirect.lamport_start > ctx.lamport,
            "redirect is causally after the adoption"
        );
        // Without a context the redirect starts its own trace.
        d.node_up(NodeId(0));
        d.node_down_traced(NodeId(0), None, 300);
        let roots: Vec<_> = rec
            .events()
            .into_iter()
            .filter(|e| e.name == "redirect/n0" && e.parent_span == 0)
            .collect();
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn default_recorder_is_inert() {
        let mut traced = director(2);
        let mut plain = director(2);
        traced.connect(1, addr()).unwrap();
        plain.connect(1, addr()).unwrap();
        traced.node_down_traced(NodeId(0), None, 10);
        plain.node_down(NodeId(0));
        assert_eq!(traced, plain, "tracing hooks change no routing state");
        assert!(traced.recorder().events().is_empty());
    }

    fn admission_director(nodes: usize, capacity: usize, rate: u64) -> IpvsDirector {
        let mut d = IpvsDirector::new();
        let nodes: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
        let vs = replicated_service(addr(), Scheduler::RoundRobin, &nodes)
            .with_admission(crate::AdmissionConfig::per_second(rate, capacity));
        d.add_service(vs);
        d
    }

    #[test]
    fn admit_joins_shortest_queue_and_drains_deterministically() {
        // 2 backends, 1000 req/s each (1ms per request).
        let mut d = admission_director(2, 8, 1000);
        for c in 0..4u64 {
            d.admit(c, addr(), RequestClass::Standard, 0).unwrap();
        }
        // JSQ alternates across the two empty backends.
        assert_eq!(d.queue_depths(addr()), vec![(NodeId(0), 2), (NodeId(1), 2)]);
        let done = d.drain(addr(), 2_000);
        assert_eq!(done.len(), 4, "each backend served 2 in 2ms");
        assert_eq!(d.stats().completed, 4);
        assert_eq!(d.stats().queued, 4);
        assert_eq!(d.queue_depths(addr()), vec![(NodeId(0), 0), (NodeId(1), 0)]);
        // Same-latency completions: 1ms then 2ms on each backend.
        assert!(done.iter().all(|c| !c.missed_deadline()));
    }

    #[test]
    fn shed_on_full_prefers_critical() {
        // One backend, queue of 2, slow service.
        let mut d = admission_director(1, 2, 10);
        d.admit(1, addr(), RequestClass::Background, 0).unwrap();
        d.admit(2, addr(), RequestClass::Background, 0).unwrap();
        // Full: a critical request displaces a background one.
        d.admit(3, addr(), RequestClass::Critical, 0).unwrap();
        assert_eq!(d.stats().shed, 1, "displaced background counts shed");
        // Full of critical+background; another background is shed outright.
        assert_eq!(
            d.admit(4, addr(), RequestClass::Background, 0),
            Err(RouteError::Shed(addr(), RequestClass::Background))
        );
        assert_eq!(d.stats().shed, 2);
        assert_eq!(d.stats().queued, 3);
        // Shed is NOT counted as rejected: shed-vs-dead stay separate.
        assert_eq!(d.stats().rejected, 0);
    }

    #[test]
    fn shed_vs_dead_are_distinguishable() {
        let mut d = admission_director(1, 1, 10);
        d.admit(1, addr(), RequestClass::Standard, 0).unwrap();
        let shed = d.admit(2, addr(), RequestClass::Standard, 0);
        assert!(matches!(shed, Err(RouteError::Shed(_, _))));
        d.node_down(NodeId(0));
        let dead = d.admit(3, addr(), RequestClass::Standard, 0);
        assert_eq!(dead, Err(RouteError::NoLiveServers(addr())));
        let s = d.stats();
        // One abandoned queued request + one full-queue shed.
        assert_eq!(s.shed, 2);
        assert_eq!(s.no_backend, 1);
        assert_eq!(s.rejected, 1);
    }

    #[test]
    fn policy_shed_class_rejects_before_queueing() {
        let mut d = admission_director(2, 8, 1000);
        d.set_shed_class(addr(), RequestClass::Background, true);
        assert!(d.is_shedding(addr(), RequestClass::Background));
        assert_eq!(
            d.admit(1, addr(), RequestClass::Background, 0),
            Err(RouteError::Shed(addr(), RequestClass::Background))
        );
        // Other classes still flow.
        d.admit(2, addr(), RequestClass::Critical, 0).unwrap();
        d.set_shed_class(addr(), RequestClass::Background, false);
        d.admit(3, addr(), RequestClass::Background, 0).unwrap();
        assert_eq!(d.stats().queued, 2);
        assert_eq!(d.stats().shed, 1);
    }

    #[test]
    fn deadline_misses_are_counted() {
        // One backend at 10 req/s: 100ms per request, Critical SLO is 50ms.
        let mut d = admission_director(1, 8, 10);
        d.admit(1, addr(), RequestClass::Critical, 0).unwrap();
        d.admit(2, addr(), RequestClass::Critical, 0).unwrap();
        let done = d.drain(addr(), 1_000_000);
        assert_eq!(done.len(), 2);
        // 100ms and 200ms latencies both blow the 50ms critical budget.
        assert_eq!(d.stats().deadline_missed, 2);
        assert!(done.iter().all(Completion::missed_deadline));
    }

    #[test]
    fn node_down_abandons_queued_requests() {
        let mut d = admission_director(2, 8, 1000);
        for c in 0..4u64 {
            d.admit(c, addr(), RequestClass::Standard, 0).unwrap();
        }
        d.node_down(NodeId(0));
        assert_eq!(d.stats().shed, 2, "node 0's two queued requests lost");
        // Draining now only completes node 1's work.
        let done = d.drain(addr(), 10_000);
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|c| c.node == NodeId(1)));
    }

    #[test]
    fn drain_steers_new_work_without_shedding_queued() {
        let mut d = admission_director(2, 8, 1000);
        for c in 0..4u64 {
            d.admit(c, addr(), RequestClass::Standard, 0).unwrap();
        }
        assert_eq!(d.queue_depths(addr()), vec![(NodeId(0), 2), (NodeId(1), 2)]);
        d.drain_node(NodeId(0));
        assert!(d.is_draining(NodeId(0)));
        // New arrivals all land on the eligible backend…
        for c in 4..8u64 {
            assert_eq!(
                d.admit(c, addr(), RequestClass::Standard, 0).unwrap(),
                NodeId(1)
            );
        }
        // …but — unlike node_down — nothing already queued was shed, and
        // the draining backend still completes its accepted work.
        assert_eq!(d.stats().shed, 0);
        let done = d.drain(addr(), 10_000);
        assert_eq!(done.len(), 8);
        assert_eq!(done.iter().filter(|c| c.node == NodeId(0)).count(), 2);
        d.undrain_node(NodeId(0));
        assert!(!d.is_draining(NodeId(0)));
        assert_eq!(
            d.admit(9, addr(), RequestClass::Standard, 20_000).unwrap(),
            NodeId(0),
            "undrained backend (shortest queue) takes work again"
        );
    }

    #[test]
    fn drain_breaks_connection_affinity_cleanly() {
        let mut d = director(2);
        let first = d.connect(7, addr()).unwrap();
        d.drain_node(first);
        let rerouted = d.connect(7, addr()).unwrap();
        assert_ne!(rerouted, first, "affinity does not pin to a draining node");
        // A drain is not a failure: nothing was counted rejected.
        assert_eq!(d.stats().rejected, 0);
    }

    #[test]
    fn undrain_traced_joins_upgrade_context() {
        let rec = FlightRecorder::new(9);
        let mut d = director(2);
        d.set_recorder(rec.clone());
        let up = rec.root("upgrade/web", 100);
        let ctx = rec.context(up).unwrap();
        rec.end(up, 400);
        d.drain_node_traced(NodeId(0), None, 50);
        d.undrain_node_traced(NodeId(0), Some(ctx), 500);
        let events = rec.events();
        let drain = events.iter().find(|e| e.name == "drain/n0").unwrap();
        assert_eq!(drain.parent_span, 0, "unprompted drain starts a root");
        let undrain = events.iter().find(|e| e.name == "undrain/n0").unwrap();
        assert_eq!(undrain.trace_id, ctx.trace_id, "joins the upgrade trace");
        assert!(
            undrain.lamport_start > ctx.lamport,
            "undrain is causally after the upgrade"
        );
    }

    #[test]
    fn clear_connections_resets_tracking() {
        let mut d = director(2);
        for c in 0..4 {
            d.connect(c, addr()).unwrap();
        }
        d.clear_connections();
        assert_eq!(d.stats().tracked, 0);
        assert_eq!(d.service(addr()).unwrap().servers[0].active_connections, 0);
    }
}
