//! The ipvs director: request routing and connection tracking.

use crate::{RealServer, Scheduler, VirtualService};
use dosgi_net::{NodeId, SocketAddr};
use dosgi_telemetry::{FlightRecorder, Telemetry, TraceContext};
use std::collections::HashMap;
use std::fmt;

/// Routing failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No virtual service is configured at the address.
    NoSuchService(SocketAddr),
    /// The service exists but every replica is down.
    NoLiveServers(SocketAddr),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NoSuchService(a) => write!(f, "no virtual service at {a}"),
            RouteError::NoLiveServers(a) => write!(f, "no live servers for {a}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Director counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IpvsStats {
    /// Requests routed to a backend.
    pub routed: u64,
    /// Requests rejected (no service / no live backend).
    pub rejected: u64,
    /// Connections currently tracked.
    pub tracked: u64,
}

/// The load-balancer core: virtual services, connection tracking, stats.
#[derive(Debug, Clone, Default)]
pub struct IpvsDirector {
    services: HashMap<SocketAddr, VirtualService>,
    // (client, service) → backend node, for connection affinity.
    connections: HashMap<(u64, SocketAddr), NodeId>,
    per_server: HashMap<(SocketAddr, NodeId), u64>,
    stats: IpvsStats,
    telemetry: Telemetry,
    recorder: FlightRecorder,
}

// Telemetry handles and flight recorders carry no comparable state; two
// directors are equal when their routing state is.
impl PartialEq for IpvsDirector {
    fn eq(&self, other: &Self) -> bool {
        self.services == other.services
            && self.connections == other.connections
            && self.per_server == other.per_server
            && self.stats == other.stats
    }
}

impl IpvsDirector {
    /// Creates an empty director.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry handle; routed requests are counted per
    /// backend as `ipvs.routed.n<node>`, rejections as `ipvs.rejected`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Attaches a flight recorder: redirect reactions
    /// ([`node_down_traced`](Self::node_down_traced)) record causal spans
    /// into it. Passive — routing decisions never depend on it.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.recorder = recorder;
    }

    /// The attached flight recorder (disabled by default).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Registers a virtual service.
    pub fn add_service(&mut self, service: VirtualService) {
        self.services.insert(service.address, service);
    }

    /// Removes a virtual service and its tracked connections.
    pub fn remove_service(&mut self, address: SocketAddr) -> bool {
        let existed = self.services.remove(&address).is_some();
        if existed {
            self.connections.retain(|(_, a), _| *a != address);
            self.stats.tracked = self.connections.len() as u64;
        }
        existed
    }

    /// Access to a service (e.g. to add replicas at run-time).
    pub fn service_mut(&mut self, address: SocketAddr) -> Option<&mut VirtualService> {
        self.services.get_mut(&address)
    }

    /// Read access to a service.
    pub fn service(&self, address: SocketAddr) -> Option<&VirtualService> {
        self.services.get(&address)
    }

    /// Routes a request from `client` to `address`, opening a tracked
    /// connection. Existing connections stick to their backend while it is
    /// alive (connection affinity, as in real ipvs).
    ///
    /// # Errors
    ///
    /// See [`RouteError`].
    pub fn connect(&mut self, client: u64, address: SocketAddr) -> Result<NodeId, RouteError> {
        if !self.services.contains_key(&address) {
            self.stats.rejected += 1;
            self.telemetry.incr("ipvs.rejected");
            return Err(RouteError::NoSuchService(address));
        }
        // Affinity: reuse the existing backend if still alive.
        if let Some(&node) = self.connections.get(&(client, address)) {
            let still_alive = self.services[&address]
                .servers
                .iter()
                .any(|s| s.node == node && s.alive);
            if still_alive {
                self.stats.routed += 1;
                *self.per_server.entry((address, node)).or_insert(0) += 1;
                self.telemetry.incr(&format!("ipvs.routed.n{}", node.0));
                return Ok(node);
            }
            self.release(client, address);
        }
        let vs = self.services.get_mut(&address).expect("checked above");
        let scheduler = vs.scheduler;
        let Some(idx) = scheduler.pick(vs, client) else {
            self.stats.rejected += 1;
            self.telemetry.incr("ipvs.rejected");
            return Err(RouteError::NoLiveServers(address));
        };
        vs.servers[idx].active_connections += 1;
        let node = vs.servers[idx].node;
        self.connections.insert((client, address), node);
        self.stats.routed += 1;
        self.stats.tracked = self.connections.len() as u64;
        *self.per_server.entry((address, node)).or_insert(0) += 1;
        self.telemetry.incr(&format!("ipvs.routed.n{}", node.0));
        Ok(node)
    }

    /// Closes a tracked connection.
    pub fn release(&mut self, client: u64, address: SocketAddr) {
        if let Some(node) = self.connections.remove(&(client, address)) {
            if let Some(vs) = self.services.get_mut(&address) {
                if let Some(s) = vs.servers.iter_mut().find(|s| s.node == node) {
                    s.active_connections = s.active_connections.saturating_sub(1);
                }
            }
            self.stats.tracked = self.connections.len() as u64;
        }
    }

    /// Marks every replica on `node` down across all services and drops its
    /// tracked connections (the health-check reaction to a node crash).
    /// Returns how many connections were broken.
    pub fn node_down(&mut self, node: NodeId) -> usize {
        for vs in self.services.values_mut() {
            vs.set_alive(node, false);
        }
        let before = self.connections.len();
        self.connections.retain(|_, n| *n != node);
        self.stats.tracked = self.connections.len() as u64;
        before - self.connections.len()
    }

    /// [`node_down`](Self::node_down) with a causal trace: the redirect
    /// span joins `ctx`'s trace when given (the failover adoption that
    /// triggered the health-check reaction — making "redirect happens
    /// after adopt" checkable), or starts a fresh `redirect/n<node>` trace
    /// for an unprompted health-check trip.
    pub fn node_down_traced(
        &mut self,
        node: NodeId,
        ctx: Option<TraceContext>,
        now_us: u64,
    ) -> usize {
        let name = format!("redirect/n{}", node.0);
        let span = match ctx {
            Some(c) => self.recorder.child(c, &name, now_us),
            None => self.recorder.root(&name, now_us),
        };
        let broken = self.node_down(node);
        self.recorder.end(span, now_us);
        broken
    }

    /// Marks every replica on `node` back up.
    pub fn node_up(&mut self, node: NodeId) {
        for vs in self.services.values_mut() {
            vs.set_alive(node, true);
        }
    }

    /// Requests routed to `node` for `address` (the balance data for E8).
    pub fn routed_to(&self, address: SocketAddr, node: NodeId) -> u64 {
        self.per_server.get(&(address, node)).copied().unwrap_or(0)
    }

    /// Counters.
    pub fn stats(&self) -> IpvsStats {
        self.stats
    }

    /// Drops all connection-tracking state (what a failover *without*
    /// connection synchronization loses).
    pub fn clear_connections(&mut self) {
        self.connections.clear();
        for vs in self.services.values_mut() {
            for s in &mut vs.servers {
                s.active_connections = 0;
            }
        }
        self.stats.tracked = 0;
    }

    /// Registered service addresses, sorted.
    pub fn addresses(&self) -> Vec<SocketAddr> {
        let mut v: Vec<SocketAddr> = self.services.keys().copied().collect();
        v.sort();
        v
    }
}

/// Convenience: builds a service with `n` equal replicas on nodes `0..n`.
pub fn replicated_service(
    address: SocketAddr,
    scheduler: Scheduler,
    nodes: &[NodeId],
) -> VirtualService {
    let mut vs = VirtualService::new(address, scheduler);
    for &n in nodes {
        vs.add_server(RealServer::new(n));
    }
    vs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_net::{IpAddr, Port};

    fn addr() -> SocketAddr {
        SocketAddr::new(IpAddr::new(10, 0, 0, 100), Port(80))
    }

    fn director(nodes: usize) -> IpvsDirector {
        let mut d = IpvsDirector::new();
        let nodes: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
        d.add_service(replicated_service(addr(), Scheduler::RoundRobin, &nodes));
        d
    }

    #[test]
    fn connect_balances_round_robin() {
        let mut d = director(3);
        let picks: Vec<NodeId> = (0..6).map(|c| d.connect(c, addr()).unwrap()).collect();
        assert_eq!(
            picks,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(0),
                NodeId(1),
                NodeId(2)
            ]
        );
        assert_eq!(d.stats().routed, 6);
        assert_eq!(d.stats().tracked, 6);
        assert_eq!(d.routed_to(addr(), NodeId(0)), 2);
    }

    #[test]
    fn affinity_sticks_until_release() {
        let mut d = director(3);
        let first = d.connect(42, addr()).unwrap();
        for _ in 0..5 {
            assert_eq!(d.connect(42, addr()).unwrap(), first);
        }
        d.release(42, addr());
        assert_eq!(d.stats().tracked, 0);
        // After release the scheduler moves on.
        let second = d.connect(42, addr()).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn node_down_breaks_connections_and_reroutes() {
        let mut d = director(2);
        let n0 = d.connect(1, addr()).unwrap();
        assert_eq!(n0, NodeId(0));
        let broken = d.node_down(NodeId(0));
        assert_eq!(broken, 1);
        // The same client is rerouted to the survivor.
        assert_eq!(d.connect(1, addr()).unwrap(), NodeId(1));
        d.node_up(NodeId(0));
        assert_eq!(d.service(addr()).unwrap().alive_count(), 2);
    }

    #[test]
    fn errors_and_rejection_counting() {
        let mut d = IpvsDirector::new();
        assert_eq!(d.connect(1, addr()), Err(RouteError::NoSuchService(addr())));
        d.add_service(replicated_service(
            addr(),
            Scheduler::RoundRobin,
            &[NodeId(0)],
        ));
        d.node_down(NodeId(0));
        assert_eq!(d.connect(1, addr()), Err(RouteError::NoLiveServers(addr())));
        // Both the missing-service and the no-backend requests count.
        assert_eq!(d.stats().rejected, 2);
    }

    #[test]
    fn remove_service_drops_connections() {
        let mut d = director(2);
        d.connect(1, addr()).unwrap();
        assert!(d.remove_service(addr()));
        assert!(!d.remove_service(addr()));
        assert_eq!(d.stats().tracked, 0);
        assert!(d.addresses().is_empty());
    }

    #[test]
    fn node_down_traced_records_redirect_span() {
        let rec = FlightRecorder::new(5);
        let mut d = director(2);
        d.set_recorder(rec.clone());
        d.connect(1, addr()).unwrap();
        // An adoption context from some other node parents the redirect.
        let adopt = rec.root("adopt/web", 100);
        let ctx = rec.context(adopt).unwrap();
        rec.end(adopt, 100);
        let broken = d.node_down_traced(NodeId(0), Some(ctx), 250);
        assert_eq!(broken, 1);
        let events = rec.events();
        let redirect = events
            .iter()
            .find(|e| e.name == "redirect/n0")
            .expect("redirect span recorded");
        assert_eq!(redirect.trace_id, ctx.trace_id, "joins the adopt trace");
        assert!(
            redirect.lamport_start > ctx.lamport,
            "redirect is causally after the adoption"
        );
        // Without a context the redirect starts its own trace.
        d.node_up(NodeId(0));
        d.node_down_traced(NodeId(0), None, 300);
        let roots: Vec<_> = rec
            .events()
            .into_iter()
            .filter(|e| e.name == "redirect/n0" && e.parent_span == 0)
            .collect();
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn default_recorder_is_inert() {
        let mut traced = director(2);
        let mut plain = director(2);
        traced.connect(1, addr()).unwrap();
        plain.connect(1, addr()).unwrap();
        traced.node_down_traced(NodeId(0), None, 10);
        plain.node_down(NodeId(0));
        assert_eq!(traced, plain, "tracing hooks change no routing state");
        assert!(traced.recorder().events().is_empty());
    }

    #[test]
    fn clear_connections_resets_tracking() {
        let mut d = director(2);
        for c in 0..4 {
            d.connect(c, addr()).unwrap();
        }
        d.clear_connections();
        assert_eq!(d.stats().tracked, 0);
        assert_eq!(d.service(addr()).unwrap().servers[0].active_connections, 0);
    }
}
