//! # dosgi-ipvs — a fault-tolerant IP virtual server
//!
//! Figure 6 of the paper shows the shared-IP localization scheme: services
//! share virtual IPs fronted by an **ipvs** layer that
//!
//! > *"will be responsible to ensure the availability of the IP address to
//! > the Internet and redirect the service requests to the node currently
//! > running the service. Notice that this setting allows also to scale-up
//! > the services allowing multiple instances of the service and use the
//! > ipvs as a load balancer."*
//!
//! This crate reproduces that layer:
//!
//! * [`VirtualService`] — a `VIP:port` mapping onto a set of
//!   [`RealServer`]s with a pluggable [`Scheduler`] (round-robin, weighted
//!   round-robin, least-connections, source-hash — the classic Linux ipvs
//!   set);
//! * [`IpvsDirector`] — routes requests, tracks connections, counts per
//!   server (the balance data experiment **E8** plots);
//! * [`FaultTolerantIpvs`] — a primary/backup director pair; on primary
//!   failure the backup takes over, with or without connection-table
//!   synchronization (the ablation in **E8**);
//! * admission control ([`AdmissionConfig`], [`RequestClass`],
//!   [`BackendQueue`]) — bounded per-backend queues drained at a
//!   deterministic service rate, shedding lowest-priority work first
//!   under overload (experiment **E15**).

mod admission;
mod director;
mod failover;
mod scheduler;
mod service;

pub use admission::{
    AdmissionConfig, Admitted, BackendQueue, Completion, QueuedRequest, RequestClass,
};
pub use director::{replicated_service, IpvsDirector, IpvsStats, RouteError};
pub use failover::FaultTolerantIpvs;
pub use scheduler::Scheduler;
pub use service::{RealServer, VirtualService};
