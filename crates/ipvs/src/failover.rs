//! The fault-tolerant director pair.
//!
//! The paper requires a *"fault tolerant IP virtual server"*: the VIPs must
//! stay reachable even if the balancer node itself dies. Real deployments
//! run two directors with VRRP-style VIP takeover and optionally the ipvs
//! connection-synchronization daemon; this module models exactly that pair.

use crate::{IpvsDirector, RouteError};
use dosgi_net::{IpAddr, IpBindings, NodeId, SocketAddr};

/// A primary/backup ipvs director pair.
///
/// Routing goes through whichever director is active. On
/// [`fail_active`](Self::fail_active) the standby takes over the VIPs; with
/// `sync_connections` the connection table survives (clients keep their
/// backend), without it all affinity is lost and connections are
/// rescheduled — the trade-off experiment **E8** quantifies.
#[derive(Debug, Clone)]
pub struct FaultTolerantIpvs {
    primary: NodeId,
    backup: NodeId,
    active: NodeId,
    director: IpvsDirector,
    sync_connections: bool,
    vips: Vec<IpAddr>,
    failovers: u32,
}

impl FaultTolerantIpvs {
    /// Creates a pair with `primary` active.
    pub fn new(primary: NodeId, backup: NodeId, director: IpvsDirector, sync: bool) -> Self {
        let vips = director
            .addresses()
            .iter()
            .map(|a| a.ip)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        FaultTolerantIpvs {
            primary,
            backup,
            active: primary,
            director,
            sync_connections: sync,
            vips,
            failovers: 0,
        }
    }

    /// The node currently answering for the VIPs.
    pub fn active(&self) -> NodeId {
        self.active
    }

    /// Number of takeovers so far.
    pub fn failovers(&self) -> u32 {
        self.failovers
    }

    /// Binds every VIP to the active director in the cluster IP table.
    ///
    /// # Panics
    ///
    /// Panics if a VIP is already held by a different node — director
    /// takeover must release first (use [`fail_active`](Self::fail_active)).
    pub fn bind_vips(&self, bindings: &mut IpBindings) {
        for vip in &self.vips {
            bindings
                .bind(*vip, self.active)
                .expect("vip must be free or already ours");
        }
    }

    /// [`fail_active`](Self::fail_active) with a causal trace: records a
    /// `redirect/vip_takeover` root span into the underlying director's
    /// flight recorder.
    pub fn fail_active_traced(&mut self, bindings: &mut IpBindings, now_us: u64) {
        let recorder = self.director.recorder().clone();
        let span = recorder.root("redirect/vip_takeover", now_us);
        self.fail_active(bindings);
        recorder.end(span, now_us);
    }

    /// The active director fails: the standby becomes active, takes over
    /// the VIPs in `bindings`, and — without connection sync — loses the
    /// connection table.
    pub fn fail_active(&mut self, bindings: &mut IpBindings) {
        let dead = self.active;
        bindings.release_all(dead);
        self.active = if self.active == self.primary {
            self.backup
        } else {
            self.primary
        };
        self.failovers += 1;
        if !self.sync_connections {
            self.director.clear_connections();
        }
        self.bind_vips(bindings);
    }

    /// Routes a request through the active director.
    ///
    /// # Errors
    ///
    /// See [`RouteError`].
    pub fn connect(&mut self, client: u64, address: SocketAddr) -> Result<NodeId, RouteError> {
        self.director.connect(client, address)
    }

    /// The underlying director (health marking, stats).
    pub fn director(&self) -> &IpvsDirector {
        &self.director
    }

    /// Mutable access to the underlying director.
    pub fn director_mut(&mut self) -> &mut IpvsDirector {
        &mut self.director
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::director::replicated_service;
    use crate::Scheduler;
    use dosgi_net::Port;

    fn addr() -> SocketAddr {
        SocketAddr::new(IpAddr::new(10, 0, 0, 100), Port(80))
    }

    fn pair(sync: bool) -> FaultTolerantIpvs {
        let mut d = IpvsDirector::new();
        d.add_service(replicated_service(
            addr(),
            Scheduler::RoundRobin,
            &[NodeId(10), NodeId(11)],
        ));
        FaultTolerantIpvs::new(NodeId(0), NodeId(1), d, sync)
    }

    #[test]
    fn vip_takeover_on_failure() {
        let mut bindings = IpBindings::new();
        let mut ft = pair(true);
        ft.bind_vips(&mut bindings);
        assert_eq!(
            bindings.owner_of(IpAddr::new(10, 0, 0, 100)),
            Some(NodeId(0))
        );
        ft.fail_active(&mut bindings);
        assert_eq!(ft.active(), NodeId(1));
        assert_eq!(
            bindings.owner_of(IpAddr::new(10, 0, 0, 100)),
            Some(NodeId(1))
        );
        assert_eq!(ft.failovers(), 1);
        // Failing again fails back to the primary.
        ft.fail_active(&mut bindings);
        assert_eq!(ft.active(), NodeId(0));
    }

    #[test]
    fn traced_takeover_records_a_root_span() {
        use dosgi_telemetry::FlightRecorder;
        let rec = FlightRecorder::new(9);
        let mut bindings = IpBindings::new();
        let mut ft = pair(true);
        ft.director_mut().set_recorder(rec.clone());
        ft.bind_vips(&mut bindings);
        ft.fail_active_traced(&mut bindings, 1_000);
        assert_eq!(ft.active(), NodeId(1), "takeover still happens");
        let events = rec.events();
        let span = events
            .iter()
            .find(|e| e.name == "redirect/vip_takeover")
            .expect("takeover span recorded");
        assert_eq!(span.parent_span, 0, "a takeover starts its own trace");
        assert!(!span.open);
    }

    #[test]
    fn sync_preserves_affinity_across_failover() {
        let mut bindings = IpBindings::new();
        let mut ft = pair(true);
        ft.bind_vips(&mut bindings);
        let before = ft.connect(7, addr()).unwrap();
        ft.fail_active(&mut bindings);
        assert_eq!(ft.connect(7, addr()).unwrap(), before);
        assert_eq!(ft.director().stats().tracked, 1);
    }

    #[test]
    fn no_sync_loses_connections() {
        let mut bindings = IpBindings::new();
        let mut ft = pair(false);
        ft.bind_vips(&mut bindings);
        ft.connect(7, addr()).unwrap();
        assert_eq!(ft.director().stats().tracked, 1);
        ft.fail_active(&mut bindings);
        assert_eq!(ft.director().stats().tracked, 0, "table lost without sync");
        // The client is rescheduled (fresh pick, no crash).
        ft.connect(7, addr()).unwrap();
    }
}
