//! Scheduling disciplines.

use crate::VirtualService;

/// The scheduling disciplines of Linux ipvs that the paper's load-balancing
/// claim rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scheduler {
    /// Each request to the next live server in turn.
    #[default]
    RoundRobin,
    /// Round-robin proportional to server weights.
    WeightedRoundRobin,
    /// The live server with the fewest tracked connections.
    LeastConnections,
    /// Hash of the client address — deterministic per-client affinity.
    SourceHash,
}

impl Scheduler {
    /// Picks an eligible (live, not draining) server index for a request
    /// from `source` (a client identity used only by
    /// [`Scheduler::SourceHash`]). Returns `None` when no eligible server
    /// exists. Mutates cursor/credit state on the service.
    pub fn pick(self, vs: &mut VirtualService, source: u64) -> Option<usize> {
        let n = vs.servers.len();
        if n == 0 || vs.eligible_count() == 0 {
            return None;
        }
        match self {
            Scheduler::RoundRobin => {
                for step in 0..n {
                    let idx = (vs.rr_cursor + step) % n;
                    if vs.servers[idx].eligible() {
                        vs.rr_cursor = (idx + 1) % n;
                        return Some(idx);
                    }
                }
                None
            }
            Scheduler::WeightedRoundRobin => {
                // Two sweeps: one with remaining credit, then refill once.
                for _ in 0..2 {
                    for step in 0..n {
                        let idx = (vs.rr_cursor + step) % n;
                        if vs.servers[idx].eligible() && vs.wrr_credit[idx] > 0 {
                            vs.wrr_credit[idx] -= 1;
                            // Cursor advances only when credit is spent, so
                            // a heavy server receives its burst.
                            if vs.wrr_credit[idx] == 0 {
                                vs.rr_cursor = (idx + 1) % n;
                            }
                            return Some(idx);
                        }
                    }
                    for i in 0..n {
                        vs.wrr_credit[i] = vs.servers[i].weight;
                    }
                }
                None
            }
            Scheduler::LeastConnections => vs
                .servers
                .iter()
                .enumerate()
                .filter(|(_, s)| s.eligible())
                .min_by_key(|(i, s)| (s.active_connections, *i))
                .map(|(i, _)| i),
            Scheduler::SourceHash => {
                // FNV-1a over the source id, probed until a live server.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in source.to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                for probe in 0..n as u64 {
                    let idx = ((h.wrapping_add(probe)) % n as u64) as usize;
                    if vs.servers[idx].eligible() {
                        return Some(idx);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RealServer;
    use dosgi_net::{IpAddr, NodeId, Port, SocketAddr};

    fn service(scheduler: Scheduler, weights: &[u32]) -> VirtualService {
        let mut vs = VirtualService::new(
            SocketAddr::new(IpAddr::new(10, 0, 0, 100), Port(80)),
            scheduler,
        );
        for (i, w) in weights.iter().enumerate() {
            vs.add_server(RealServer::new(NodeId(i as u32)).with_weight(*w));
        }
        vs
    }

    #[test]
    fn round_robin_cycles_evenly() {
        let mut vs = service(Scheduler::RoundRobin, &[1, 1, 1]);
        let picks: Vec<usize> = (0..6)
            .map(|_| Scheduler::RoundRobin.pick(&mut vs, 0).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_dead_servers() {
        let mut vs = service(Scheduler::RoundRobin, &[1, 1, 1]);
        vs.set_alive(NodeId(1), false);
        let picks: Vec<usize> = (0..4)
            .map(|_| Scheduler::RoundRobin.pick(&mut vs, 0).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn weighted_round_robin_respects_weights() {
        let mut vs = service(Scheduler::WeightedRoundRobin, &[3, 1]);
        let mut counts = [0usize; 2];
        for _ in 0..40 {
            counts[Scheduler::WeightedRoundRobin.pick(&mut vs, 0).unwrap()] += 1;
        }
        assert_eq!(counts[0], 30);
        assert_eq!(counts[1], 10);
    }

    #[test]
    fn least_connections_prefers_idle() {
        let mut vs = service(Scheduler::LeastConnections, &[1, 1]);
        vs.servers[0].active_connections = 5;
        assert_eq!(Scheduler::LeastConnections.pick(&mut vs, 0), Some(1));
        vs.servers[1].active_connections = 9;
        assert_eq!(Scheduler::LeastConnections.pick(&mut vs, 0), Some(0));
        // Ties break by index.
        vs.servers[0].active_connections = 9;
        assert_eq!(Scheduler::LeastConnections.pick(&mut vs, 0), Some(0));
    }

    #[test]
    fn source_hash_is_sticky_and_fails_over() {
        let mut vs = service(Scheduler::SourceHash, &[1, 1, 1]);
        let a = Scheduler::SourceHash.pick(&mut vs, 1234).unwrap();
        for _ in 0..10 {
            assert_eq!(Scheduler::SourceHash.pick(&mut vs, 1234), Some(a));
        }
        // Different clients spread across servers (statistically).
        let spread: std::collections::HashSet<usize> = (0..64)
            .map(|c| Scheduler::SourceHash.pick(&mut vs, c).unwrap())
            .collect();
        assert!(spread.len() > 1);
        // Failover: the sticky target dies, the client still lands somewhere.
        vs.set_alive(NodeId(a as u32), false);
        let b = Scheduler::SourceHash.pick(&mut vs, 1234).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn no_live_servers_returns_none() {
        let mut vs = service(Scheduler::RoundRobin, &[1]);
        vs.set_alive(NodeId(0), false);
        for s in [
            Scheduler::RoundRobin,
            Scheduler::WeightedRoundRobin,
            Scheduler::LeastConnections,
            Scheduler::SourceHash,
        ] {
            assert_eq!(s.pick(&mut vs, 7), None, "{s:?}");
        }
        let mut empty = service(Scheduler::RoundRobin, &[]);
        assert_eq!(Scheduler::RoundRobin.pick(&mut empty, 0), None);
    }
}
