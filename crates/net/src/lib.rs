//! # dosgi-net — deterministic simulated cluster network
//!
//! This crate is the lowest substrate of the `dosgi` reproduction of
//! *"Dependable Distributed OSGi Environment"* (Matos & Sousa, MW4SOC 2008).
//! The paper assumes a physical LAN connecting the nodes that host OSGi
//! frameworks; for a reproducible laptop-scale evaluation we replace the LAN
//! with a **deterministic discrete-event network simulator**.
//!
//! The simulator provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual clock with microsecond
//!   resolution, advanced explicitly by the experiment driver;
//! * [`SimNet`] — a message-passing fabric between [`NodeId`]s with
//!   configurable per-link latency, jitter and loss ([`LinkConfig`]),
//!   crash-stop node failures, and network partitions;
//! * [`IpBindings`] — the virtual-IP table used by the paper's service
//!   localization schemes (Figure 5: unique IP per service that is released
//!   by the old node and bound by the new one; Figure 6: shared IPs fronted
//!   by an ipvs layer, built in the `dosgi-ipvs` crate on top of this);
//! * timers, delivery statistics and a seeded RNG so that every experiment
//!   is exactly reproducible.
//!
//! Since PR 9 the crate also hosts the **runtime-backend abstraction**: the
//! [`Fabric`] trait (clock + send + drain) that every upper layer codes
//! against, with two implementations — the deterministic [`SimNet`] above,
//! and a real-clock, really-concurrent backend ([`RealNet`] /
//! [`RealEndpoint`], one `std::thread` per node over `mpsc` channels,
//! timestamps from a shared monotonic [`RealClock`]). See DESIGN.md §10.
//!
//! # Example
//!
//! ```
//! use dosgi_net::{LinkConfig, NodeId, SimDuration, SimNet};
//!
//! let mut net: SimNet<&'static str> = SimNet::new(LinkConfig::lan(), 42);
//! let a = net.register_node();
//! let b = net.register_node();
//! net.send(a, b, "hello");
//! net.advance(SimDuration::from_millis(5));
//! let envelope = net.recv(b).expect("delivered within LAN latency");
//! assert_eq!(envelope.payload, "hello");
//! assert_eq!(envelope.from, a);
//! ```

mod addr;
mod clock;
mod config;
mod fabric;
mod id;
mod rt;
mod sim;
mod stats;
mod time;
mod topology;

pub use addr::{IpAddr, IpBindings, Port, SocketAddr};
pub use clock::{Clock, RealClock};
pub use config::LinkConfig;
pub use fabric::Fabric;
pub use id::NodeId;
pub use rt::{RealEndpoint, RealNet};
pub use sim::{Envelope, SimNet, TimerToken};
pub use stats::NetStats;
pub use time::{SimDuration, SimTime};
pub use topology::Partition;
