//! Node identity.

use std::fmt;

/// Identifies a physical node in the simulated cluster.
///
/// Node ids are allocated densely by [`SimNet::register_node`] and never
/// reused, so they double as a stable total order over nodes — the group
/// communication layer uses the lowest live id as its coordinator, exactly
/// like rank-based coordinator election in classic view-synchronous systems.
///
/// [`SimNet::register_node`]: crate::SimNet::register_node
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(NodeId::from(7), NodeId(7));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![NodeId(2), NodeId(0), NodeId(1)];
        v.sort();
        assert_eq!(v, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
}
