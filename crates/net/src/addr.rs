//! Virtual IP addresses, ports and the cluster-wide IP binding table.
//!
//! Section 3.2 of the paper discusses *service localization* after a
//! migration: a service is reachable at an `IP address : port` pair, and
//! either the IP is unique to the service and travels with it (Figure 5) or
//! the IP is shared and a fault-tolerant ipvs layer redirects requests
//! (Figure 6). [`IpBindings`] is the substrate both schemes share: a table of
//! which node currently answers for which IP.

use crate::NodeId;
use std::collections::HashMap;
use std::fmt;

/// A simulated IPv4-style address.
///
/// Only identity matters for the simulation; the dotted-quad rendering is for
/// logs and experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// A convenience constructor from dotted-quad components.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}",
            (self.0 >> 24) & 0xff,
            (self.0 >> 16) & 0xff,
            (self.0 >> 8) & 0xff,
            self.0 & 0xff
        )
    }
}

/// A simulated transport port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Port(pub u16);

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An `IP:port` endpoint, the unit of service localization in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SocketAddr {
    /// The IP half of the endpoint.
    pub ip: IpAddr,
    /// The port half of the endpoint.
    pub port: Port,
}

impl SocketAddr {
    /// Creates an endpoint.
    pub const fn new(ip: IpAddr, port: Port) -> Self {
        SocketAddr { ip, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Errors returned by [`IpBindings`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindError {
    /// The IP is already bound to another node; it must be released first
    /// (Figure 5: "the node currently holding the service [must] release the
    /// IP address").
    AlreadyBound {
        /// The node currently holding the address.
        holder: NodeId,
    },
    /// The IP is not bound anywhere.
    NotBound,
    /// The caller does not hold the binding it tried to release.
    NotHolder {
        /// The node that actually holds the address.
        holder: NodeId,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::AlreadyBound { holder } => {
                write!(f, "ip already bound to {holder}")
            }
            BindError::NotBound => write!(f, "ip is not bound"),
            BindError::NotHolder { holder } => {
                write!(f, "caller does not hold binding (holder is {holder})")
            }
        }
    }
}

impl std::error::Error for BindError {}

/// The cluster-wide table of virtual IP ownership.
///
/// This models the invariant real networks enforce via ARP: a given IP is
/// answered by at most one interface at a time. Migration of a uniquely
/// addressed service is *release on the source, bind on the destination*;
/// the window between the two is exactly the request-loss window experiment
/// **E7** measures.
#[derive(Debug, Clone, Default)]
pub struct IpBindings {
    owners: HashMap<IpAddr, NodeId>,
}

impl IpBindings {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `ip` to `node`.
    ///
    /// # Errors
    ///
    /// Returns [`BindError::AlreadyBound`] if another node holds the address.
    /// Re-binding to the same holder is idempotent.
    pub fn bind(&mut self, ip: IpAddr, node: NodeId) -> Result<(), BindError> {
        match self.owners.get(&ip) {
            Some(&holder) if holder != node => Err(BindError::AlreadyBound { holder }),
            _ => {
                self.owners.insert(ip, node);
                Ok(())
            }
        }
    }

    /// Releases `ip`, which must be held by `node`.
    ///
    /// # Errors
    ///
    /// Returns [`BindError::NotBound`] if nobody holds the address and
    /// [`BindError::NotHolder`] if a different node does.
    pub fn release(&mut self, ip: IpAddr, node: NodeId) -> Result<(), BindError> {
        match self.owners.get(&ip) {
            None => Err(BindError::NotBound),
            Some(&holder) if holder != node => Err(BindError::NotHolder { holder }),
            Some(_) => {
                self.owners.remove(&ip);
                Ok(())
            }
        }
    }

    /// Forcibly removes every binding held by `node` (crash semantics),
    /// returning the orphaned addresses so a failover manager can re-home
    /// them.
    pub fn release_all(&mut self, node: NodeId) -> Vec<IpAddr> {
        let orphans: Vec<IpAddr> = self
            .owners
            .iter()
            .filter(|(_, &n)| n == node)
            .map(|(&ip, _)| ip)
            .collect();
        for ip in &orphans {
            self.owners.remove(ip);
        }
        orphans
    }

    /// The node currently answering for `ip`, if any.
    pub fn owner_of(&self, ip: IpAddr) -> Option<NodeId> {
        self.owners.get(&ip).copied()
    }

    /// All addresses currently bound by `node`.
    pub fn bound_by(&self, node: NodeId) -> Vec<IpAddr> {
        let mut v: Vec<IpAddr> = self
            .owners
            .iter()
            .filter(|(_, &n)| n == node)
            .map(|(&ip, _)| ip)
            .collect();
        v.sort();
        v
    }

    /// Number of bound addresses.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// True if no address is bound.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: IpAddr = IpAddr::new(10, 0, 0, 1);

    #[test]
    fn display_renders_dotted_quad() {
        assert_eq!(IP.to_string(), "10.0.0.1");
        assert_eq!(SocketAddr::new(IP, Port(8080)).to_string(), "10.0.0.1:8080");
    }

    #[test]
    fn bind_then_release_round_trip() {
        let mut t = IpBindings::new();
        t.bind(IP, NodeId(0)).unwrap();
        assert_eq!(t.owner_of(IP), Some(NodeId(0)));
        t.release(IP, NodeId(0)).unwrap();
        assert_eq!(t.owner_of(IP), None);
        assert!(t.is_empty());
    }

    #[test]
    fn double_bind_is_rejected() {
        let mut t = IpBindings::new();
        t.bind(IP, NodeId(0)).unwrap();
        assert_eq!(
            t.bind(IP, NodeId(1)),
            Err(BindError::AlreadyBound { holder: NodeId(0) })
        );
        // Idempotent re-bind by the holder is fine.
        t.bind(IP, NodeId(0)).unwrap();
    }

    #[test]
    fn release_requires_holder() {
        let mut t = IpBindings::new();
        assert_eq!(t.release(IP, NodeId(0)), Err(BindError::NotBound));
        t.bind(IP, NodeId(0)).unwrap();
        assert_eq!(
            t.release(IP, NodeId(1)),
            Err(BindError::NotHolder { holder: NodeId(0) })
        );
    }

    #[test]
    fn crash_releases_everything_held() {
        let mut t = IpBindings::new();
        let ip2 = IpAddr::new(10, 0, 0, 2);
        let ip3 = IpAddr::new(10, 0, 0, 3);
        t.bind(IP, NodeId(0)).unwrap();
        t.bind(ip2, NodeId(0)).unwrap();
        t.bind(ip3, NodeId(1)).unwrap();
        let mut orphans = t.release_all(NodeId(0));
        orphans.sort();
        assert_eq!(orphans, vec![IP, ip2]);
        assert_eq!(t.owner_of(ip3), Some(NodeId(1)));
        assert_eq!(t.bound_by(NodeId(1)), vec![ip3]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn migration_is_release_then_bind() {
        let mut t = IpBindings::new();
        t.bind(IP, NodeId(0)).unwrap();
        // Figure 5: old node releases, new node binds.
        t.release(IP, NodeId(0)).unwrap();
        t.bind(IP, NodeId(1)).unwrap();
        assert_eq!(t.owner_of(IP), Some(NodeId(1)));
    }
}
