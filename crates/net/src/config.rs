//! Link quality configuration.

use crate::SimDuration;

/// Latency/jitter/loss parameters for a network link.
///
/// The default link applies to every node pair; [`SimNet::set_link`] can
/// override individual pairs (e.g. to model a congested or WAN link between
/// two data centers).
///
/// [`SimNet::set_link`]: crate::SimNet::set_link
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Base one-way latency applied to every message.
    pub latency: SimDuration,
    /// Maximum additional uniformly-distributed random delay.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub loss: f64,
}

impl LinkConfig {
    /// A typical switched-LAN link: 200µs ± 100µs, no loss.
    ///
    /// This is the default fabric for all experiments, matching the paper's
    /// single-cluster deployment assumption.
    pub fn lan() -> Self {
        LinkConfig {
            latency: SimDuration::from_micros(200),
            jitter: SimDuration::from_micros(100),
            loss: 0.0,
        }
    }

    /// A WAN-ish link: 20ms ± 5ms, 0.1% loss.
    pub fn wan() -> Self {
        LinkConfig {
            latency: SimDuration::from_millis(20),
            jitter: SimDuration::from_millis(5),
            loss: 0.001,
        }
    }

    /// A perfect link: zero latency, zero loss. Useful in unit tests where
    /// timing is irrelevant.
    pub fn ideal() -> Self {
        LinkConfig {
            latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss: 0.0,
        }
    }

    /// A degraded link with the given loss probability on top of LAN timing.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    pub fn lossy(loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        LinkConfig {
            loss,
            ..LinkConfig::lan()
        }
    }

    /// Builder-style override of the base latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style override of the jitter bound.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(LinkConfig::lan().loss, 0.0);
        assert!(LinkConfig::wan().latency > LinkConfig::lan().latency);
        assert!(LinkConfig::ideal().latency.is_zero());
        assert_eq!(LinkConfig::default(), LinkConfig::lan());
    }

    #[test]
    fn lossy_sets_probability() {
        assert_eq!(LinkConfig::lossy(0.25).loss, 0.25);
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1]")]
    fn lossy_rejects_out_of_range() {
        let _ = LinkConfig::lossy(1.5);
    }

    #[test]
    fn builder_overrides() {
        let c = LinkConfig::lan()
            .with_latency(SimDuration::from_millis(1))
            .with_jitter(SimDuration::ZERO);
        assert_eq!(c.latency, SimDuration::from_millis(1));
        assert!(c.jitter.is_zero());
    }
}
