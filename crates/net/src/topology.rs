//! Network partitions.

use crate::NodeId;
use std::collections::HashSet;

/// A set of network partitions: nodes in different groups cannot exchange
/// messages; nodes in the same group (or in no group at all) communicate
/// normally.
///
/// Partitions are the failure mode that distinguishes a *dependable*
/// distributed OSGi environment from a single-node one: the group
/// communication layer must not migrate a customer onto both sides of a
/// split. Experiments inject partitions through
/// [`SimNet::partition`](crate::SimNet::partition).
#[derive(Debug, Clone, Default)]
pub struct Partition {
    groups: Vec<HashSet<NodeId>>,
}

impl Partition {
    /// No partition: full connectivity.
    pub fn none() -> Self {
        Self::default()
    }

    /// Splits the network into the given groups.
    ///
    /// Nodes not mentioned in any group can talk to everyone — this models a
    /// partial partition where only some links are cut.
    ///
    /// # Panics
    ///
    /// Panics if a node appears in more than one group.
    pub fn split<I, G>(groups: I) -> Self
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = NodeId>,
    {
        let groups: Vec<HashSet<NodeId>> = groups
            .into_iter()
            .map(|g| g.into_iter().collect())
            .collect();
        let mut seen = HashSet::new();
        for g in &groups {
            for n in g {
                assert!(seen.insert(*n), "node {n} appears in multiple partitions");
            }
        }
        Partition { groups }
    }

    /// True if `a` and `b` can currently communicate.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let ga = self.groups.iter().position(|g| g.contains(&a));
        let gb = self.groups.iter().position(|g| g.contains(&b));
        match (ga, gb) {
            (Some(x), Some(y)) => x == y,
            // A node outside every group is connected to all.
            _ => ga.is_none() && gb.is_none() || ga.is_none() || gb.is_none(),
        }
    }

    /// True if there is no partition in effect.
    pub fn is_none(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_partition_connects_all() {
        let p = Partition::none();
        assert!(p.connected(NodeId(0), NodeId(1)));
        assert!(p.is_none());
    }

    #[test]
    fn split_blocks_cross_group() {
        let p = Partition::split([vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]);
        assert!(p.connected(NodeId(0), NodeId(1)));
        assert!(!p.connected(NodeId(0), NodeId(2)));
        assert!(!p.connected(NodeId(2), NodeId(1)));
        assert!(p.connected(NodeId(2), NodeId(2)));
    }

    #[test]
    fn unlisted_nodes_remain_connected() {
        let p = Partition::split([vec![NodeId(0)], vec![NodeId(1)]]);
        // Node 5 is in no group: it can reach both sides.
        assert!(p.connected(NodeId(5), NodeId(0)));
        assert!(p.connected(NodeId(5), NodeId(1)));
        assert!(p.connected(NodeId(5), NodeId(6)));
    }

    #[test]
    #[should_panic(expected = "appears in multiple partitions")]
    fn overlapping_groups_rejected() {
        let _ = Partition::split([vec![NodeId(0)], vec![NodeId(0)]]);
    }
}
