//! The discrete-event network simulator.

use crate::{IpBindings, LinkConfig, NetStats, NodeId, Partition, SimDuration, SimTime};
use dosgi_testkit::TestRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// A delivered message together with its transit metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Simulated instant the message was sent.
    pub sent_at: SimTime,
    /// Simulated instant the message reached the destination mailbox.
    pub delivered_at: SimTime,
    /// The application payload.
    pub payload: M,
}

/// An opaque identifier the caller attaches to a timer so it can recognize
/// the expiry when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub u64);

#[derive(Debug)]
enum Pending<M> {
    Deliver(Envelope<M>),
    Timer { node: NodeId, token: TimerToken },
}

#[derive(Debug)]
struct Queued<M> {
    at: SimTime,
    seq: u64,
    event: Pending<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The deterministic message fabric connecting the cluster's nodes.
///
/// `SimNet` is generic over the payload type `M`, so upper layers exchange
/// ordinary Rust values — no serialization format is needed inside the
/// simulation. All nondeterminism (jitter, loss) comes from a single seeded
/// RNG, making runs reproducible.
///
/// Failure model:
///
/// * **crash-stop nodes** — [`crash`](Self::crash) silently discards traffic
///   to and from the node until [`restart`](Self::restart);
/// * **partitions** — [`partition`](Self::partition) installs a
///   [`Partition`]; messages crossing the split at *delivery* time are
///   dropped, so messages in flight when the partition forms are lost, as on
///   a real network;
/// * **message loss** — each link has an independent drop probability.
#[derive(Debug)]
pub struct SimNet<M> {
    now: SimTime,
    default_link: LinkConfig,
    links: HashMap<(NodeId, NodeId), LinkConfig>,
    partition: Partition,
    alive: Vec<bool>,
    mailboxes: Vec<VecDeque<Envelope<M>>>,
    fired: Vec<Vec<TimerToken>>,
    queue: BinaryHeap<Reverse<Queued<M>>>,
    seq: u64,
    rng: TestRng,
    stats: NetStats,
    ips: IpBindings,
}

impl<M> SimNet<M> {
    /// Creates a network with the given default link quality and RNG seed.
    pub fn new(default_link: LinkConfig, seed: u64) -> Self {
        SimNet {
            now: SimTime::ZERO,
            default_link,
            links: HashMap::new(),
            partition: Partition::none(),
            alive: Vec::new(),
            mailboxes: Vec::new(),
            fired: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            rng: TestRng::new(seed),
            stats: NetStats::default(),
            ips: IpBindings::new(),
        }
    }

    /// Registers a new node and returns its id. Ids are dense and stable.
    pub fn register_node(&mut self) -> NodeId {
        let id = NodeId(self.alive.len() as u32);
        self.alive.push(true);
        self.mailboxes.push(VecDeque::new());
        self.fired.push(Vec::new());
        id
    }

    /// Number of registered nodes (alive or crashed).
    pub fn node_count(&self) -> usize {
        self.alive.len()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Marks `node` as crashed. Its mailbox is cleared (a crashed process
    /// loses its volatile state) and traffic involving it is discarded.
    pub fn crash(&mut self, node: NodeId) {
        self.alive[node.index()] = false;
        self.mailboxes[node.index()].clear();
        self.ips.release_all(node);
    }

    /// Restarts a crashed node with an empty mailbox.
    pub fn restart(&mut self, node: NodeId) {
        self.alive[node.index()] = true;
        self.mailboxes[node.index()].clear();
    }

    /// True if the node is up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.index()).copied().unwrap_or(false)
    }

    /// Overrides the link quality between `a` and `b`, in both directions.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        self.links.insert((a, b), cfg);
        self.links.insert((b, a), cfg);
    }

    /// Installs a partition (replacing any previous one).
    pub fn partition(&mut self, p: Partition) {
        self.partition = p;
    }

    /// Removes any partition.
    pub fn heal(&mut self) {
        self.partition = Partition::none();
    }

    fn link(&self, from: NodeId, to: NodeId) -> LinkConfig {
        self.links
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Sends `payload` from `from` to `to`, subject to link latency, jitter
    /// and loss. Messages from or to crashed nodes are silently discarded
    /// (counted in [`NetStats::dropped_dead`]).
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        self.stats.sent += 1;
        if !self.is_alive(from) || !self.is_alive(to) {
            self.stats.dropped_dead += 1;
            return;
        }
        let link = self.link(from, to);
        if link.loss > 0.0 && self.rng.f64() < link.loss {
            self.stats.lost += 1;
            return;
        }
        let jitter = if link.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(self.rng.u64_in(0, link.jitter.as_micros()))
        };
        let at = self.now + link.latency + jitter;
        let env = Envelope {
            from,
            to,
            sent_at: self.now,
            delivered_at: at,
            payload,
        };
        self.push(at, Pending::Deliver(env));
    }

    /// Schedules a timer for `node` after `delay`; the token is returned to
    /// the node via an expiry when the clock passes the deadline.
    pub fn set_timer(&mut self, node: NodeId, delay: SimDuration, token: TimerToken) {
        let at = self.now + delay;
        self.push(at, Pending::Timer { node, token });
    }

    fn push(&mut self, at: SimTime, event: Pending<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Queued { at, seq, event }));
    }

    /// Pops the next message delivered to `node`, if any.
    pub fn recv(&mut self, node: NodeId) -> Option<Envelope<M>> {
        self.mailboxes[node.index()].pop_front()
    }

    /// Drains every pending message for `node`.
    pub fn drain(&mut self, node: NodeId) -> Vec<Envelope<M>> {
        self.mailboxes[node.index()].drain(..).collect()
    }

    /// Number of messages waiting in `node`'s mailbox.
    pub fn pending(&self, node: NodeId) -> usize {
        self.mailboxes[node.index()].len()
    }

    /// Timer expiries that fired for `node` since the last call.
    pub fn expired_timers(&mut self, node: NodeId) -> Vec<TimerToken> {
        self.fired
            .get_mut(node.index())
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Advances the clock by `d`, processing all events up to the new time.
    pub fn advance(&mut self, d: SimDuration) {
        let target = self.now + d;
        self.advance_to(target);
    }

    /// Advances the clock to `target`, processing all events due by then.
    ///
    /// # Panics
    ///
    /// Panics if `target` is in the past.
    pub fn advance_to(&mut self, target: SimTime) {
        assert!(target >= self.now, "cannot advance backwards");
        while let Some(Reverse(q)) = self.queue.peek() {
            if q.at > target {
                break;
            }
            let Reverse(q) = self.queue.pop().expect("peeked");
            self.now = q.at;
            self.dispatch(q.event);
        }
        self.now = target;
    }

    /// Advances to the next queued event, if any, and processes every event
    /// at that same instant. Returns the new now, or `None` if idle.
    pub fn step(&mut self) -> Option<SimTime> {
        let at = self.queue.peek().map(|Reverse(q)| q.at)?;
        self.advance_to(at);
        Some(at)
    }

    fn dispatch(&mut self, event: Pending<M>) {
        match event {
            Pending::Deliver(env) => {
                if !self.is_alive(env.to) || !self.is_alive(env.from) {
                    self.stats.dropped_dead += 1;
                    return;
                }
                if !self.partition.connected(env.from, env.to) {
                    self.stats.partitioned += 1;
                    return;
                }
                self.stats.delivered += 1;
                self.mailboxes[env.to.index()].push_back(env);
            }
            Pending::Timer { node, token } => {
                self.stats.timers_fired += 1;
                if self.is_alive(node) {
                    self.fired[node.index()].push(token);
                }
            }
        }
    }

    /// Traffic counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Sends a copy of `payload` to every node in `to`.
    pub fn broadcast<I>(&mut self, from: NodeId, to: I, payload: M)
    where
        M: Clone,
        I: IntoIterator<Item = NodeId>,
    {
        for dest in to {
            if dest != from {
                self.send(from, dest, payload.clone());
            }
        }
    }

    /// Read access to the virtual-IP binding table.
    pub fn ips(&self) -> &IpBindings {
        &self.ips
    }

    /// Mutable access to the virtual-IP binding table.
    pub fn ips_mut(&mut self) -> &mut IpBindings {
        &mut self.ips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(seed: u64) -> SimNet<u32> {
        SimNet::new(LinkConfig::lan(), seed)
    }

    #[test]
    fn delivery_respects_latency() {
        let mut n = net(1);
        let a = n.register_node();
        let b = n.register_node();
        n.send(a, b, 7);
        // Nothing before the base latency.
        n.advance(SimDuration::from_micros(100));
        assert!(n.recv(b).is_none());
        // Latency 200us + jitter <= 100us.
        n.advance(SimDuration::from_micros(300));
        let env = n.recv(b).unwrap();
        assert_eq!(env.payload, 7);
        assert!(env.delivered_at >= SimTime::from_micros(200));
        assert!(env.delivered_at <= SimTime::from_micros(300));
    }

    #[test]
    fn fifo_per_link_with_equal_latency() {
        let mut n: SimNet<u32> = SimNet::new(LinkConfig::ideal(), 1);
        let a = n.register_node();
        let b = n.register_node();
        for i in 0..10 {
            n.send(a, b, i);
        }
        n.advance(SimDuration::from_millis(1));
        let got: Vec<u32> = n.drain(b).into_iter().map(|e| e.payload).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn crash_discards_traffic_and_mailbox() {
        let mut n = net(2);
        let a = n.register_node();
        let b = n.register_node();
        n.send(a, b, 1);
        n.crash(b);
        n.advance(SimDuration::from_millis(1));
        assert!(n.recv(b).is_none());
        assert_eq!(n.stats().dropped_dead, 1);
        // Sending to a dead node is counted immediately.
        n.send(a, b, 2);
        assert_eq!(n.stats().dropped_dead, 2);
        n.restart(b);
        n.send(a, b, 3);
        n.advance(SimDuration::from_millis(1));
        assert_eq!(n.recv(b).unwrap().payload, 3);
    }

    #[test]
    fn partition_drops_in_flight_messages() {
        let mut n = net(3);
        let a = n.register_node();
        let b = n.register_node();
        n.send(a, b, 1);
        // Partition forms while the message is in flight.
        n.partition(Partition::split([vec![a], vec![b]]));
        n.advance(SimDuration::from_millis(1));
        assert!(n.recv(b).is_none());
        assert_eq!(n.stats().partitioned, 1);
        n.heal();
        n.send(a, b, 2);
        n.advance(SimDuration::from_millis(1));
        assert_eq!(n.recv(b).unwrap().payload, 2);
    }

    #[test]
    fn loss_is_probabilistic_and_seeded() {
        let mut n: SimNet<u32> = SimNet::new(LinkConfig::lossy(0.5), 42);
        let a = n.register_node();
        let b = n.register_node();
        for i in 0..1000 {
            n.send(a, b, i);
        }
        n.advance(SimDuration::from_millis(10));
        let delivered = n.drain(b).len();
        // ~500 expected; allow wide tolerance.
        assert!((300..=700).contains(&delivered), "delivered={delivered}");
        // Same seed => identical outcome.
        let mut n2: SimNet<u32> = SimNet::new(LinkConfig::lossy(0.5), 42);
        let a2 = n2.register_node();
        let b2 = n2.register_node();
        for i in 0..1000 {
            n2.send(a2, b2, i);
        }
        n2.advance(SimDuration::from_millis(10));
        assert_eq!(n2.drain(b2).len(), delivered);
    }

    #[test]
    fn timers_fire_at_deadline() {
        let mut n = net(4);
        let a = n.register_node();
        n.set_timer(a, SimDuration::from_millis(5), TimerToken(9));
        n.advance(SimDuration::from_millis(4));
        assert!(n.expired_timers(a).is_empty());
        n.advance(SimDuration::from_millis(2));
        assert_eq!(n.expired_timers(a), vec![TimerToken(9)]);
        // Consumed: not reported twice.
        assert!(n.expired_timers(a).is_empty());
    }

    #[test]
    fn timers_for_crashed_nodes_are_swallowed() {
        let mut n = net(5);
        let a = n.register_node();
        n.set_timer(a, SimDuration::from_millis(1), TimerToken(1));
        n.crash(a);
        n.advance(SimDuration::from_millis(2));
        assert!(n.expired_timers(a).is_empty());
    }

    #[test]
    fn step_jumps_to_next_event() {
        let mut n = net(6);
        let a = n.register_node();
        let b = n.register_node();
        n.set_link(
            a,
            b,
            LinkConfig::ideal().with_latency(SimDuration::from_millis(7)),
        );
        n.send(a, b, 1);
        let t = n.step().unwrap();
        assert_eq!(t, SimTime::from_millis(7));
        assert_eq!(n.recv(b).unwrap().payload, 1);
        assert!(n.step().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot advance backwards")]
    fn advance_backwards_panics() {
        let mut n = net(7);
        n.advance(SimDuration::from_millis(5));
        n.advance_to(SimTime::from_millis(1));
    }

    #[test]
    fn broadcast_is_just_multiple_sends() {
        let mut n = net(8);
        let a = n.register_node();
        let b = n.register_node();
        let c = n.register_node();
        n.broadcast(a, [b, c], 5);
        n.advance(SimDuration::from_millis(1));
        assert_eq!(n.recv(b).unwrap().payload, 5);
        assert_eq!(n.recv(c).unwrap().payload, 5);
    }
}
