//! The message-fabric trait both runtime backends implement.
//!
//! Upper layers (GCS, the dosgi core node) only ever need three things from
//! the network: the current time, a way to send a payload, and a way to
//! drain their mailbox. [`Fabric`] captures exactly that surface, with
//! signatures identical to the inherent [`SimNet`](crate::SimNet) methods so
//! the deterministic simulator implements it by pure delegation — no
//! behavioral change, which is what keeps the chaos-sweep fingerprints
//! byte-identical across the refactor.
//!
//! The second implementor is [`RealEndpoint`](crate::RealEndpoint): a
//! per-node handle onto a real multi-threaded runtime where `now` reads a
//! monotonic clock and `send`/`drain` ride `std::sync::mpsc` channels.

use crate::{Envelope, NodeId, SimTime};

/// The network surface a node needs: a clock, a sender, and a mailbox.
///
/// Contract:
///
/// * `now` is monotonically non-decreasing between calls observed by any
///   one caller;
/// * `send` is fire-and-forget — delivery may be delayed, dropped (sim
///   faults) or reordered across links, but a backend must never deliver a
///   message to a node other than `to`;
/// * `drain` returns every message currently queued for `node`, in the
///   order the backend delivered them, and removes them from the mailbox.
///
/// The deterministic backend ([`SimNet`](crate::SimNet)) additionally
/// guarantees that with a fixed seed the exact same interleaving of
/// deliveries, drops and timer fires is produced on every run. The
/// real-clock backend makes no such promise — interleaving is whatever the
/// OS scheduler does.
pub trait Fabric<M> {
    /// The current instant on this backend's clock.
    fn now(&self) -> SimTime;

    /// Sends `payload` from `from` to `to`.
    fn send(&mut self, from: NodeId, to: NodeId, payload: M);

    /// Drains every pending message for `node`.
    fn drain(&mut self, node: NodeId) -> Vec<Envelope<M>>;
}

impl<M> Fabric<M> for crate::SimNet<M> {
    fn now(&self) -> SimTime {
        crate::SimNet::now(self)
    }

    fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        crate::SimNet::send(self, from, to, payload);
    }

    fn drain(&mut self, node: NodeId) -> Vec<Envelope<M>> {
        crate::SimNet::drain(self, node)
    }
}

impl<M, F: Fabric<M> + ?Sized> Fabric<M> for &mut F {
    fn now(&self) -> SimTime {
        (**self).now()
    }

    fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        (**self).send(from, to, payload);
    }

    fn drain(&mut self, node: NodeId) -> Vec<Envelope<M>> {
        (**self).drain(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkConfig, SimDuration, SimNet};

    fn roundtrip<N: Fabric<u32>>(net: &mut N, a: NodeId, b: NodeId) -> Vec<u32> {
        net.send(a, b, 41);
        net.send(a, b, 42);
        net.drain(b).into_iter().map(|e| e.payload).collect()
    }

    #[test]
    fn sim_net_is_a_fabric() {
        let mut n: SimNet<u32> = SimNet::new(LinkConfig::ideal(), 1);
        let a = n.register_node();
        let b = n.register_node();
        // Through the trait the sim behaves exactly like its inherent API:
        // nothing arrives until the driver advances virtual time.
        assert_eq!(roundtrip(&mut n, a, b), Vec::<u32>::new());
        n.advance(SimDuration::from_millis(1));
        let got: Vec<u32> = Fabric::drain(&mut n, b)
            .into_iter()
            .map(|e| e.payload)
            .collect();
        assert_eq!(got, vec![41, 42]);
    }

    #[test]
    fn mut_refs_forward() {
        let mut n: SimNet<u32> = SimNet::new(LinkConfig::ideal(), 1);
        let a = n.register_node();
        let b = n.register_node();
        let r = &mut n;
        Fabric::send(&mut { r }, a, b, 7);
        n.advance(SimDuration::from_millis(1));
        assert_eq!(n.recv(b).unwrap().payload, 7);
    }
}
