//! Clock abstraction: virtual (driver-advanced) or real (monotonic) time.
//!
//! Both backends express time as [`SimTime`] — microseconds since an
//! epoch — so every layer above (GCS heartbeat deadlines, lease expiry,
//! SLA probes) is oblivious to which clock is underneath. The sim epoch is
//! the start of the run; the real epoch is the [`RealClock`]'s creation
//! instant, read from the OS monotonic clock so it never goes backwards.

use crate::SimTime;
use std::sync::Arc;
use std::time::Instant;

/// A source of the current instant.
pub trait Clock {
    /// The current instant, as microseconds since this clock's epoch.
    fn now(&self) -> SimTime;
}

/// A monotonic wall-clock anchored at its creation instant.
///
/// Cheap to clone (an `Arc` around the anchor) and `Send + Sync`, so every
/// node thread of a real-clock runtime shares one epoch and their
/// timestamps are mutually comparable.
#[derive(Debug, Clone)]
pub struct RealClock {
    epoch: Arc<Instant>,
}

impl RealClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        RealClock {
            epoch: Arc::new(Instant::now()),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic_and_shared() {
        let c = RealClock::new();
        let c2 = c.clone();
        let a = c.now();
        let b = c2.now();
        assert!(b >= a, "clones share one epoch and never go backwards");
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now() >= a + crate::SimDuration::from_millis(1));
    }
}
