//! Simulated time: a virtual clock with microsecond resolution.
//!
//! All latencies, timeouts and "downtime" figures reported by the experiment
//! harness are measured on this clock, which makes every run bit-for-bit
//! reproducible regardless of host load.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant at `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant at `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant at `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is in the future, which makes interval
    /// accounting robust against reordered samples.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.0 as f64 / 1_000.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        let d = SimTime::from_millis(15) - SimTime::from_millis(10);
        assert_eq!(d.as_millis(), 5);
        assert_eq!((SimDuration::from_millis(2) * 3).as_millis(), 6);
        assert_eq!((SimDuration::from_millis(6) / 2).as_millis(), 3);
    }

    #[test]
    fn subtraction_saturates() {
        let d = SimTime::from_millis(1) - SimTime::from_millis(9);
        assert_eq!(d, SimDuration::ZERO);
        assert!(d.is_zero());
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn since_is_saturating() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(8);
        assert_eq!(b.since(a).as_millis(), 3);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1).to_string(), "t+1.000ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(
            SimTime::from_millis(1).max(SimTime::from_millis(2)),
            SimTime::from_millis(2)
        );
    }
}
