//! Network traffic statistics.

/// Counters maintained by [`SimNet`](crate::SimNet).
///
/// The benchmark harness reads these to report message complexity — e.g. how
/// many control messages a failover consumed (experiment **E6**) or the
/// metadata dissemination cost of the migration module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages accepted by `send`/`broadcast`.
    pub sent: u64,
    /// Messages placed in a destination mailbox.
    pub delivered: u64,
    /// Messages dropped by random loss.
    pub lost: u64,
    /// Messages dropped because source and destination were partitioned.
    pub partitioned: u64,
    /// Messages dropped because the destination (or source) was crashed.
    pub dropped_dead: u64,
    /// Timer events fired.
    pub timers_fired: u64,
}

impl NetStats {
    /// Messages that never reached a mailbox, for any reason.
    pub fn total_dropped(&self) -> u64 {
        self.lost + self.partitioned + self.dropped_dead
    }

    /// Delivery ratio in `[0, 1]`; `1.0` when nothing has been sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = NetStats::default();
        assert_eq!(s.delivery_ratio(), 1.0);
        let s = NetStats {
            sent: 10,
            delivered: 8,
            lost: 1,
            partitioned: 1,
            ..Default::default()
        };
        assert_eq!(s.total_dropped(), 2);
        assert!((s.delivery_ratio() - 0.8).abs() < 1e-12);
    }
}
