//! The real-clock, really-concurrent runtime backend.
//!
//! [`RealNet`] wires N nodes together with plain `std::sync::mpsc`
//! channels — zero dependencies, one channel per node. After registering
//! every node, the builder is split into per-node [`RealEndpoint`] handles;
//! each endpoint owns its node's receiver plus a sender to every peer and
//! is `Send`, so one `std::thread` per node runs genuinely in parallel.
//! Time comes from a shared [`RealClock`], so timestamps across threads are
//! mutually comparable.
//!
//! An endpoint implements [`Fabric`], the same trait the deterministic
//! [`SimNet`](crate::SimNet) implements, so the entire dosgi stack runs on
//! either backend unchanged. What the real backend deliberately does *not*
//! reproduce: seeded loss/jitter, partitions, crash-stop faults, or any
//! determinism — it exists to measure real hardware, not to replay
//! schedules.

use crate::{Clock, Envelope, Fabric, NodeId, RealClock, SimTime};
use std::sync::mpsc::{channel, Receiver, Sender};

/// Builder for a set of mutually connected [`RealEndpoint`]s.
#[derive(Debug)]
pub struct RealNet<M> {
    clock: RealClock,
    senders: Vec<Sender<Envelope<M>>>,
    receivers: Vec<Option<Receiver<Envelope<M>>>>,
}

impl<M> RealNet<M> {
    /// A new, empty fabric with a fresh monotonic epoch.
    pub fn new() -> Self {
        RealNet {
            clock: RealClock::new(),
            senders: Vec::new(),
            receivers: Vec::new(),
        }
    }

    /// Registers a new node and returns its id. Ids are dense and stable,
    /// matching [`SimNet::register_node`](crate::SimNet::register_node).
    pub fn register_node(&mut self) -> NodeId {
        let id = NodeId(self.senders.len() as u32);
        let (tx, rx) = channel();
        self.senders.push(tx);
        self.receivers.push(Some(rx));
        id
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.senders.len()
    }

    /// The shared clock (one epoch for the whole fabric).
    pub fn clock(&self) -> RealClock {
        self.clock.clone()
    }

    /// Detaches `node`'s endpoint: its receiver, a sender to every peer,
    /// and a handle on the shared clock. Call once per node, after all
    /// nodes are registered (an endpoint only knows the peers registered
    /// before it was taken).
    ///
    /// # Panics
    ///
    /// Panics if the endpoint for `node` was already taken.
    pub fn endpoint(&mut self, node: NodeId) -> RealEndpoint<M> {
        let rx = self.receivers[node.index()]
            .take()
            .expect("endpoint already taken");
        RealEndpoint {
            id: node,
            clock: self.clock.clone(),
            rx,
            peers: self.senders.clone(),
        }
    }
}

impl<M> Default for RealNet<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// One node's handle onto a [`RealNet`]: `Send`, so it moves into the
/// node's thread. Implements [`Fabric`] — `now` reads the shared monotonic
/// clock, `send` pushes onto the destination's channel, `drain` empties
/// this node's channel without blocking.
#[derive(Debug)]
pub struct RealEndpoint<M> {
    id: NodeId,
    clock: RealClock,
    rx: Receiver<Envelope<M>>,
    peers: Vec<Sender<Envelope<M>>>,
}

impl<M> RealEndpoint<M> {
    /// The node this endpoint belongs to.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

impl<M> Fabric<M> for RealEndpoint<M> {
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Delivery is immediate (the receiver sees it on its next drain);
    /// a send to a node whose endpoint was dropped is silently discarded,
    /// mirroring the sim's crash-stop semantics.
    fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        let Some(tx) = self.peers.get(to.index()) else {
            return;
        };
        let now = self.clock.now();
        let _ = tx.send(Envelope {
            from,
            to,
            sent_at: now,
            delivered_at: now,
            payload,
        });
    }

    /// # Panics
    ///
    /// Panics if `node` is not this endpoint's node — an endpoint only
    /// holds its own mailbox.
    fn drain(&mut self, node: NodeId) -> Vec<Envelope<M>> {
        assert_eq!(node, self.id, "an endpoint only drains its own mailbox");
        self.rx.try_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_exchange_messages_across_threads() {
        let mut net: RealNet<u32> = RealNet::new();
        let a = net.register_node();
        let b = net.register_node();
        let mut ea = net.endpoint(a);
        let mut eb = net.endpoint(b);

        let t = std::thread::spawn(move || {
            ea.send(a, b, 7);
            ea.send(a, b, 8);
            // Wait for the echo from b.
            loop {
                let got = ea.drain(a);
                if !got.is_empty() {
                    return got[0].payload;
                }
                std::thread::yield_now();
            }
        });
        // b echoes the sum back to a.
        let sum = loop {
            let got: Vec<u32> = eb.drain(b).into_iter().map(|e| e.payload).collect();
            if got.len() == 2 {
                break got.iter().sum::<u32>();
            }
            std::thread::yield_now();
        };
        eb.send(b, a, sum);
        assert_eq!(t.join().unwrap(), 15);
    }

    #[test]
    fn send_to_unknown_node_is_discarded() {
        let mut net: RealNet<u32> = RealNet::new();
        let a = net.register_node();
        let mut ea = net.endpoint(a);
        ea.send(a, NodeId(99), 1); // no panic, no delivery
        assert!(ea.drain(a).is_empty());
    }

    #[test]
    fn timestamps_come_from_the_shared_clock() {
        let mut net: RealNet<u32> = RealNet::new();
        let a = net.register_node();
        let b = net.register_node();
        let mut ea = net.endpoint(a);
        let mut eb = net.endpoint(b);
        let before = ea.now();
        ea.send(a, b, 1);
        let env = loop {
            if let Some(env) = eb.drain(b).pop() {
                break env;
            }
        };
        assert!(env.sent_at >= before);
        assert!(eb.now() >= env.sent_at);
    }
}
