//! Cross-crate integration tests: the happy paths of the platform —
//! multi-tenant serving, shared host services, graceful migration and
//! graceful node shutdown.

use dosgi_core::{
    migration, workloads, ClusterConfig, CoreError, DosgiCluster, InstanceStatus, NodeEvent,
};
use dosgi_net::{NodeId, SimDuration};
use dosgi_san::Value;

fn cluster(n: usize, seed: u64) -> DosgiCluster {
    DosgiCluster::new(n, ClusterConfig::default(), seed)
}

/// Let the group converge on its initial view before acting.
fn warm_up(c: &mut DosgiCluster) {
    c.run_for(SimDuration::from_millis(500));
}

#[test]
fn deploy_and_serve_multiple_tenants() {
    let mut c = cluster(3, 1);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "acme-web"), 0)
        .unwrap();
    c.deploy(workloads::web_instance("globex", "globex-web"), 1)
        .unwrap();
    c.run_for(SimDuration::from_millis(500));

    assert!(c.probe("acme-web"));
    assert!(c.probe("globex-web"));
    assert_eq!(c.home_of("acme-web"), Some(0));
    assert_eq!(c.home_of("globex-web"), Some(1));

    // Requests are served and isolated per tenant.
    for i in 0..5 {
        let out = c
            .call(
                "acme-web",
                workloads::WEB_SERVICE,
                "handle",
                &Value::map().with("work_us", 200i64),
            )
            .unwrap();
        assert_eq!(out.get("status"), Some(&Value::Int(200)));
        assert_eq!(out.get("served"), Some(&Value::Int(i + 1)));
    }
    let out = c
        .call("globex-web", workloads::WEB_SERVICE, "handle", &Value::Null)
        .unwrap();
    assert_eq!(out.get("served"), Some(&Value::Int(1)), "tenants isolated");
}

#[test]
fn duplicate_names_rejected_cluster_wide() {
    let mut c = cluster(3, 2);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(300));
    let err = c
        .deploy(workloads::web_instance("other", "web"), 1)
        .unwrap_err();
    assert!(matches!(err, CoreError::DuplicateInstance(_)));
}

#[test]
fn registry_replicates_to_every_node() {
    let mut c = cluster(3, 3);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "acme-web"), 0)
        .unwrap();
    c.deploy(workloads::counter_instance("acme", "acme-counter"), 2)
        .unwrap();
    c.run_for(SimDuration::from_millis(500));

    for i in 0..3 {
        let node = c.node(i).unwrap();
        let reg = node.registry();
        assert_eq!(reg.len(), 2, "node {i} sees both instances");
        assert_eq!(reg.record("acme-web").unwrap().home, NodeId(0));
        assert_eq!(reg.record("acme-counter").unwrap().home, NodeId(2));
        assert_eq!(
            reg.record("acme-web").unwrap().status,
            InstanceStatus::Placed
        );
    }
}

#[test]
fn graceful_migration_moves_instance_and_state() {
    let mut c = cluster(3, 4);
    warm_up(&mut c);
    c.deploy(workloads::counter_instance("acme", "ctr"), 0)
        .unwrap();
    c.run_for(SimDuration::from_millis(300));
    for _ in 0..7 {
        c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
            .unwrap();
    }

    c.migrate("ctr", 2).unwrap();
    c.run_for(SimDuration::from_secs(2));

    assert_eq!(c.home_of("ctr"), Some(2), "instance moved");
    assert!(c.probe("ctr"));
    // Graceful migration = orderly stop = running context persisted: the
    // count survives the move (paper §3.2's stateful-bundle story).
    let got = c
        .call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null)
        .unwrap();
    assert_eq!(got, Value::Int(7));

    // The hand-off latency is observable and small (sub-second here).
    let events = c.take_events();
    let latency = migration::migration_latency(&events, "ctr").expect("measured");
    assert!(latency < SimDuration::from_secs(1), "latency {latency}");
    assert!(!latency.is_zero());
}

#[test]
fn migration_to_dead_or_self_is_rejected() {
    let mut c = cluster(3, 5);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(300));
    assert!(matches!(
        c.migrate("web", 0),
        Err(CoreError::BadMigration(_))
    ));
    c.crash_node(2);
    assert!(matches!(
        c.migrate("web", 2),
        Err(CoreError::BadMigration(_))
    ));
    assert!(matches!(
        c.migrate("ghost", 1),
        Err(CoreError::NotPlaced(_))
    ));
}

#[test]
fn graceful_shutdown_drains_all_instances() {
    let mut c = cluster(3, 6);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("a", "web-a"), 0).unwrap();
    c.deploy(workloads::counter_instance("b", "ctr-b"), 0)
        .unwrap();
    c.run_for(SimDuration::from_millis(500));

    c.graceful_shutdown(0);
    c.run_for(SimDuration::from_secs(3));

    // Both instances moved off node 0 and are serving again.
    assert!(c.probe("web-a"));
    assert!(c.probe("ctr-b"));
    assert_ne!(c.home_of("web-a"), Some(0));
    assert_ne!(c.home_of("ctr-b"), Some(0));
    // The drained node recorded its orderly departure.
    let events = c.take_events();
    assert!(events
        .iter()
        .any(|(n, e)| *n == NodeId(0) && matches!(e, NodeEvent::Drained { .. })));
    // Survivors agree node 0 left the view.
    for i in 1..3 {
        assert_eq!(c.node(i).unwrap().view().members.len(), 2);
    }
}

#[test]
fn shared_host_service_reachable_from_instances() {
    let mut c = cluster(2, 7);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(300));

    // The web instance's descriptor shares the host log service (Fig. 4).
    let home = c.home_of("web").unwrap();
    let node = c.node_mut(home).unwrap();
    let iid = node.manager().find_by_name("web").unwrap();
    let out = node
        .manager_mut()
        .call_service(iid, workloads::LOG_SERVICE, "log", &Value::from("hi"))
        .unwrap();
    assert_eq!(out.get("ok"), Some(&Value::Bool(true)));
}

#[test]
fn monitoring_sees_per_instance_usage() {
    let mut c = cluster(2, 8);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(300));
    // Generate load, then let sampling windows close.
    for _ in 0..50 {
        c.call(
            "web",
            workloads::WEB_SERVICE,
            "handle",
            &Value::map().with("work_us", 2000i64),
        )
        .unwrap();
        c.run_for(SimDuration::from_millis(100));
    }
    let node = c.node(0).unwrap();
    let latest = node.monitor().latest("web").expect("sampled");
    assert!(latest.cpu_share > 0.0, "cpu visible: {latest:?}");
    assert!(latest.call_rate > 0.0);
    let report = node.monitor().report();
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].subject, "web");
}

#[test]
fn availability_probes_feed_the_sla_tracker() {
    let mut c = cluster(2, 9);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_secs(2));
    let rec = c.sla().record("web");
    assert!(rec.up >= SimDuration::from_secs(1));
    assert_eq!(rec.outages, 0);
    assert_eq!(rec.availability(), 1.0);
}

#[test]
fn undisturbed_cluster_is_quiet_and_deterministic() {
    let run = |seed: u64| {
        let mut c = cluster(3, seed);
        warm_up(&mut c);
        c.deploy(workloads::web_instance("a", "w"), 1).unwrap();
        c.run_for(SimDuration::from_secs(2));
        let stats = c.net_mut().stats();
        (c.now(), stats.sent, stats.delivered)
    };
    // Same seed, same everything.
    assert_eq!(run(42), run(42));
    // No view churn in a healthy cluster: each node keeps the full view.
    let mut c = cluster(3, 10);
    warm_up(&mut c);
    c.run_for(SimDuration::from_secs(2));
    for i in 0..3 {
        assert_eq!(c.node(i).unwrap().view().members.len(), 3);
    }
}

#[test]
fn open_loop_load_sees_exactly_the_downtime_window() {
    use dosgi_core::loadgen::LoadGenerator;

    let mut c = cluster(3, 30);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(500));

    // Open-loop Poisson clients at 200 req/s for 5 simulated seconds, with
    // a crash of the hosting node 1 s in.
    let mut gen = LoadGenerator::new(200.0, 99, c.now());
    let crash_after = c.now() + SimDuration::from_secs(1);
    let end = c.now() + SimDuration::from_secs(5);
    let (mut ok, mut failed) = (0u64, 0u64);
    let mut crashed = false;
    while c.now() < end {
        c.step();
        if !crashed && c.now() >= crash_after {
            c.crash_node(0);
            crashed = true;
        }
        for _ in 0..gen.arrivals_until(c.now()) {
            match c.call("web", workloads::WEB_SERVICE, "handle", &Value::Null) {
                Ok(_) => ok += 1,
                Err(_) => failed += 1,
            }
        }
    }
    assert!(c.probe("web"), "failed over during the run");
    // The failure rate must match the observed downtime fraction: with
    // ~225ms downtime out of 5s and 200 req/s, expect ~45 failures.
    let rec = c.sla().record("web");
    let expected = rec.down.as_secs_f64() * 200.0;
    assert!(failed > 0, "the outage was load-visible");
    assert!(
        (failed as f64) < expected * 2.0 + 20.0,
        "failures {failed} should track downtime ({expected:.0} expected)"
    );
    assert!(ok > 800, "most requests succeeded: {ok}");
}
