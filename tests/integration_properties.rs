//! Property-based integration tests: invariants over random operation
//! sequences against the cluster.

use dosgi_core::{workloads, ClusterConfig, DosgiCluster, InstanceStatus};
use dosgi_net::SimDuration;
use dosgi_san::Value;
use proptest::prelude::*;

/// A randomized cluster operation.
#[derive(Debug, Clone)]
enum Op {
    Deploy(u8),
    Migrate(u8, u8),
    Crash(u8),
    Restart(u8),
    Run(u16),
    Incr(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::Deploy),
        ((0u8..8), (0u8..4)).prop_map(|(i, n)| Op::Migrate(i, n)),
        (0u8..4).prop_map(Op::Crash),
        (0u8..4).prop_map(Op::Restart),
        (100u16..800).prop_map(Op::Run),
        (0u8..8).prop_map(Op::Incr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case simulates seconds of cluster time
        .. ProptestConfig::default()
    })]

    /// After any sequence of deploys, migrations, crashes and restarts —
    /// as long as a majority is alive at the end and the cluster gets time
    /// to settle — every deployed instance is placed on a live node and
    /// probes as available, and all live nodes agree on the registry.
    #[test]
    fn eventually_every_instance_is_served(ops in proptest::collection::vec(arb_op(), 1..14), seed in 0u64..1000) {
        let mut c = DosgiCluster::new(4, ClusterConfig::default(), seed);
        c.run_for(SimDuration::from_millis(500));
        let mut deployed: Vec<String> = Vec::new();
        let mut alive = [true; 4];

        for op in ops {
            match op {
                Op::Deploy(n) => {
                    let name = format!("inst-{}", deployed.len());
                    let idx = (n as usize) % 4;
                    if alive[idx]
                        && c.deploy(workloads::counter_instance_with(
                            "cust",
                            &name,
                            workloads::COUNTER_WRITE_THROUGH,
                        ), idx).is_ok()
                    {
                        deployed.push(name);
                    }
                }
                Op::Migrate(i, n) => {
                    if let Some(name) = deployed.get(i as usize % deployed.len().max(1)) {
                        let _ = c.migrate(name, n as usize % 4);
                    }
                }
                Op::Crash(n) => {
                    let idx = n as usize % 4;
                    // Keep a majority alive at all times (the invariant we
                    // promise under; minority behaviour is tested
                    // separately).
                    if alive[idx] && alive.iter().filter(|a| **a).count() > 3 {
                        c.crash_node(idx);
                        alive[idx] = false;
                    }
                }
                Op::Restart(n) => {
                    let idx = n as usize % 4;
                    if !alive[idx] {
                        c.restart_node(idx);
                        alive[idx] = true;
                    }
                }
                Op::Run(ms) => c.run_for(SimDuration::from_millis(u64::from(ms))),
                Op::Incr(i) => {
                    if let Some(name) = deployed.get(i as usize % deployed.len().max(1)) {
                        let _ = c.call(name, workloads::COUNTER_SERVICE, "incr", &Value::Null);
                    }
                }
            }
        }
        // Settle: give failure detection, claims and adoptions time.
        c.run_for(SimDuration::from_secs(6));

        // Invariant 1: every instance is placed on a live node & serving.
        for name in &deployed {
            let home = c.home_of(name);
            prop_assert!(home.is_some(), "{name} unplaced after settling");
            prop_assert!(c.probe(name), "{name} not serving");
        }
        // Invariant 2: all live Running nodes agree on the registry
        // (same homes, same statuses).
        let nodes = c.running_nodes();
        if let Some(&first) = nodes.first() {
            let reference: Vec<(String, u32)> = c.node(first).unwrap().registry().records()
                .map(|r| (r.name.clone(), r.home.0))
                .collect();
            for &i in &nodes[1..] {
                let other: Vec<(String, u32)> = c.node(i).unwrap().registry().records()
                    .map(|r| (r.name.clone(), r.home.0))
                    .collect();
                prop_assert_eq!(&other, &reference, "node {} registry diverged", i);
            }
        }
        // Invariant 3: no instance is stuck Migrating or Orphaned.
        if let Some(&first) = nodes.first() {
            for r in c.node(first).unwrap().registry().records() {
                prop_assert_eq!(r.status, InstanceStatus::Placed, "{} stuck", &r.name);
            }
        }
    }

    /// A write-through counter never loses acknowledged increments, no
    /// matter how its host crashes or where it migrates.
    #[test]
    fn write_through_counter_never_loses_acked_increments(
        crashes in proptest::collection::vec(0u8..3, 0..3),
        seed in 0u64..1000,
    ) {
        let mut c = DosgiCluster::new(3, ClusterConfig::default(), seed);
        c.run_for(SimDuration::from_millis(500));
        c.deploy(
            workloads::counter_instance_with("cust", "ctr", workloads::COUNTER_WRITE_THROUGH),
            0,
        ).unwrap();
        c.run_for(SimDuration::from_millis(500));

        let mut acked = 0i64;
        for crash in crashes {
            for _ in 0..3 {
                if c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null).is_ok() {
                    acked += 1;
                }
            }
            let idx = crash as usize;
            // Crash at most one node at a time, then restart it.
            if c.node(idx).is_some() && c.running_nodes().len() == 3 {
                c.crash_node(idx);
                c.run_for(SimDuration::from_secs(4));
                c.restart_node(idx);
                c.run_for(SimDuration::from_secs(2));
            }
        }
        c.run_for(SimDuration::from_secs(4));
        if c.probe("ctr") {
            let got = c.call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null).unwrap();
            prop_assert!(
                got.as_int().unwrap() >= acked,
                "lost increments: got {got}, acked {acked}"
            );
        }
    }
}
