//! Property-based integration tests: invariants over random operation
//! sequences against the cluster, on the in-tree `dosgi-testkit` harness.
//!
//! Cases are deterministic in the harness's fixed base seed; a failure
//! prints the case seed and `DOSGI_PROP_SEED=0x<seed>` replays it exactly.
//! Counterexamples found by the retired proptest harness are preserved
//! below as explicit named `regression_*` tests.

use dosgi_core::{workloads, ClusterConfig, DosgiCluster, InstanceStatus};
use dosgi_net::SimDuration;
use dosgi_san::Value;
use dosgi_testkit::{prop, prop_verify, prop_verify_eq, Gen, PropResult};

/// A randomized cluster operation.
#[derive(Debug, Clone)]
enum Op {
    Deploy(u8),
    Migrate(u8, u8),
    Crash(u8),
    Restart(u8),
    Run(u16),
    Incr(u8),
}

fn op_gen() -> Gen<Op> {
    prop::one_of(vec![
        prop::u8s(0, 3).map(Op::Deploy),
        Gen::new(|rng| Op::Migrate(rng.u64_in(0, 7) as u8, rng.u64_in(0, 3) as u8)),
        prop::u8s(0, 3).map(Op::Crash),
        prop::u8s(0, 3).map(Op::Restart),
        prop::u16s(100, 799).map(Op::Run),
        prop::u8s(0, 7).map(Op::Incr),
    ])
}

/// After any sequence of deploys, migrations, crashes and restarts — as
/// long as a majority is alive at the end and the cluster gets time to
/// settle — every deployed instance is placed on a live node and probes as
/// available, and all live nodes agree on the registry.
fn check_cluster_invariants(ops: &[Op], seed: u64) -> PropResult {
    let mut c = DosgiCluster::new(4, ClusterConfig::default(), seed);
    c.run_for(SimDuration::from_millis(500));
    let mut deployed: Vec<String> = Vec::new();
    let mut alive = [true; 4];

    for op in ops {
        match *op {
            Op::Deploy(n) => {
                let name = format!("inst-{}", deployed.len());
                let idx = (n as usize) % 4;
                if alive[idx]
                    && c.deploy(
                        workloads::counter_instance_with(
                            "cust",
                            &name,
                            workloads::COUNTER_WRITE_THROUGH,
                        ),
                        idx,
                    )
                    .is_ok()
                {
                    deployed.push(name);
                }
            }
            Op::Migrate(i, n) => {
                if let Some(name) = deployed.get(i as usize % deployed.len().max(1)) {
                    let _ = c.migrate(name, n as usize % 4);
                }
            }
            Op::Crash(n) => {
                let idx = n as usize % 4;
                // Keep a majority alive at all times (the invariant we
                // promise under; minority behaviour is tested separately).
                if alive[idx] && alive.iter().filter(|a| **a).count() > 3 {
                    c.crash_node(idx);
                    alive[idx] = false;
                }
            }
            Op::Restart(n) => {
                let idx = n as usize % 4;
                if !alive[idx] {
                    c.restart_node(idx);
                    alive[idx] = true;
                }
            }
            Op::Run(ms) => c.run_for(SimDuration::from_millis(u64::from(ms))),
            Op::Incr(i) => {
                if let Some(name) = deployed.get(i as usize % deployed.len().max(1)) {
                    let _ = c.call(name, workloads::COUNTER_SERVICE, "incr", &Value::Null);
                }
            }
        }
    }
    // Settle: give failure detection, claims and adoptions time.
    c.run_for(SimDuration::from_secs(6));

    // Invariant 1: every instance is placed on a live node & serving.
    for name in &deployed {
        let home = c.home_of(name);
        prop_verify!(home.is_some(), "{name} unplaced after settling");
        prop_verify!(c.probe(name), "{name} not serving");
    }
    // Invariant 2: all live Running nodes agree on the registry
    // (same homes, same statuses).
    let nodes = c.running_nodes();
    if let Some(&first) = nodes.first() {
        let reference: Vec<(String, u32)> = c
            .node(first)
            .unwrap()
            .registry()
            .records()
            .map(|r| (r.name.clone(), r.home.0))
            .collect();
        for &i in &nodes[1..] {
            let other: Vec<(String, u32)> = c
                .node(i)
                .unwrap()
                .registry()
                .records()
                .map(|r| (r.name.clone(), r.home.0))
                .collect();
            prop_verify_eq!(&other, &reference, "node {i} registry diverged");
        }
    }
    // Invariant 3: no instance is stuck Migrating or Orphaned.
    if let Some(&first) = nodes.first() {
        for r in c.node(first).unwrap().registry().records() {
            prop_verify_eq!(r.status, InstanceStatus::Placed, "{} stuck", &r.name);
        }
    }
    Ok(())
}

#[test]
fn eventually_every_instance_is_served() {
    // Each case simulates seconds of cluster time; 12 cases, like the
    // retired proptest config.
    let cfg = prop::Config {
        cases: 12,
        ..prop::Config::default()
    };
    let op = op_gen();
    let case = Gen::new(move |rng| {
        let n = rng.usize_in(1, 13);
        let ops: Vec<Op> = (0..n).map(|_| op.sample(rng)).collect();
        (ops, rng.u64_below(1000))
    });
    prop::check_shrink(
        &cfg,
        "eventually_every_instance_is_served",
        &case,
        |(ops, seed)| {
            prop::shrink_vec(ops)
                .into_iter()
                .filter(|v| !v.is_empty())
                .map(|v| (v, *seed))
                .collect()
        },
        |(ops, seed)| check_cluster_invariants(ops, *seed),
    );
}

/// A write-through counter never loses acknowledged increments, no matter
/// how its host crashes or where it migrates.
fn check_counter_durability(crashes: &[u8], seed: u64) -> PropResult {
    let mut c = DosgiCluster::new(3, ClusterConfig::default(), seed);
    c.run_for(SimDuration::from_millis(500));
    c.deploy(
        workloads::counter_instance_with("cust", "ctr", workloads::COUNTER_WRITE_THROUGH),
        0,
    )
    .unwrap();
    c.run_for(SimDuration::from_millis(500));

    let mut acked = 0i64;
    for &crash in crashes {
        for _ in 0..3 {
            if c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
                .is_ok()
            {
                acked += 1;
            }
        }
        let idx = crash as usize;
        // Crash at most one node at a time, then restart it.
        if c.node(idx).is_some() && c.running_nodes().len() == 3 {
            c.crash_node(idx);
            c.run_for(SimDuration::from_secs(4));
            c.restart_node(idx);
            c.run_for(SimDuration::from_secs(2));
        }
    }
    c.run_for(SimDuration::from_secs(4));
    if c.probe("ctr") {
        let got = c
            .call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null)
            .unwrap();
        prop_verify!(
            got.as_int().unwrap() >= acked,
            "lost increments: got {got}, acked {acked}"
        );
    }
    Ok(())
}

#[test]
fn write_through_counter_never_loses_acked_increments() {
    let cfg = prop::Config {
        cases: 12,
        ..prop::Config::default()
    };
    let case = Gen::new(|rng| {
        let crashes: Vec<u8> = (0..rng.usize_in(0, 2))
            .map(|_| rng.u64_in(0, 2) as u8)
            .collect();
        (crashes, rng.u64_below(1000))
    });
    prop::check_shrink(
        &cfg,
        "write_through_counter_never_loses_acked_increments",
        &case,
        |(crashes, seed)| {
            prop::shrink_vec(crashes)
                .into_iter()
                .map(|v| (v, *seed))
                .collect()
        },
        |(crashes, seed)| check_counter_durability(crashes, *seed),
    );
}

// ---------------------------------------------------------------------------
// Named regressions: counterexamples recorded by the retired proptest
// harness (tests/integration_properties.proptest-regressions). Each runs
// unconditionally on every `cargo test`.
// ---------------------------------------------------------------------------

#[test]
fn regression_deploy_then_crash_seed_411() {
    check_cluster_invariants(&[Op::Deploy(1), Op::Crash(0)], 411).unwrap();
}

#[test]
fn regression_deploy_crash_deploy_seed_108() {
    check_cluster_invariants(&[Op::Deploy(3), Op::Crash(3), Op::Deploy(1)], 108).unwrap();
}

#[test]
fn regression_crash_deploy_restart_seed_0() {
    check_cluster_invariants(&[Op::Crash(0), Op::Deploy(1), Op::Restart(0)], 0).unwrap();
}

#[test]
fn regression_crash_run_restart_deploy_crash_seed_0() {
    check_cluster_invariants(
        &[
            Op::Crash(3),
            Op::Run(171),
            Op::Restart(3),
            Op::Deploy(1),
            Op::Crash(0),
        ],
        0,
    )
    .unwrap();
}

#[test]
fn regression_deploy_crash_restart_same_node_seed_0() {
    check_cluster_invariants(&[Op::Deploy(0), Op::Crash(0), Op::Restart(0)], 0).unwrap();
}

#[test]
fn regression_crash_restart_then_deploy_seed_88() {
    check_cluster_invariants(&[Op::Crash(2), Op::Restart(2), Op::Deploy(2)], 88).unwrap();
}

#[test]
fn regression_deploy_migrate_crash_seed_0() {
    check_cluster_invariants(&[Op::Deploy(1), Op::Migrate(0, 0), Op::Crash(0)], 0).unwrap();
}

#[test]
fn regression_crash_deploy_restart_crash_seed_0() {
    check_cluster_invariants(
        &[Op::Crash(0), Op::Deploy(2), Op::Restart(0), Op::Crash(2)],
        0,
    )
    .unwrap();
}

// ---------------------------------------------------------------------
// Hot-swap property: upgrade/downgrade/crash interleavings vs an oracle.
// ---------------------------------------------------------------------

mod hot_swap {
    use super::*;
    use dosgi_osgi::{
        Activator, ActivatorFactory, BundleError, BundleManifest, FnActivator, Framework,
        FrameworkConfig, ManifestBuilder, Version,
    };
    use dosgi_san::{BackendKind, SharedStore};

    const SN: &str = "org.prop.hotswap";
    const NS: &str = "prop";

    /// One step of a randomized upgrade battle.
    #[derive(Debug, Clone)]
    pub enum SwapOp {
        /// Increment the counter 1–3 times through the bundle data area.
        Incr(u8),
        /// Hot-swap to the next minor revision (compatible; must adopt).
        Upgrade,
        /// Hot-swap back to the previous minor (also compatible).
        Downgrade,
        /// Attempt a major bump — incompatible with the state's anchor; the
        /// framework must refuse and leave bundle + state untouched.
        BadUpgrade,
        /// Crash the framework (drop it) and restore it from the SAN.
        Crash,
    }

    pub fn swap_op_gen() -> Gen<SwapOp> {
        prop::one_of(vec![
            prop::u8s(1, 3).map(SwapOp::Incr),
            Gen::new(|_| SwapOp::Upgrade),
            Gen::new(|_| SwapOp::Downgrade),
            Gen::new(|_| SwapOp::BadUpgrade),
            Gen::new(|_| SwapOp::Crash),
        ])
    }

    fn manifest(v: Version) -> BundleManifest {
        ManifestBuilder::new(SN, v).build().unwrap()
    }

    /// The counter's activator: adopts a handed-off count, or initializes
    /// one. A missing-after-handoff or corrupt count fails the start — so a
    /// lossy handoff cannot hide behind a permissive activator.
    fn counter_activator() -> Box<dyn Activator> {
        Box::new(FnActivator::on_start(|ctx| {
            match ctx.store_get("count").map_err(|e| e.to_string())? {
                Some(Value::Int(_)) => Ok(()),
                None => ctx
                    .store_put("count", Value::Int(0))
                    .map_err(|e| e.to_string()),
                other => Err(format!("corrupt counter state: {other:?}")),
            }
        }))
    }

    fn factory() -> ActivatorFactory {
        let mut f = ActivatorFactory::new();
        f.register(SN, |_| counter_activator());
        f
    }

    /// Runs one interleaving on `backend` and checks the oracle after
    /// every step: the bundle's live count — and, at the end, the durable
    /// SAN row — must be byte-identical to a storeless i64 counter that
    /// never went through any handoff.
    pub fn check(ops: &[SwapOp], backend: BackendKind) -> PropResult {
        let store = SharedStore::with_kind(backend);
        let fac = factory();
        let mut fw = Framework::new(NS);
        fw.attach_store(store.clone(), NS)
            .expect("attach fault-free store");
        let mut id = fw
            .install(manifest(Version::new(1, 0, 0)), Some(counter_activator()))
            .expect("install");
        fw.start(id).expect("start");
        let mut oracle: i64 = 0;
        let mut minor: u32 = 0;

        for op in ops {
            match *op {
                SwapOp::Incr(n) => {
                    for _ in 0..n {
                        let cur = fw
                            .bundle_store_get(id, "count")
                            .expect("read count")
                            .and_then(|v| v.as_int())
                            .unwrap_or(0);
                        fw.bundle_store_put(id, "count", Value::Int(cur + 1))
                            .expect("write count");
                        oracle += 1;
                    }
                }
                SwapOp::Upgrade => {
                    minor += 1;
                    let to = Version::new(1, minor, 0);
                    let report = fw
                        .upgrade_bundle(id, manifest(to), Some(counter_activator()))
                        .expect("compatible upgrade");
                    prop_verify_eq!(report.to, to, "upgrade landed on the wrong revision");
                }
                SwapOp::Downgrade => {
                    if minor == 0 {
                        continue; // nothing earlier to go back to
                    }
                    minor -= 1;
                    let to = Version::new(1, minor, 0);
                    let report = fw
                        .upgrade_bundle(id, manifest(to), Some(counter_activator()))
                        .expect("compatible downgrade");
                    prop_verify_eq!(report.to, to, "downgrade landed on the wrong revision");
                }
                SwapOp::BadUpgrade => {
                    let before = fw.bundle(id).expect("installed").manifest.version;
                    let r = fw.upgrade_bundle(
                        id,
                        manifest(Version::new(2, 0, 0)),
                        Some(counter_activator()),
                    );
                    prop_verify!(
                        matches!(r, Err(BundleError::IncompatibleUpgrade { .. })),
                        "major bump must be refused, got {r:?}"
                    );
                    prop_verify_eq!(
                        fw.bundle(id).expect("installed").manifest.version,
                        before,
                        "refused upgrade must leave the bundle untouched"
                    );
                    prop_verify!(
                        fw.bundle_state(id).expect("installed").is_active(),
                        "refused upgrade must leave the bundle running"
                    );
                }
                SwapOp::Crash => {
                    fw.persist().expect("pre-crash persist");
                    drop(fw);
                    fw = Framework::restore(FrameworkConfig::new(NS), store.clone(), NS, &fac)
                        .expect("restore after crash");
                    id = match fw.find_bundle(SN) {
                        Some(id) => id,
                        None => return Err("bundle lost across the crash".to_owned()),
                    };
                    prop_verify!(
                        fw.bundle_state(id).expect("restored").is_active(),
                        "restored bundle must restart"
                    );
                }
            }
            // The live count tracks the oracle byte-for-byte after every op.
            let got = fw
                .bundle_store_get(id, "count")
                .expect("read count")
                .expect("count always present once started");
            prop_verify_eq!(
                got.encode(),
                Value::Int(oracle).encode(),
                "after {op:?}: live state diverged from the oracle \
                 (got {got}, oracle {oracle})"
            );
        }
        // And so does the durable SAN row the next adopter would read.
        let durable = store
            .peek(&format!("{NS}/data/{SN}"), "count")
            .ok_or_else(|| "durable count row missing at the end".to_owned())?;
        prop_verify_eq!(
            durable.encode(),
            Value::Int(oracle).encode(),
            "durable state diverged from the oracle (got {durable}, oracle {oracle})"
        );
        Ok(())
    }
}

/// Satellite battery: 200 random upgrade/downgrade/crash interleavings.
/// After every handoff the bundle's state is byte-identical to a storeless
/// oracle, on every registered SAN backend. `DOSGI_PROP_SEED=0x<seed>`
/// replays a failing case exactly.
#[test]
fn hot_swap_handoff_matches_storeless_oracle() {
    use dosgi_san::BackendKind;

    let cfg = prop::Config {
        cases: 200,
        ..prop::Config::default()
    };
    let op = hot_swap::swap_op_gen();
    let case = Gen::new(move |rng| {
        let n = rng.usize_in(1, 12);
        (0..n).map(|_| op.sample(rng)).collect::<Vec<_>>()
    });
    prop::check_with(
        &cfg,
        "hot_swap_handoff_matches_storeless_oracle",
        &case,
        |ops| {
            for backend in BackendKind::all() {
                hot_swap::check(ops, backend)?;
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Nemesis property: single-fault schedules preserve the core invariants.
// ---------------------------------------------------------------------

/// Any single-fault nemesis schedule — one crash, one partition, one SAN
/// brown-out, one flaky-SAN window, or one message-loss window — preserves
/// the chaos harness's invariants: at most one live adoption per instance,
/// acknowledged write-through state never lost, full convergence after the
/// heal tail. 200 seeded cases; the fault category cycles with the seed so
/// each category gets ~40 cases.
#[test]
fn single_fault_schedules_preserve_invariants() {
    use dosgi_core::chaos::{run_nemesis, ChaosOptions};
    use dosgi_testkit::nemesis::{NemesisConfig, NemesisPlan};

    let cfg = prop::Config {
        cases: 200,
        ..prop::Config::default()
    };
    prop::check_with(
        &cfg,
        "single_fault_schedules_preserve_invariants",
        &prop::u64s(0, u64::MAX),
        |seed| {
            let nemesis_cfg = NemesisConfig {
                faults: 1,
                horizon_us: 12_000_000,
                heal_tail_us: 6_000_000,
                start_us: 1_000_000,
                min_gap_us: 1_000_000,
                duration_us: (500_000, 2_000_000),
                ..NemesisConfig::single_fault(*seed)
            };
            let plan = NemesisPlan::generate(*seed, 3, &nemesis_cfg);
            let opts = ChaosOptions {
                instances: 2,
                client_period: SimDuration::from_millis(200),
                settle: SimDuration::from_secs(5),
                ..ChaosOptions::default()
            };
            let report = run_nemesis(&plan, &opts);
            prop_verify!(report.ok(), "seed {seed:#x}: {:?}", report.violations);
            prop_verify!(report.acked > 0, "seed {seed:#x}: no client progress");
            Ok(())
        },
    );
}
