//! Property-based integration tests: invariants over random operation
//! sequences against the cluster, on the in-tree `dosgi-testkit` harness.
//!
//! Cases are deterministic in the harness's fixed base seed; a failure
//! prints the case seed and `DOSGI_PROP_SEED=0x<seed>` replays it exactly.
//! Counterexamples found by the retired proptest harness are preserved
//! below as explicit named `regression_*` tests.

use dosgi_core::{workloads, ClusterConfig, DosgiCluster, InstanceStatus};
use dosgi_net::SimDuration;
use dosgi_san::Value;
use dosgi_testkit::{prop, prop_verify, prop_verify_eq, Gen, PropResult};

/// A randomized cluster operation.
#[derive(Debug, Clone)]
enum Op {
    Deploy(u8),
    Migrate(u8, u8),
    Crash(u8),
    Restart(u8),
    Run(u16),
    Incr(u8),
}

fn op_gen() -> Gen<Op> {
    prop::one_of(vec![
        prop::u8s(0, 3).map(Op::Deploy),
        Gen::new(|rng| Op::Migrate(rng.u64_in(0, 7) as u8, rng.u64_in(0, 3) as u8)),
        prop::u8s(0, 3).map(Op::Crash),
        prop::u8s(0, 3).map(Op::Restart),
        prop::u16s(100, 799).map(Op::Run),
        prop::u8s(0, 7).map(Op::Incr),
    ])
}

/// After any sequence of deploys, migrations, crashes and restarts — as
/// long as a majority is alive at the end and the cluster gets time to
/// settle — every deployed instance is placed on a live node and probes as
/// available, and all live nodes agree on the registry.
fn check_cluster_invariants(ops: &[Op], seed: u64) -> PropResult {
    let mut c = DosgiCluster::new(4, ClusterConfig::default(), seed);
    c.run_for(SimDuration::from_millis(500));
    let mut deployed: Vec<String> = Vec::new();
    let mut alive = [true; 4];

    for op in ops {
        match *op {
            Op::Deploy(n) => {
                let name = format!("inst-{}", deployed.len());
                let idx = (n as usize) % 4;
                if alive[idx]
                    && c.deploy(
                        workloads::counter_instance_with(
                            "cust",
                            &name,
                            workloads::COUNTER_WRITE_THROUGH,
                        ),
                        idx,
                    )
                    .is_ok()
                {
                    deployed.push(name);
                }
            }
            Op::Migrate(i, n) => {
                if let Some(name) = deployed.get(i as usize % deployed.len().max(1)) {
                    let _ = c.migrate(name, n as usize % 4);
                }
            }
            Op::Crash(n) => {
                let idx = n as usize % 4;
                // Keep a majority alive at all times (the invariant we
                // promise under; minority behaviour is tested separately).
                if alive[idx] && alive.iter().filter(|a| **a).count() > 3 {
                    c.crash_node(idx);
                    alive[idx] = false;
                }
            }
            Op::Restart(n) => {
                let idx = n as usize % 4;
                if !alive[idx] {
                    c.restart_node(idx);
                    alive[idx] = true;
                }
            }
            Op::Run(ms) => c.run_for(SimDuration::from_millis(u64::from(ms))),
            Op::Incr(i) => {
                if let Some(name) = deployed.get(i as usize % deployed.len().max(1)) {
                    let _ = c.call(name, workloads::COUNTER_SERVICE, "incr", &Value::Null);
                }
            }
        }
    }
    // Settle: give failure detection, claims and adoptions time.
    c.run_for(SimDuration::from_secs(6));

    // Invariant 1: every instance is placed on a live node & serving.
    for name in &deployed {
        let home = c.home_of(name);
        prop_verify!(home.is_some(), "{name} unplaced after settling");
        prop_verify!(c.probe(name), "{name} not serving");
    }
    // Invariant 2: all live Running nodes agree on the registry
    // (same homes, same statuses).
    let nodes = c.running_nodes();
    if let Some(&first) = nodes.first() {
        let reference: Vec<(String, u32)> = c
            .node(first)
            .unwrap()
            .registry()
            .records()
            .map(|r| (r.name.clone(), r.home.0))
            .collect();
        for &i in &nodes[1..] {
            let other: Vec<(String, u32)> = c
                .node(i)
                .unwrap()
                .registry()
                .records()
                .map(|r| (r.name.clone(), r.home.0))
                .collect();
            prop_verify_eq!(&other, &reference, "node {i} registry diverged");
        }
    }
    // Invariant 3: no instance is stuck Migrating or Orphaned.
    if let Some(&first) = nodes.first() {
        for r in c.node(first).unwrap().registry().records() {
            prop_verify_eq!(r.status, InstanceStatus::Placed, "{} stuck", &r.name);
        }
    }
    Ok(())
}

#[test]
fn eventually_every_instance_is_served() {
    // Each case simulates seconds of cluster time; 12 cases, like the
    // retired proptest config.
    let cfg = prop::Config {
        cases: 12,
        ..prop::Config::default()
    };
    let op = op_gen();
    let case = Gen::new(move |rng| {
        let n = rng.usize_in(1, 13);
        let ops: Vec<Op> = (0..n).map(|_| op.sample(rng)).collect();
        (ops, rng.u64_below(1000))
    });
    prop::check_shrink(
        &cfg,
        "eventually_every_instance_is_served",
        &case,
        |(ops, seed)| {
            prop::shrink_vec(ops)
                .into_iter()
                .filter(|v| !v.is_empty())
                .map(|v| (v, *seed))
                .collect()
        },
        |(ops, seed)| check_cluster_invariants(ops, *seed),
    );
}

/// A write-through counter never loses acknowledged increments, no matter
/// how its host crashes or where it migrates.
fn check_counter_durability(crashes: &[u8], seed: u64) -> PropResult {
    let mut c = DosgiCluster::new(3, ClusterConfig::default(), seed);
    c.run_for(SimDuration::from_millis(500));
    c.deploy(
        workloads::counter_instance_with("cust", "ctr", workloads::COUNTER_WRITE_THROUGH),
        0,
    )
    .unwrap();
    c.run_for(SimDuration::from_millis(500));

    let mut acked = 0i64;
    for &crash in crashes {
        for _ in 0..3 {
            if c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
                .is_ok()
            {
                acked += 1;
            }
        }
        let idx = crash as usize;
        // Crash at most one node at a time, then restart it.
        if c.node(idx).is_some() && c.running_nodes().len() == 3 {
            c.crash_node(idx);
            c.run_for(SimDuration::from_secs(4));
            c.restart_node(idx);
            c.run_for(SimDuration::from_secs(2));
        }
    }
    c.run_for(SimDuration::from_secs(4));
    if c.probe("ctr") {
        let got = c
            .call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null)
            .unwrap();
        prop_verify!(
            got.as_int().unwrap() >= acked,
            "lost increments: got {got}, acked {acked}"
        );
    }
    Ok(())
}

#[test]
fn write_through_counter_never_loses_acked_increments() {
    let cfg = prop::Config {
        cases: 12,
        ..prop::Config::default()
    };
    let case = Gen::new(|rng| {
        let crashes: Vec<u8> = (0..rng.usize_in(0, 2))
            .map(|_| rng.u64_in(0, 2) as u8)
            .collect();
        (crashes, rng.u64_below(1000))
    });
    prop::check_shrink(
        &cfg,
        "write_through_counter_never_loses_acked_increments",
        &case,
        |(crashes, seed)| {
            prop::shrink_vec(crashes)
                .into_iter()
                .map(|v| (v, *seed))
                .collect()
        },
        |(crashes, seed)| check_counter_durability(crashes, *seed),
    );
}

// ---------------------------------------------------------------------------
// Named regressions: counterexamples recorded by the retired proptest
// harness (tests/integration_properties.proptest-regressions). Each runs
// unconditionally on every `cargo test`.
// ---------------------------------------------------------------------------

#[test]
fn regression_deploy_then_crash_seed_411() {
    check_cluster_invariants(&[Op::Deploy(1), Op::Crash(0)], 411).unwrap();
}

#[test]
fn regression_deploy_crash_deploy_seed_108() {
    check_cluster_invariants(&[Op::Deploy(3), Op::Crash(3), Op::Deploy(1)], 108).unwrap();
}

#[test]
fn regression_crash_deploy_restart_seed_0() {
    check_cluster_invariants(&[Op::Crash(0), Op::Deploy(1), Op::Restart(0)], 0).unwrap();
}

#[test]
fn regression_crash_run_restart_deploy_crash_seed_0() {
    check_cluster_invariants(
        &[
            Op::Crash(3),
            Op::Run(171),
            Op::Restart(3),
            Op::Deploy(1),
            Op::Crash(0),
        ],
        0,
    )
    .unwrap();
}

#[test]
fn regression_deploy_crash_restart_same_node_seed_0() {
    check_cluster_invariants(&[Op::Deploy(0), Op::Crash(0), Op::Restart(0)], 0).unwrap();
}

#[test]
fn regression_crash_restart_then_deploy_seed_88() {
    check_cluster_invariants(&[Op::Crash(2), Op::Restart(2), Op::Deploy(2)], 88).unwrap();
}

#[test]
fn regression_deploy_migrate_crash_seed_0() {
    check_cluster_invariants(&[Op::Deploy(1), Op::Migrate(0, 0), Op::Crash(0)], 0).unwrap();
}

#[test]
fn regression_crash_deploy_restart_crash_seed_0() {
    check_cluster_invariants(
        &[Op::Crash(0), Op::Deploy(2), Op::Restart(0), Op::Crash(2)],
        0,
    )
    .unwrap();
}

// ---------------------------------------------------------------------
// Nemesis property: single-fault schedules preserve the core invariants.
// ---------------------------------------------------------------------

/// Any single-fault nemesis schedule — one crash, one partition, one SAN
/// brown-out, one flaky-SAN window, or one message-loss window — preserves
/// the chaos harness's invariants: at most one live adoption per instance,
/// acknowledged write-through state never lost, full convergence after the
/// heal tail. 200 seeded cases; the fault category cycles with the seed so
/// each category gets ~40 cases.
#[test]
fn single_fault_schedules_preserve_invariants() {
    use dosgi_core::chaos::{run_nemesis, ChaosOptions};
    use dosgi_testkit::nemesis::{NemesisConfig, NemesisPlan};

    let cfg = prop::Config {
        cases: 200,
        ..prop::Config::default()
    };
    prop::check_with(
        &cfg,
        "single_fault_schedules_preserve_invariants",
        &prop::u64s(0, u64::MAX),
        |seed| {
            let nemesis_cfg = NemesisConfig {
                faults: 1,
                horizon_us: 12_000_000,
                heal_tail_us: 6_000_000,
                start_us: 1_000_000,
                min_gap_us: 1_000_000,
                duration_us: (500_000, 2_000_000),
                ..NemesisConfig::single_fault(*seed)
            };
            let plan = NemesisPlan::generate(*seed, 3, &nemesis_cfg);
            let opts = ChaosOptions {
                instances: 2,
                client_period: SimDuration::from_millis(200),
                settle: SimDuration::from_secs(5),
                ..ChaosOptions::default()
            };
            let report = run_nemesis(&plan, &opts);
            prop_verify!(report.ok(), "seed {seed:#x}: {:?}", report.violations);
            prop_verify!(report.acked > 0, "seed {seed:#x}: no client progress");
            Ok(())
        },
    );
}
