//! Failure-injection integration tests: crashes, failover, partitions,
//! restarts, compound failures, and the replication extension.

use dosgi_core::{migration, replication, workloads, ClusterConfig, DosgiCluster};
use dosgi_gcs::GcsConfig;
use dosgi_net::{NodeId, Partition, SimDuration};
use dosgi_san::Value;

fn cluster(n: usize, seed: u64) -> DosgiCluster {
    DosgiCluster::new(n, ClusterConfig::default(), seed)
}

fn warm_up(c: &mut DosgiCluster) {
    c.run_for(SimDuration::from_millis(500));
}

#[test]
fn crash_fails_over_stateless_instance() {
    let mut c = cluster(3, 11);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(500));
    assert_eq!(c.home_of("web"), Some(0));

    let crash_at = c.now();
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(3));

    // The instance came back on a survivor.
    assert!(c.probe("web"), "redeployed after failover");
    let new_home = c.home_of("web").unwrap();
    assert_ne!(new_home, 0);
    // And it serves requests again.
    let out = c
        .call("web", workloads::WEB_SERVICE, "handle", &Value::Null)
        .unwrap();
    assert_eq!(out.get("status"), Some(&Value::Int(200)));

    // Failover latency is dominated by detection + agreement; with LAN GCS
    // defaults it lands well under 2 seconds.
    let events = c.take_events();
    let latency = migration::failover_latency(&events, "web", crash_at).expect("adopted");
    assert!(latency < SimDuration::from_secs(2), "latency {latency}");
    // Downtime was observed by the SLA tracker.
    let rec = c.sla().record("web");
    assert_eq!(rec.outages, 1);
    assert!(rec.down > SimDuration::ZERO);
}

#[test]
fn crash_loses_uncheckpointed_running_context() {
    let mut c = cluster(3, 12);
    warm_up(&mut c);
    c.deploy(workloads::counter_instance("acme", "ctr"), 0)
        .unwrap();
    c.run_for(SimDuration::from_millis(500));
    for _ in 0..9 {
        c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
            .unwrap();
    }
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(3));
    assert!(c.probe("ctr"));
    // The paper's §3.2 semantics: a crashed stateful bundle's running
    // context is lost; only persisted state survives (none was persisted).
    let got = c
        .call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null)
        .unwrap();
    assert_eq!(got, Value::Int(0));
}

#[test]
fn write_through_context_survives_crash() {
    let mut c = cluster(3, 13);
    warm_up(&mut c);
    c.deploy(
        workloads::counter_instance_with("acme", "ctr", workloads::COUNTER_WRITE_THROUGH),
        0,
    )
    .unwrap();
    c.run_for(SimDuration::from_millis(500));
    for _ in 0..9 {
        c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
            .unwrap();
    }
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(3));
    let got = c
        .call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null)
        .unwrap();
    assert_eq!(got, Value::Int(9), "write-through loses nothing");
}

#[test]
fn checkpointed_context_loses_at_most_one_period() {
    let mut c = cluster(3, 14);
    warm_up(&mut c);
    c.deploy(
        workloads::counter_instance_with("acme", "ctr", workloads::COUNTER_CHECKPOINT),
        0,
    )
    .unwrap();
    c.run_for(SimDuration::from_millis(500));
    for _ in 0..19 {
        c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
            .unwrap();
    }
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(3));
    let got = c
        .call("ctr", workloads::COUNTER_SERVICE, "get", &Value::Null)
        .unwrap();
    // Checkpoints every 8: 19 increments → last checkpoint at 16.
    assert_eq!(got, Value::Int(16));
}

#[test]
fn multiple_orphans_spread_across_survivors() {
    let mut c = cluster(4, 15);
    warm_up(&mut c);
    for i in 0..4 {
        c.deploy(workloads::web_instance("acme", &format!("web-{i}")), 0)
            .unwrap();
    }
    c.run_for(SimDuration::from_millis(500));
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(4));
    let homes: Vec<usize> = (0..4)
        .map(|i| c.home_of(&format!("web-{i}")).expect("placed"))
        .collect();
    for (i, h) in homes.iter().enumerate() {
        assert_ne!(*h, 0, "web-{i} left the dead node");
        assert!(c.probe(&format!("web-{i}")));
    }
    // FewestInstances placement spreads 4 orphans over 3 survivors: no
    // survivor takes more than 2.
    for survivor in 1..4 {
        let n = homes.iter().filter(|h| **h == survivor).count();
        assert!(n <= 2, "survivor {survivor} took {n}");
    }
}

#[test]
fn coordinator_crash_is_survivable() {
    // Node 0 is both the GCS coordinator and the sequencer; killing it
    // exercises view agreement + sequencer failover + instance failover at
    // once.
    let mut c = cluster(3, 16);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(500));
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(4));
    assert!(c.probe("web"));
    for i in 1..3 {
        assert_eq!(c.node(i).unwrap().view().coordinator(), Some(NodeId(1)));
    }
}

#[test]
fn source_crash_mid_migration_recovers_via_failover() {
    let mut c = cluster(3, 17);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(500));
    // Order the migration, then kill the source before it can complete.
    c.migrate("web", 1).unwrap();
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(4));
    assert!(c.probe("web"), "stranded migration recovered");
    assert_ne!(c.home_of("web"), Some(0));
}

#[test]
fn destination_crash_mid_migration_recovers_via_failover() {
    let mut c = cluster(3, 18);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(500));
    c.migrate("web", 2).unwrap();
    c.crash_node(2);
    c.run_for(SimDuration::from_secs(4));
    assert!(c.probe("web"), "stranded migration recovered");
    let home = c.home_of("web").unwrap();
    assert_ne!(home, 2, "not on the dead destination");
}

#[test]
fn minority_partition_does_not_fail_over() {
    let mut c = cluster(5, 19);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(500));

    // Split 2 vs 3; the instance's home (n0) is in the minority.
    c.partition(Partition::split([
        vec![NodeId(0), NodeId(1)],
        vec![NodeId(2), NodeId(3), NodeId(4)],
    ]));
    c.run_for(SimDuration::from_secs(3));

    // The minority peer (n1) must not have adopted the instance — only a
    // majority component may act on suspected failures.
    assert!(
        !c.node(1).unwrap().probe_local("web"),
        "minority node adopted despite no quorum"
    );
    // The majority side is allowed to adopt it (n0 looks dead from there).
    let majority_copies = (2..5)
        .filter(|i| c.node(*i).unwrap().probe_local("web"))
        .count();
    assert!(majority_copies <= 1, "at most one majority adoption");

    // After healing, the cluster reconverges to one authoritative home.
    c.heal();
    c.run_for(SimDuration::from_secs(3));
    assert!(c.probe("web"));
    for i in 0..5 {
        assert_eq!(
            c.node(i).unwrap().view().members.len(),
            5,
            "node {i} healed"
        );
    }
}

#[test]
fn restarted_node_rejoins_and_syncs_registry() {
    let mut c = cluster(3, 20);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 1).unwrap();
    c.run_for(SimDuration::from_millis(500));
    c.crash_node(2);
    c.run_for(SimDuration::from_secs(2));

    c.restart_node(2);
    c.run_for(SimDuration::from_secs(3));
    // Back in the view…
    assert_eq!(c.node(0).unwrap().view().members.len(), 3);
    // …and caught up on the replicated registry via RegistrySync.
    let reg = c.node(2).unwrap().registry();
    assert_eq!(reg.record("web").unwrap().home, NodeId(1));
}

#[test]
fn cascading_failures_without_majority_stop_failover() {
    let mut c = cluster(3, 21);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_millis(500));

    c.crash_node(0);
    c.run_for(SimDuration::from_secs(3));
    assert!(c.probe("web"), "first failover worked");
    let second_home = c.home_of("web").unwrap();

    // Crash the new home too: the single survivor is not a majority of the
    // 3-node universe, so it must NOT adopt (split-brain discipline).
    c.crash_node(second_home);
    c.run_for(SimDuration::from_secs(3));
    assert!(!c.probe("web"), "no majority, no failover");
    let survivor = (0..3).find(|i| c.node(*i).is_some()).unwrap();
    assert!(!c.node(survivor).unwrap().probe_local("web"));
}

#[test]
fn hot_standby_beats_cold_rematerialization() {
    // Two identical clusters; one pre-creates a standby for the instance.
    let run = |standby: bool, seed: u64| {
        let mut c = cluster(3, seed);
        warm_up(&mut c);
        c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
        c.run_for(SimDuration::from_millis(500));
        if standby {
            // Place the standby where failover will land: FewestInstances
            // picks the least-loaded survivor (node 1).
            replication::prepare_standby(&mut c, "web", 1).unwrap();
            c.run_for(SimDuration::from_millis(200));
        }
        let crash_at = c.now();
        c.crash_node(0);
        c.run_for(SimDuration::from_secs(3));
        assert!(c.probe("web"));
        let events = c.take_events();
        migration::failover_latency(&events, "web", crash_at).expect("adopted")
    };
    let cold = run(false, 22);
    let hot = run(true, 22);
    assert!(
        hot < cold,
        "standby failover ({hot}) should beat cold re-materialization ({cold})"
    );
}

#[test]
fn fast_failure_detection_shrinks_downtime() {
    let run = |gcs: GcsConfig, seed: u64| {
        let mut config = ClusterConfig::default();
        config.node.gcs = gcs;
        let mut c = DosgiCluster::new(3, config, seed);
        warm_up(&mut c);
        c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
        c.run_for(SimDuration::from_millis(500));
        c.crash_node(0);
        c.run_for(SimDuration::from_secs(4));
        assert!(c.probe("web"));
        c.sla().record("web").down
    };
    let slow = run(GcsConfig::lan(), 23); // 50ms heartbeat / 200ms timeout
    let fast = run(GcsConfig::fast(), 23); // 10ms heartbeat / 40ms timeout
    assert!(
        fast < slow,
        "aggressive detection ({fast}) should beat LAN defaults ({slow})"
    );
}

#[test]
fn lossy_network_still_converges() {
    let config = ClusterConfig {
        link: dosgi_net::LinkConfig::lossy(0.05),
        ..ClusterConfig::default()
    };
    let mut c = DosgiCluster::new(3, config, 24);
    warm_up(&mut c);
    c.deploy(workloads::web_instance("acme", "web"), 0).unwrap();
    c.run_for(SimDuration::from_secs(1));
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(6));
    assert!(c.probe("web"), "failover despite 5% message loss");
}

#[test]
fn consolidation_then_wake_and_scale_back_out() {
    // §4's full elasticity loop: idle instances consolidate onto one node
    // (freed nodes hibernate), then demand returns, the operator wakes a
    // node and moves load back onto it.
    let mut config = ClusterConfig::default();
    config.node.policy = Some(format!(
        "{}{}",
        dosgi_core::autonomic::DEFAULT_POLICY,
        dosgi_core::autonomic::CONSOLIDATION_POLICY
    ));
    let mut c = DosgiCluster::new(3, config, 31);
    c.run_for(SimDuration::from_secs(1));
    for i in 0..3 {
        c.deploy(workloads::web_instance("idle", &format!("idle-{i}")), i)
            .unwrap();
    }
    // Idle long enough for the rolling consolidation to finish.
    c.run_for(SimDuration::from_secs(25));
    assert!(c.hibernated_nodes() >= 1, "someone hibernated");
    for i in 0..3 {
        assert!(c.probe(&format!("idle-{i}")), "idle-{i} still served");
    }
    let packed_home = c.home_of("idle-0").unwrap();

    // Demand returns: wake a hibernated node and move an instance onto it.
    let sleeping = (0..3)
        .find(|i| {
            c.node(*i)
                .map(|n| n.state() == dosgi_core::NodeState::Hibernated)
                .unwrap_or(false)
        })
        .expect("a hibernated node exists");
    c.wake_node(sleeping).unwrap();
    c.run_for(SimDuration::from_secs(2));
    // Waking a running node is rejected.
    assert!(c.wake_node(packed_home).is_err());

    c.migrate("idle-0", sleeping).unwrap();
    // Demand is back: drive load so the instances are no longer idle and
    // the consolidation rule stops firing (node_cpu >= 5%).
    let end = c.now() + SimDuration::from_secs(4);
    let mut landed = false;
    while c.now() < end {
        for i in 0..3 {
            let _ = c.call(
                &format!("idle-{i}"),
                workloads::WEB_SERVICE,
                "handle",
                &Value::map().with("work_us", 40_000i64),
            );
        }
        c.run_for(SimDuration::from_millis(100));
        landed |= c.home_of("idle-0") == Some(sleeping);
    }
    assert!(landed, "idle-0 ran on the woken node");
    for i in 0..3 {
        assert!(c.probe(&format!("idle-{i}")), "idle-{i} serving under load");
    }
}

// ---------------------------------------------------------------------
// Storage faults (the fallible SAN) combined with node failures.
// ---------------------------------------------------------------------

/// A node crash *during* a SAN brown-out: the failover claim still wins
/// (claims ride the GCS, not the SAN), but re-materialization cannot read
/// the persisted state. The adopter retries with backoff, exhausts the
/// retry budget, quarantines the instance — and heals it automatically
/// once the SAN answers again, with the write-through state intact. At no
/// point does a second live copy appear.
#[test]
fn crash_during_san_brownout_quarantines_then_heals() {
    use dosgi_core::{InstanceStatus, NodeEvent};
    use dosgi_san::FaultPlan;

    let mut c = cluster(3, 21);
    warm_up(&mut c);
    c.deploy(
        workloads::counter_instance_with("acme", "ctr", workloads::COUNTER_WRITE_THROUGH),
        0,
    )
    .unwrap();
    c.run_for(SimDuration::from_millis(500));
    for _ in 0..5 {
        c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
            .unwrap();
    }

    // SAN goes dark, then the home crashes while it is dark.
    let far = c.now() + SimDuration::from_secs(3600);
    c.set_fault_plan(FaultPlan::none().with_brownout(c.now(), far));
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(4));

    let events = c.take_events();
    assert!(
        events
            .iter()
            .any(|(_, e)| matches!(e, NodeEvent::AdoptRetried { name, .. } if name == "ctr")),
        "adoption was retried against the dark SAN"
    );
    assert!(
        events
            .iter()
            .any(|(_, e)| matches!(e, NodeEvent::Quarantined { name, .. } if name == "ctr")),
        "retry budget exhausted: instance quarantined"
    );
    let survivor = c.running_nodes()[0];
    assert_eq!(
        c.node(survivor)
            .unwrap()
            .registry()
            .record("ctr")
            .unwrap()
            .status,
        InstanceStatus::Quarantined
    );
    // No live copy anywhere — and in particular not two.
    let live = (0..c.len())
        .filter(|i| c.node(*i).map(|n| n.probe_local("ctr")).unwrap_or(false))
        .count();
    assert_eq!(live, 0, "no live copy while quarantined");

    // SAN heals: the quarantined home re-claims and re-materializes.
    c.clear_faults();
    c.run_for(SimDuration::from_secs(4));
    assert!(c.probe("ctr"), "re-materialized after SAN heal");
    let live: Vec<usize> = (0..c.len())
        .filter(|i| c.node(*i).map(|n| n.probe_local("ctr")).unwrap_or(false))
        .collect();
    assert_eq!(live.len(), 1, "exactly one live copy: {live:?}");
    // Write-through state survived the whole ordeal.
    let out = c
        .call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
        .unwrap();
    assert_eq!(out, Value::Int(6), "counter resumed from persisted state");
}

/// A crash while the SAN is merely *flaky* (transient failures, 30% rate):
/// the retry/backoff discipline absorbs the errors and failover completes
/// without quarantine — availability degrades gracefully instead of
/// panicking or duplicating.
#[test]
fn crash_during_flaky_san_fails_over_via_retries() {
    use dosgi_san::FaultPlan;

    let mut c = cluster(3, 22);
    warm_up(&mut c);
    c.deploy(
        workloads::counter_instance_with("acme", "ctr", workloads::COUNTER_WRITE_THROUGH),
        0,
    )
    .unwrap();
    c.run_for(SimDuration::from_millis(500));
    for _ in 0..3 {
        c.call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
            .unwrap();
    }

    c.set_fault_plan(FaultPlan::flaky(0.30, 0xF1A57));
    c.crash_node(0);
    c.run_for(SimDuration::from_secs(6));
    c.clear_faults();
    c.run_for(SimDuration::from_secs(2));

    assert!(c.probe("ctr"), "failed over through the flakiness");
    let live: Vec<usize> = (0..c.len())
        .filter(|i| c.node(*i).map(|n| n.probe_local("ctr")).unwrap_or(false))
        .collect();
    assert_eq!(live.len(), 1, "exactly one live copy: {live:?}");
    let out = c
        .call("ctr", workloads::COUNTER_SERVICE, "incr", &Value::Null)
        .unwrap();
    assert_eq!(out, Value::Int(4), "no acknowledged increment lost");
}
